"""Tests for residual-graph bookkeeping (paper Section 4.2/4.4, Lemma 6)."""

from repro.core.residual import linear_scan_equal, summarize_residuals

from conftest import build_graph


GRAPHS = [
    build_graph([(0, 1, 0), (1, 2, 1), (2, 0, 2), (0, 2, 3)], labels=["A", "B", "C"]),
    build_graph([(0, 1, 0), (1, 2, 1)], labels=["A", "B", "C"]),
]


class TestSummaries:
    def test_i_value_counts_residual_edges(self):
        # cut after index 1 in graph 0 leaves 2 edges; cut after index 0
        # in graph 1 leaves 1 edge.
        summary = summarize_residuals(GRAPHS, [(0, 1), (1, 0)])
        assert summary.i_value == 3

    def test_duplicate_cut_points_collapse(self):
        a = summarize_residuals(GRAPHS, [(0, 1), (0, 1), (0, 1)])
        b = summarize_residuals(GRAPHS, [(0, 1)])
        assert a.i_value == b.i_value == 2

    def test_label_set_is_suffix_union(self):
        summary = summarize_residuals(GRAPHS, [(0, 2)])
        # residual edges of graph 0 after index 2: edge (0,2) -> labels A, C
        assert summary.label_set == {"A", "C"}

    def test_label_computation_optional(self):
        summary = summarize_residuals(GRAPHS, [(0, 0)], with_labels=False)
        assert summary.label_set == frozenset()

    def test_cut_pairs_only_when_requested(self):
        without = summarize_residuals(GRAPHS, [(0, 1)])
        with_pairs = summarize_residuals(GRAPHS, [(0, 1)], keep_cut_pairs=True)
        assert without.cut_pairs is None
        assert with_pairs.cut_pairs == ((0, 1),)

    def test_empty_cut_points(self):
        summary = summarize_residuals(GRAPHS, [], keep_cut_pairs=True)
        assert summary.i_value == 0
        assert summary.cut_pairs == ()

    def test_exhausted_graph_contributes_zero(self):
        summary = summarize_residuals(GRAPHS, [(0, 3)])
        assert summary.i_value == 0


class TestLinearScan:
    def test_equal(self):
        assert linear_scan_equal(((0, 1), (1, 2)), ((0, 1), (1, 2)))

    def test_length_mismatch(self):
        assert not linear_scan_equal(((0, 1),), ((0, 1), (1, 2)))

    def test_element_mismatch(self):
        assert not linear_scan_equal(((0, 1), (1, 2)), ((0, 1), (1, 3)))

    def test_empty(self):
        assert linear_scan_equal((), ())
