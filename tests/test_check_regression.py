"""Tests for the CI perf-trend gate (benchmarks/check_regression.py)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
sys.modules["check_regression"] = check_regression
_SPEC.loader.exec_module(check_regression)


def write_result(directory, name, payload):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


def serving(speedup=2.0, identical=True, **extra):
    return {
        "speedup": speedup,
        "identical": identical,
        "events_per_second": 100_000.0,
        "latency_p95_ms": 1.0,
        **extra,
    }


def parallel(identical=True, enforced=False, seed=1.0, fan=1.0):
    return {
        "identical": identical,
        "speedup_enforced": enforced,
        "seed_speedup": seed,
        "fan_speedup": fan,
    }


@pytest.fixture
def dirs(tmp_path):
    return tmp_path / "current", tmp_path / "baselines"


class TestCompare:
    def test_within_band_passes(self, dirs):
        current, baselines = dirs
        write_result(baselines, "BENCH_serving.json", serving(speedup=2.0))
        write_result(current, "BENCH_serving.json", serving(speedup=1.8))
        code, _lines = check_regression.compare(current, baselines)
        assert code == check_regression.OK

    def test_slowdown_beyond_band_fails(self, dirs):
        current, baselines = dirs
        write_result(baselines, "BENCH_serving.json", serving(speedup=2.0))
        write_result(current, "BENCH_serving.json", serving(speedup=1.4))
        code, lines = check_regression.compare(current, baselines)
        assert code == check_regression.REGRESSION
        assert any("REGRESSION" in line and "speedup" in line for line in lines)

    def test_unreported_speedup_flags_refresh(self, dirs):
        current, baselines = dirs
        write_result(baselines, "BENCH_serving.json", serving(speedup=2.0))
        write_result(current, "BENCH_serving.json", serving(speedup=2.6))
        code, lines = check_regression.compare(current, baselines)
        assert code == check_regression.REFRESH_NEEDED
        assert any("--write" in line for line in lines)

    def test_soundness_flag_must_hold(self, dirs):
        current, baselines = dirs
        write_result(baselines, "BENCH_serving.json", serving())
        write_result(current, "BENCH_serving.json", serving(identical=False))
        code, _lines = check_regression.compare(current, baselines)
        assert code == check_regression.REGRESSION

    def test_guarded_metric_skipped_without_cores(self, dirs):
        current, baselines = dirs
        write_result(
            baselines, "BENCH_parallel.json", parallel(enforced=False, seed=2.0)
        )
        write_result(
            current, "BENCH_parallel.json", parallel(enforced=False, seed=0.4)
        )
        code, lines = check_regression.compare(current, baselines)
        assert code == check_regression.OK
        assert any("SKIPPED" in line for line in lines)

    def test_unguarded_baseline_warns_without_failing(self, dirs):
        """A current run that CAN measure a guarded metric warns that the
        baseline (recorded on hardware that could not) leaves it ungated,
        without turning every PR red over a hardware asymmetry."""
        current, baselines = dirs
        write_result(
            baselines, "BENCH_parallel.json", parallel(enforced=False, seed=0.4)
        )
        write_result(
            current, "BENCH_parallel.json", parallel(enforced=True, seed=2.0)
        )
        code, lines = check_regression.compare(current, baselines)
        assert code == check_regression.OK
        assert any("UNGUARDED" in line and "--write" in line for line in lines)

    def test_guarded_metric_gated_when_enforced(self, dirs):
        current, baselines = dirs
        write_result(
            baselines, "BENCH_parallel.json", parallel(enforced=True, seed=2.0)
        )
        write_result(
            current, "BENCH_parallel.json", parallel(enforced=True, seed=1.0)
        )
        code, _lines = check_regression.compare(current, baselines)
        assert code == check_regression.REGRESSION

    def test_regression_outranks_refresh_request(self, dirs):
        """A slowdown in one file + a speedup in another is a REGRESSION."""
        current, baselines = dirs
        write_result(baselines, "BENCH_serving.json", serving(speedup=2.0))
        write_result(current, "BENCH_serving.json", serving(speedup=1.0))
        write_result(
            baselines, "BENCH_parallel.json", parallel(enforced=True, seed=1.0)
        )
        write_result(
            current, "BENCH_parallel.json", parallel(enforced=True, seed=2.0)
        )
        code, _lines = check_regression.compare(current, baselines)
        assert code == check_regression.REGRESSION

    def test_missing_current_file_fails(self, dirs):
        current, baselines = dirs
        write_result(baselines, "BENCH_serving.json", serving())
        current.mkdir()
        code, lines = check_regression.compare(current, baselines)
        assert code == check_regression.REGRESSION
        assert any("MISSING" in line for line in lines)

    def test_unbaselined_file_flags_refresh(self, dirs):
        current, baselines = dirs
        baselines.mkdir()
        write_result(current, "BENCH_serving.json", serving())
        code, lines = check_regression.compare(current, baselines)
        assert code == check_regression.REFRESH_NEEDED
        assert any("UNBASELINED" in line for line in lines)

    def test_absolute_metrics_informational_by_default(self, dirs):
        current, baselines = dirs
        write_result(baselines, "BENCH_serving.json", serving())
        # events/sec collapses by 10x but stays informational
        payload = serving()
        payload["events_per_second"] = 10_000.0
        write_result(current, "BENCH_serving.json", payload)
        code, _lines = check_regression.compare(current, baselines)
        assert code == check_regression.OK
        code, _lines = check_regression.compare(
            current, baselines, include_absolute=True
        )
        assert code == check_regression.REGRESSION


class TestMain:
    def test_write_then_gate_roundtrip(self, dirs):
        current, baselines = dirs
        write_result(current, "BENCH_serving.json", serving())
        assert (
            check_regression.main(
                ["--current", str(current), "--baselines", str(baselines), "--write"]
            )
            == check_regression.OK
        )
        assert (baselines / "BENCH_serving.json").exists()
        assert (
            check_regression.main(
                ["--current", str(current), "--baselines", str(baselines)]
            )
            == check_regression.OK
        )

    def test_report_only_never_fails(self, dirs):
        current, baselines = dirs
        write_result(baselines, "BENCH_serving.json", serving(speedup=2.0))
        write_result(current, "BENCH_serving.json", serving(speedup=0.5))
        assert (
            check_regression.main(
                [
                    "--current",
                    str(current),
                    "--baselines",
                    str(baselines),
                    "--report-only",
                ]
            )
            == check_regression.OK
        )

    def test_missing_current_dir_fails(self, tmp_path):
        assert (
            check_regression.main(["--current", str(tmp_path / "nope")])
            == check_regression.REGRESSION
        )

    def test_committed_baselines_parse(self):
        """The repo's committed baselines stay loadable and complete."""
        baseline_dir = (
            Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
        )
        names = {p.name for p in baseline_dir.glob("BENCH_*.json")}
        assert {"BENCH_serving.json", "BENCH_parallel.json"} <= names
        for metric in check_regression.METRICS:
            payload = json.loads((baseline_dir / metric.file).read_text())
            assert metric.key in payload, f"{metric.file} lacks {metric.key}"
