"""Tests for the sharded multi-tenant detection fleet.

The load-bearing suite is the **union-identity class**: fleet detections
must be exactly the union of per-tenant serial ``DetectionService``
detections — for any shard count, any routing of tenants to shards, any
interleaving of the mixed stream, and out-of-order batches.  The rest
covers the router's accounting (backpressure, late drops), the shared
``Ingestor`` surface both implementations satisfy, and the bounded
latency reservoir behind ``latency_percentile``.
"""

import math
import queue as _queue
import random

import pytest

from repro.core.errors import ServingError
from repro.core.pattern import TemporalPattern
from repro.serving import Ingestor
from repro.serving.fleet import (
    DEFAULT_TENANT,
    DetectionFleet,
    FleetDetection,
    default_tenant_key,
    interleave_streams,
    shard_for_tenant,
    simulate_tenant_streams,
    tag_tenant_events,
    tenant_key_for_separator,
)
from repro.serving.registry import BehaviorQuery
from repro.serving.service import (
    STATS_SCHEMA_KEYS,
    DetectionService,
    LatencyReservoir,
    merged_latency_percentile,
)
from repro.syscall.events import SyscallEvent

PATTERN_PF = TemporalPattern(("proc", "file"), ((0, 1),))
PATTERN_PFS = TemporalPattern(("proc", "file", "sock"), ((0, 1), (1, 2)))

QUERIES = [
    BehaviorQuery("pf", PATTERN_PF, 6),
    BehaviorQuery("pfs", PATTERN_PFS, 12),
]


def event(time, src_key, src_label, dst_key, dst_label, tenant=None):
    if tenant is not None:
        src_key = f"{tenant}|{src_key}"
        dst_key = f"{tenant}|{dst_key}"
    return SyscallEvent(
        time=time,
        syscall="op",
        src_key=src_key,
        src_label=src_label,
        dst_key=dst_key,
        dst_label=dst_label,
    )


def random_tenant_log(rng, tenant, n_events, out_of_order=False):
    """A tenant's event stream over a small shared entity vocabulary.

    Every tenant uses the *same* entity keys (``p0..``, ``f0..``) on its
    own clock — if the fleet ever mixed two tenants into one window, the
    shared keys would fuse their graphs and the union identity would
    break loudly.  Timestamps are distinct within a tenant (the window
    rejects in-batch collisions); ``out_of_order`` shuffles the *stream
    order* inside small blocks, so times regress across batches while
    staying collision-free.
    """
    times = sorted(rng.sample(range(1, n_events * 5), n_events))
    if out_of_order:
        for start in range(0, n_events, 6):
            block = times[start : start + 6]
            rng.shuffle(block)
            times[start : start + 6] = block
    events = []
    for time in times:
        if rng.random() < 0.6:
            events.append(
                event(
                    time,
                    f"p{rng.randrange(3)}",
                    "proc",
                    f"f{rng.randrange(3)}",
                    "file",
                    tenant,
                )
            )
        else:
            events.append(
                event(time, f"f{rng.randrange(3)}", "file", "s0", "sock", tenant)
            )
    return events


def random_merge(rng, streams):
    """Random interleave preserving each stream's internal order."""
    cursors = [0] * len(streams)
    merged = []
    live = [i for i, s in enumerate(streams) if s]
    while live:
        i = rng.choice(live)
        take = rng.randrange(1, 8)
        merged.extend(streams[i][cursors[i] : cursors[i] + take])
        cursors[i] += take
        live = [i for i, s in enumerate(streams) if cursors[i] < len(s)]
    return merged


def serial_union(per_tenant, batch_size, window_span=None):
    """The reference answer: one serial service per tenant, keys unioned.

    Each tenant's substream is replayed with its own fixed ``batch_size``
    chunking — for in-order logs, detections are batch-split invariant
    (asserted by ``tests/test_serving.py``), so this matches the fleet
    regardless of how the interleaving slices tenant groups.
    """
    union = set()
    for tenant, events in per_tenant.items():
        service = DetectionService(window_span=window_span)
        service.register_all(QUERIES)
        for _batch, detections in service.replay(events, batch_size):
            union.update((tenant, d.query, d.start, d.end) for d in detections)
    return union


def serial_union_same_batches(events, batch_size, window_span=None):
    """Same-boundary reference for out-of-order streams.

    Late-drop decisions depend on where batch boundaries fall, so for
    regressing timestamps the honest identity feeds each tenant's serial
    service exactly the tenant groups the router forms from the mixed
    stream.
    """
    from repro.syscall.collector import iter_event_batches

    services: dict = {}
    union = set()
    for batch in iter_event_batches(list(events), batch_size):
        groups: dict = {}
        for e in batch:
            groups.setdefault(default_tenant_key(e), []).append(e)
        for tenant, tenant_events in groups.items():
            service = services.get(tenant)
            if service is None:
                service = DetectionService(window_span=window_span)
                service.register_all(QUERIES)
                services[tenant] = service
            for d in service.ingest(tenant_events):
                union.add((tenant, d.query, d.start, d.end))
    return union


def fleet_union(fleet, events, batch_size):
    got = set()
    for _batch, detections in fleet.replay(events, batch_size):
        got.update(d.key for d in detections)
    return got


# ----------------------------------------------------------------------
# routing helpers
# ----------------------------------------------------------------------
class TestRoutingHelpers:
    def test_default_tenant_key_splits_prefix(self):
        assert default_tenant_key(event(0, "acme|p1", "proc", "acme|f1", "file"))
        assert (
            default_tenant_key(event(0, "acme|p1", "proc", "acme|f1", "file"))
            == "acme"
        )

    def test_untagged_events_route_to_default_tenant(self):
        assert (
            default_tenant_key(event(0, "p1", "proc", "f1", "file"))
            == DEFAULT_TENANT
        )

    def test_custom_separator(self):
        key = tenant_key_for_separator("/")
        assert key(event(0, "acme/p1", "proc", "acme/f1", "file")) == "acme"

    def test_empty_separator_rejected(self):
        with pytest.raises(ServingError):
            tenant_key_for_separator("")

    def test_shard_assignment_stable_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for t in range(50):
                shard = shard_for_tenant(f"tenant-{t}", shards)
                assert 0 <= shard < shards
                assert shard == shard_for_tenant(f"tenant-{t}", shards)

    def test_tag_tenant_events_prefixes_keys_only(self):
        tagged = tag_tenant_events("acme", [event(3, "p1", "proc", "f1", "file")])
        assert tagged[0].src_key == "acme|p1"
        assert tagged[0].dst_key == "acme|f1"
        assert tagged[0].src_label == "proc"
        assert tagged[0].time == 3

    def test_tenant_id_must_not_contain_separator(self):
        with pytest.raises(ServingError):
            tag_tenant_events("a|b", [])

    def test_interleave_preserves_per_stream_order(self):
        a = [event(t, "p", "proc", "f", "file", "a") for t in range(10)]
        b = [event(t, "p", "proc", "f", "file", "b") for t in range(7)]
        merged = interleave_streams([a, b], chunk=3)
        assert len(merged) == 17
        assert [e.time for e in merged if e.src_key.startswith("a|")] == list(
            range(10)
        )
        assert [e.time for e in merged if e.src_key.startswith("b|")] == list(
            range(7)
        )

    def test_interleave_rejects_bad_chunk(self):
        with pytest.raises(ServingError):
            interleave_streams([], chunk=0)

    def test_simulate_tenant_streams_tags_every_event(self):
        events = simulate_tenant_streams(tenants=3, instances=1, seed=5)
        tenants = {default_tenant_key(e) for e in events}
        assert tenants == {"tenant-000", "tenant-001", "tenant-002"}

    def test_simulate_rejects_zero_tenants(self):
        with pytest.raises(ServingError):
            simulate_tenant_streams(tenants=0, instances=1)


# ----------------------------------------------------------------------
# the correctness bar: fleet == union of per-tenant serial services
# ----------------------------------------------------------------------
class TestFleetEqualsSerialUnion:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_random_interleavings(self, shards):
        for seed in range(5):
            rng = random.Random(100 * shards + seed)
            tenants = [f"t{i}" for i in range(rng.randrange(2, 6))]
            per_tenant = {
                t: random_tenant_log(rng, t, rng.randrange(20, 60))
                for t in tenants
            }
            events = random_merge(rng, list(per_tenant.values()))
            batch_size = rng.choice([3, 7, 16, 64])
            fleet = DetectionFleet(shards=shards)
            fleet.register_all(QUERIES)
            assert fleet_union(fleet, events, batch_size) == serial_union(
                per_tenant, batch_size
            ), f"seed={seed} shards={shards} batch={batch_size}"

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_out_of_order_batches_with_eviction(self, shards):
        for seed in range(4):
            rng = random.Random(7_000 + 10 * shards + seed)
            per_tenant = {
                t: random_tenant_log(rng, t, 50, out_of_order=True)
                for t in ("alpha", "beta", "gamma")
            }
            events = random_merge(rng, list(per_tenant.values()))
            # window barely wider than the widest query span: eviction,
            # reinsertion, and late drops all fire
            fleet = DetectionFleet(shards=shards, window_span=14)
            fleet.register_all(QUERIES)
            got = fleet_union(fleet, events, 8)
            assert got == serial_union_same_batches(events, 8, window_span=14)

    def test_any_routing_yields_identical_detections(self):
        rng = random.Random(42)
        per_tenant = {
            t: random_tenant_log(rng, t, 40) for t in ("a", "b", "c", "d", "e")
        }
        events = random_merge(rng, list(per_tenant.values()))
        reference = None
        routings = [
            None,  # default crc32
            lambda tenant, n: 0,  # everything on one shard
            lambda tenant, n: (len(tenant) + ord(tenant[0])) % n,
        ]
        for assign in routings:
            fleet = DetectionFleet(shards=3, assign=assign)
            fleet.register_all(QUERIES)
            got = fleet_union(fleet, events, 16)
            if reference is None:
                reference = got
            assert got == reference
        assert reference == serial_union(per_tenant, 16)

    def test_batch_index_is_tenant_local(self):
        # one tenant's detections carry its own service's batch counter,
        # not the fleet's routed-batch sequence
        a = [event(t, "p0", "proc", "f0", "file", "a") for t in range(4)]
        b = [event(t, "p0", "proc", "f0", "file", "b") for t in range(2)]
        fleet = DetectionFleet(shards=2)
        fleet.register_all(QUERIES)
        first = fleet.ingest(a[:2])  # a's batch 0
        second = fleet.ingest(a[2:] + b)  # a's batch 1, b's batch 0
        assert {(d.tenant, d.batch) for d in first} == {("a", 0)}
        # b first appears in the fleet's SECOND routed batch, but its own
        # service counts it as batch 0
        assert ("b", 0) in {(d.tenant, d.batch) for d in second}
        assert ("a", 1) in {(d.tenant, d.batch) for d in second}
        fleet.close()

    @pytest.mark.parametrize("shards", [2, 4])
    def test_process_runner_identical_to_inline(self, shards):
        rng = random.Random(900 + shards)
        per_tenant = {
            t: random_tenant_log(rng, t, 60, out_of_order=True)
            for t in ("a", "b", "c", "d", "e", "f")
        }
        events = random_merge(rng, list(per_tenant.values()))
        inline = DetectionFleet(shards=shards, window_span=14)
        inline.register_all(QUERIES)
        inline_batches = [dets for _i, dets in inline.replay(events, 16)]
        process_fleet = DetectionFleet(
            shards=shards, window_span=14, runner="process", queue_depth=2
        )
        process_fleet.register_all(QUERIES)
        with process_fleet as fleet:
            process_batches = [dets for _i, dets in fleet.replay(events, 16)]
            stats = fleet.stats
        # not just the union — batch-by-batch identical detection lists
        assert process_batches == inline_batches
        assert stats.late_dropped == inline.stats.late_dropped
        assert stats.events == inline.stats.events
        assert stats.detections == inline.stats.detections
        union = {d.key for dets in process_batches for d in dets}
        assert union == serial_union_same_batches(events, 16, window_span=14)

    def test_process_ingest_synchronous(self):
        # ingest() on a process fleet blocks for its own batch's results
        events = [event(t, "p0", "proc", "f0", "file", "solo") for t in range(6)]
        fleet = DetectionFleet(shards=2, runner="process")
        fleet.register_all(QUERIES)
        service = DetectionService()
        service.register_all(QUERIES)
        with fleet:
            first = fleet.ingest(events[:3])
            expected_first = service.ingest(events[:3])
            assert {d.span for d in first} == {d.span for d in expected_first}
            second = fleet.ingest(events[3:])
            expected_second = service.ingest(events[3:])
            assert {d.span for d in second} == {d.span for d in expected_second}


# ----------------------------------------------------------------------
# accounting: late drops per tenant, backpressure at the router
# ----------------------------------------------------------------------
class TestAccounting:
    def test_late_drops_are_per_tenant(self):
        # tenant "ahead" runs its clock far past tenant "behind"; with a
        # shared window behind's events would all be late — per-tenant
        # windows must keep them alive
        fleet = DetectionFleet(shards=1, window_span=10)
        fleet.register(QUERIES[0])  # pf, span 6 — fits the narrow window
        fleet.ingest(
            [event(1000 + t, "p0", "proc", "f0", "file", "ahead") for t in range(3)]
        )
        detections = fleet.ingest(
            [event(t, "p0", "proc", "f0", "file", "behind") for t in range(3)]
        )
        assert {d.tenant for d in detections} == {"behind"}
        assert fleet.stats.late_dropped == 0

    def test_late_drop_rollup_matches_serial(self):
        fleet = DetectionFleet(shards=2, window_span=6)
        fleet.register(QUERIES[0])  # pf, span 6
        stream = [
            event(0, "p0", "proc", "f0", "file", "a"),
            event(50, "p0", "proc", "f0", "file", "a"),
            # 40 is > window behind a's sealed frontier (50): dropped
            event(40, "p1", "proc", "f1", "file", "a"),
            # but 40 is b's frontier: alive
            event(40, "p1", "proc", "f1", "file", "b"),
        ]
        for e in stream:
            fleet.ingest([e])
        assert fleet.stats.late_dropped == 1
        info = fleet.stats.as_dict()
        assert info["late_dropped"] == 1
        assert info["tenants"] == 2

    def test_backpressure_counted_once_per_stalled_submit(self):
        class RejectingQueue:
            def __init__(self, rejects):
                self.rejects = rejects
                self.items = []

            def put_nowait(self, item):
                self.put(item)

            def put(self, item, timeout=None):
                if self.rejects:
                    self.rejects -= 1
                    raise _queue.Full
                self.items.append(item)

        class EmptyResults:
            def get_nowait(self):
                raise _queue.Empty

        fleet = DetectionFleet(shards=1, runner="process", queue_depth=1)
        fleet.register_all(QUERIES)
        fake = RejectingQueue(rejects=3)
        fleet._in_queues = [fake]
        fleet._results = EmptyResults()
        fleet._put(0, ("batch", 0, "t", []))
        assert fleet.stats.backpressure_waits == 1
        assert len(fake.items) == 1
        # a submit that goes straight in does not count
        fleet._put(0, ("batch", 1, "t", []))
        assert fleet.stats.backpressure_waits == 1

    def test_real_process_backpressure_completes(self):
        rng = random.Random(3)
        per_tenant = {
            t: random_tenant_log(rng, t, 40) for t in ("a", "b", "c", "d")
        }
        events = random_merge(rng, list(per_tenant.values()))
        fleet = DetectionFleet(shards=1, runner="process", queue_depth=1)
        fleet.register_all(QUERIES)
        with fleet:
            got = fleet_union(fleet, events, 4)
            stats = fleet.stats
        assert got == serial_union(per_tenant, 4)
        assert stats.backpressure_waits >= 0
        assert stats.routed_batches == math.ceil(len(events) / 4)
        assert stats.routed_events == len(events)

    def test_fleet_stats_schema_and_rollup(self):
        fleet = DetectionFleet(shards=2)
        fleet.register_all(QUERIES)
        fleet.ingest(
            [event(t, "p0", "proc", "f0", "file", f"t{t % 3}") for t in range(9)]
        )
        stats = fleet.stats
        info = stats.as_dict()
        assert set(STATS_SCHEMA_KEYS) <= set(info)
        assert info["kind"] == "fleet"
        assert info["shards"] == 2
        assert info["tenants"] == 3
        assert len(info["per_shard"]) == 2
        assert all(s["kind"] == "service" for s in info["per_shard"])
        assert info["events"] == sum(s["events"] for s in info["per_shard"]) == 9
        assert stats.events_per_second > 0
        assert stats.latency_percentile(0.95) >= 0.0


# ----------------------------------------------------------------------
# one shared surface: Ingestor conformance for both implementations
# ----------------------------------------------------------------------
def _make_service():
    service = DetectionService()
    return service


def _make_fleet():
    return DetectionFleet(shards=2)


def _make_process_fleet():
    return DetectionFleet(shards=2, runner="process")


class TestIngestorConformance:
    @pytest.mark.parametrize(
        "factory", [_make_service, _make_fleet, _make_process_fleet]
    )
    def test_conformance(self, factory):
        impl = factory()
        assert isinstance(impl, Ingestor)
        assert impl.register_all(QUERIES) == [0, 1]
        events = [event(t, "p0", "proc", "f0", "file") for t in range(8)]
        detections = impl.ingest(events[:4])
        assert isinstance(detections, list)
        for d in detections:
            assert d.query in ("pf", "pfs")
            assert isinstance(d.span, tuple)
        replayed = list(impl.replay(events[4:], 2))
        assert [index for index, _d in replayed] == [0, 1]
        info = impl.stats.as_dict()
        assert set(STATS_SCHEMA_KEYS) <= set(info)
        assert info["events"] == 8
        assert info["kind"] in ("service", "fleet")
        impl.close()
        impl.close()  # idempotent

    def test_both_report_identical_spans(self):
        events = [event(t, "p0", "proc", "f0", "file") for t in range(12)]
        results = {}
        for name, factory in [("service", _make_service), ("fleet", _make_fleet)]:
            impl = factory()
            impl.register_all(QUERIES)
            spans = set()
            for _i, detections in impl.replay(events, 5):
                spans.update((d.query, d.span) for d in detections)
            impl.close()
            results[name] = spans
        assert results["service"] == results["fleet"] != set()

    def test_fleet_rejects_use_after_close(self):
        fleet = DetectionFleet(shards=1)
        fleet.register_all(QUERIES)
        fleet.close()
        with pytest.raises(ServingError):
            fleet.ingest([event(0, "p", "proc", "f", "file")])
        with pytest.raises(ServingError):
            list(fleet.replay([], 4))


# ----------------------------------------------------------------------
# construction / validation
# ----------------------------------------------------------------------
class TestFleetConstruction:
    def test_needs_a_shard(self):
        with pytest.raises(ServingError):
            DetectionFleet(shards=0)

    def test_rejects_unknown_runner(self):
        with pytest.raises(ServingError):
            DetectionFleet(runner="thread")

    def test_rejects_bad_queue_depth(self):
        with pytest.raises(ServingError):
            DetectionFleet(queue_depth=0)

    def test_register_after_start_rejected(self):
        fleet = DetectionFleet(shards=1)
        fleet.register_all(QUERIES)
        fleet.ingest([event(0, "p", "proc", "f", "file")])
        with pytest.raises(ServingError, match="before the first ingest"):
            fleet.register(QUERIES[0])
        fleet.close()

    def test_query_wider_than_window_rejected(self):
        fleet = DetectionFleet(shards=1, window_span=5)
        with pytest.raises(ServingError, match="wider than"):
            fleet.register(BehaviorQuery("wide", PATTERN_PF, 50))

    def test_out_of_range_assignment_rejected(self):
        fleet = DetectionFleet(shards=2, assign=lambda tenant, n: n)
        fleet.register_all(QUERIES)
        with pytest.raises(ServingError, match="out of range"):
            fleet.ingest([event(0, "p", "proc", "f", "file")])
        fleet.close()

    def test_fleet_detection_key_and_span(self):
        d = FleetDetection(
            tenant="acme", shard=1, query_id=0, query="pf", start=3, end=7, batch=2
        )
        assert d.span == (3, 7)
        assert d.key == ("acme", "pf", 3, 7)


# ----------------------------------------------------------------------
# the bounded latency reservoir
# ----------------------------------------------------------------------
class TestLatencyReservoir:
    def test_exact_below_capacity(self):
        rng = random.Random(1)
        values = [rng.random() for _ in range(100)]
        reservoir = LatencyReservoir(capacity=256)
        for v in values:
            reservoir.add(v)
        ordered = sorted(values)
        for q in (0.5, 0.95, 0.99):
            rank = min(len(ordered) - 1, max(0, math.ceil(len(ordered) * q) - 1))
            assert reservoir.percentile(q) == ordered[rank]
        assert reservoir.count == 100
        assert reservoir.kept == 100
        assert reservoir.max == max(values)
        assert reservoir.total == pytest.approx(sum(values))

    def test_memory_bounded_but_counters_exact(self):
        reservoir = LatencyReservoir(capacity=64)
        for i in range(10_000):
            reservoir.add(i * 1e-6)
        assert reservoir.kept == 64
        assert len(reservoir.samples) == 64
        assert reservoir.count == 10_000
        assert reservoir.max == pytest.approx(9_999e-6)
        assert reservoir.total == pytest.approx(sum(i * 1e-6 for i in range(10_000)))

    def test_percentile_within_documented_error(self):
        # documented rank error ~ sqrt(q(1-q)/k); at k=256, q=0.95 that's
        # ~1.4 rank points — give 4 sigma of slack on a uniform stream
        reservoir = LatencyReservoir(capacity=256)
        rng = random.Random(99)
        for _ in range(50_000):
            reservoir.add(rng.random())
        for q in (0.5, 0.95):
            sigma = math.sqrt(q * (1 - q) / 256)
            assert abs(reservoir.percentile(q) - q) < 4 * sigma

    def test_empty_percentile_is_zero(self):
        assert LatencyReservoir().percentile(0.95) == 0.0

    def test_merged_exact_when_under_capacity(self):
        rng = random.Random(2)
        groups = [[rng.random() for _ in range(30)] for _ in range(3)]
        reservoirs = []
        for values in groups:
            r = LatencyReservoir(capacity=128)
            for v in values:
                r.add(v)
            reservoirs.append(r)
        merged_values = sorted(v for values in groups for v in values)
        for q in (0.5, 0.95, 0.99):
            rank = min(
                len(merged_values) - 1,
                max(0, math.ceil(len(merged_values) * q) - 1),
            )
            assert merged_latency_percentile(reservoirs, q) == pytest.approx(
                merged_values[rank]
            )

    def test_merged_weights_downsampled_reservoirs(self):
        # a reservoir that observed 10x more batches must dominate the
        # merged percentile even though it kept the same sample count
        slow = LatencyReservoir(capacity=32)
        for _ in range(320):
            slow.add(1.0)
        fast = LatencyReservoir(capacity=32)
        for _ in range(32):
            fast.add(0.001)
        assert merged_latency_percentile([slow, fast], 0.5) == 1.0

    def test_merged_empty_is_zero(self):
        assert merged_latency_percentile([], 0.95) == 0.0
        assert merged_latency_percentile([LatencyReservoir()], 0.5) == 0.0
