"""Tests for dataset io and synthetic replication."""

import pytest

from repro.core.errors import DatasetError
from repro.datasets.io import (
    graph_from_dict,
    graph_to_dict,
    iter_corpus,
    iter_events_jsonl,
    iter_graphs_jsonl,
    load_corpus,
    load_events_jsonl,
    load_graphs_jsonl,
    save_events_jsonl,
    save_graphs_jsonl,
)
from repro.datasets.synthetic import replicate_graphs, replicate_training_data
from repro.syscall import SyscallEvent, build_training_data

from conftest import build_graph


class TestIO:
    def test_roundtrip_single_graph(self):
        g = build_graph([(0, 1, 3), (1, 2, 7)], labels=["A", "B", "C"], name="g1")
        back = graph_from_dict(graph_to_dict(g))
        assert back.name == "g1"
        assert list(back.labels) == ["A", "B", "C"]
        assert [(e.src, e.dst, e.time) for e in back.edges] == [(0, 1, 3), (1, 2, 7)]

    def test_roundtrip_file(self, tmp_path):
        graphs = [
            build_graph([(0, 1, 0)], labels=["A", "B"], name="x"),
            build_graph([(0, 1, 0), (1, 0, 1)], labels=["C", "D"], name="y"),
        ]
        path = tmp_path / "graphs.jsonl"
        assert save_graphs_jsonl(graphs, path) == 2
        loaded = load_graphs_jsonl(path)
        assert len(loaded) == 2
        assert loaded[1].num_edges == 2

    def test_event_log_roundtrip(self, tmp_path):
        events = [
            SyscallEvent(0, "open", "p1", "proc", "f1", "file"),
            SyscallEvent(4, "connect", "p1", "proc", "s1", "sock"),
        ]
        path = tmp_path / "log.jsonl"
        assert save_events_jsonl(events, path) == 2
        assert load_events_jsonl(path) == events

    def test_malformed_event_payload_rejected(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"time": 0, "syscall": "open"}\n')
        with pytest.raises(DatasetError):
            load_events_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "graphs.jsonl"
        g = build_graph([(0, 1, 0)], labels=["A", "B"])
        path.write_text('{"labels": ["A", "B"], "edges": [[0, 1, 0]]}\n\n')
        assert len(load_graphs_jsonl(path)) == 1

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(DatasetError):
            load_graphs_jsonl(path)

    def test_malformed_payload_raises(self):
        with pytest.raises(DatasetError):
            graph_from_dict({"labels": ["A"]})

    def test_malformed_edge_raises(self):
        with pytest.raises(DatasetError):
            graph_from_dict({"labels": ["A", "B"], "edges": [[0, "x", 0]]})


class TestStreaming:
    def test_iter_graphs_matches_load(self, tmp_path):
        graphs = [
            build_graph([(0, 1, 0)], labels=["A", "B"], name="x"),
            build_graph([(0, 1, 0), (1, 0, 1)], labels=["C", "D"], name="y"),
        ]
        path = tmp_path / "graphs.jsonl"
        save_graphs_jsonl(graphs, path)
        streamed = list(iter_graphs_jsonl(path))
        assert [g.name for g in streamed] == ["x", "y"]

    def test_iter_graphs_is_lazy(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"labels": ["A", "B"], "edges": [[0, 1, 0]]}\n{broken\n')
        it = iter_graphs_jsonl(path)
        assert next(it).num_edges == 1  # first line decodes fine
        with pytest.raises(DatasetError):
            next(it)

    def test_iter_events_matches_load(self, tmp_path):
        events = [
            SyscallEvent(0, "open", "p1", "proc", "f1", "file"),
            SyscallEvent(4, "connect", "p1", "proc", "s1", "sock"),
        ]
        path = tmp_path / "log.jsonl"
        save_events_jsonl(events, path)
        assert list(iter_events_jsonl(path)) == events

    def test_iter_corpus_streams_partitions(self, tmp_path):
        g = build_graph([(0, 1, 0)], labels=["A", "B"], name="g")
        save_graphs_jsonl([g, g], tmp_path / "ssh-login.jsonl")
        save_graphs_jsonl([g], tmp_path / "background.jsonl")
        pairs = [(p, graph.name) for p, graph in iter_corpus(tmp_path)]
        assert pairs == [
            ("ssh-login", "g"),
            ("ssh-login", "g"),
            ("background", "g"),
        ]


class TestCorruptInputs:
    def test_truncated_jsonl(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        path.write_text('{"labels": ["A", "B"], "edges": [[0, 1, 0]]}\n{"labels')
        with pytest.raises(DatasetError, match="invalid JSON"):
            load_graphs_jsonl(path)

    def test_bad_event_schema(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(
            '{"time": "noon", "syscall": "open", "src_key": "p", '
            '"src_label": "proc", "dst_key": "f", "dst_label": "file"}\n'
        )
        with pytest.raises(DatasetError, match="log.jsonl:1"):
            load_events_jsonl(path)

    def test_unreadable_path_wrapped(self, tmp_path):
        # a directory given where a jsonl file is expected: the OSError
        # surfaces as DatasetError (exit 2 in the CLI), not a traceback
        with pytest.raises(DatasetError, match="cannot read"):
            load_graphs_jsonl(tmp_path)
        with pytest.raises(DatasetError, match="cannot read"):
            load_events_jsonl(tmp_path)

    def test_unwritable_path_wrapped(self, tmp_path):
        g = build_graph([(0, 1, 0)], labels=["A", "B"])
        with pytest.raises(DatasetError, match="cannot write"):
            save_graphs_jsonl([g], tmp_path / "no" / "such" / "dir.jsonl")
        with pytest.raises(DatasetError, match="cannot write"):
            save_events_jsonl([], tmp_path / "no" / "such" / "dir.jsonl")

    def test_missing_background_file(self, tmp_path):
        g = build_graph([(0, 1, 0)], labels=["A", "B"])
        save_graphs_jsonl([g], tmp_path / "ssh-login.jsonl")
        with pytest.raises(DatasetError, match="background.jsonl"):
            load_corpus(tmp_path)
        with pytest.raises(DatasetError, match="background.jsonl"):
            next(iter_corpus(tmp_path))

    def test_missing_behavior_file(self, tmp_path):
        g = build_graph([(0, 1, 0)], labels=["A", "B"])
        save_graphs_jsonl([g], tmp_path / "background.jsonl")
        save_graphs_jsonl([g], tmp_path / "ssh-login.jsonl")
        with pytest.raises(DatasetError, match="ftpd-login"):
            load_corpus(tmp_path, behaviors=["ftpd-login"])

    def test_empty_corpus_dir(self, tmp_path):
        g = build_graph([(0, 1, 0)], labels=["A", "B"])
        save_graphs_jsonl([g], tmp_path / "background.jsonl")
        with pytest.raises(DatasetError, match="no behavior files"):
            load_corpus(tmp_path)


class TestReplication:
    def test_replicate_graphs(self):
        g = build_graph([(0, 1, 0)], labels=["A", "B"])
        out = replicate_graphs([g], 4)
        assert len(out) == 4
        assert all(x is g for x in out)

    def test_replicate_factor_validation(self):
        with pytest.raises(DatasetError):
            replicate_graphs([], 0)

    def test_replicate_training_data(self):
        data = build_training_data(instances_per_behavior=2, background_graphs=3)
        syn4 = replicate_training_data(data, 4)
        assert len(syn4.behavior("gzip-decompress")) == 8
        assert len(syn4.background) == 12

    def test_replication_preserves_frequencies(self):
        """Pattern frequency is invariant under replication (Appendix N)."""
        from repro.core.miner import MinerConfig, TGMiner

        data = build_training_data(instances_per_behavior=3, background_graphs=4)
        syn2 = replicate_training_data(data, 2)
        config = MinerConfig(max_edges=2, min_pos_support=0.7, max_seconds=20)
        base = TGMiner(config).mine(data.behavior("gzip-decompress"), data.background)
        repl = TGMiner(config).mine(syn2.behavior("gzip-decompress"), syn2.background)
        assert base.best_score == pytest.approx(repl.best_score)
        assert {m.pattern.key() for m in base.best} == {
            m.pattern.key() for m in repl.best
        }
