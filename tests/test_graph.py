"""Unit tests for :mod:`repro.core.graph`."""

import pytest

from repro.core.errors import GraphError, TimestampOrderError
from repro.core.graph import TemporalEdge, TemporalGraph

from conftest import build_graph


class TestConstruction:
    def test_add_node_returns_dense_ids(self):
        g = TemporalGraph()
        assert g.add_node("A") == 0
        assert g.add_node("B") == 1
        assert g.num_nodes == 2

    def test_add_edge_auto_timestamps_are_increasing(self):
        g = TemporalGraph()
        a, b = g.add_node("A"), g.add_node("B")
        e1 = g.add_edge(a, b)
        e2 = g.add_edge(b, a)
        assert e2.time > e1.time
        g.freeze()

    def test_add_edge_unknown_node_rejected(self):
        g = TemporalGraph()
        g.add_node("A")
        with pytest.raises(GraphError):
            g.add_edge(0, 5)

    def test_negative_timestamp_rejected(self):
        g = TemporalGraph()
        a, b = g.add_node("A"), g.add_node("B")
        with pytest.raises(TimestampOrderError):
            g.add_edge(a, b, -1)

    def test_freeze_rejects_concurrent_edges(self):
        g = TemporalGraph()
        a, b = g.add_node("A"), g.add_node("B")
        g.add_edge(a, b, 3)
        g.add_edge(b, a, 3)
        with pytest.raises(TimestampOrderError):
            g.freeze()

    def test_freeze_sorts_out_of_order_edges(self):
        g = TemporalGraph()
        a, b = g.add_node("A"), g.add_node("B")
        g.add_edge(a, b, 9)
        g.add_edge(b, a, 2)
        g.freeze()
        assert [e.time for e in g.edges] == [2, 9]

    def test_freeze_is_idempotent(self):
        g = build_graph([(0, 1, 0)])
        assert g.freeze() is g

    def test_mutation_after_freeze_rejected(self):
        g = build_graph([(0, 1, 0)])
        with pytest.raises(GraphError):
            g.add_node("X")
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 5)

    def test_indexed_access_requires_freeze(self):
        g = TemporalGraph()
        g.add_node("A")
        with pytest.raises(GraphError):
            g.nodes_with_label("A")


class TestAccessors:
    def test_basic_counts(self, figure3_graph):
        assert figure3_graph.num_nodes == 4
        assert figure3_graph.num_edges == 6
        assert len(figure3_graph) == 6

    def test_labels_and_label_set(self, figure3_graph):
        assert figure3_graph.label(0) == "A"
        assert figure3_graph.label_set() == {"A", "B", "C", "E"}

    def test_nodes_with_label(self, figure3_graph):
        assert list(figure3_graph.nodes_with_label("A")) == [0]
        assert list(figure3_graph.nodes_with_label("missing")) == []

    def test_degrees(self, figure3_graph):
        assert figure3_graph.out_degree(0) == 4
        assert figure3_graph.in_degree(1) == 2
        assert figure3_graph.in_degree(3) == 2

    def test_out_in_edges(self, figure3_graph):
        outs = list(figure3_graph.out_edges(0))
        assert all(e.src == 0 for e in outs)
        assert len(outs) == 4
        ins = list(figure3_graph.in_edges(2))
        assert {e.time for e in ins} == {3, 4}

    def test_edges_between_label_pair(self, figure3_graph):
        idxs = figure3_graph.edges_between("A", "B")
        assert [figure3_graph.edges[i].time for i in idxs] == [1, 2]
        assert figure3_graph.edges_between("E", "A") == ()

    def test_span(self, figure3_graph):
        assert figure3_graph.span() == (1, 6)

    def test_span_empty_graph_raises(self):
        g = TemporalGraph()
        g.add_node("A")
        g.freeze()
        with pytest.raises(GraphError):
            g.span()


class TestResidualHelpers:
    def test_edge_index_after(self, figure3_graph):
        assert figure3_graph.edge_index_after(0) == 0
        assert figure3_graph.edge_index_after(3) == 3
        assert figure3_graph.edge_index_after(99) == 6

    def test_residual_size(self, figure3_graph):
        assert figure3_graph.residual_size(0) == 6
        assert figure3_graph.residual_size(4) == 2
        assert figure3_graph.residual_size(6) == 0

    def test_suffix_label_set_shrinks(self, figure3_graph):
        full = figure3_graph.suffix_label_set(0)
        tail = figure3_graph.suffix_label_set(4)
        assert full == {"A", "B", "C", "E"}
        assert tail == {"A", "C", "E"}
        assert figure3_graph.suffix_label_set(6) == frozenset()


class TestWindow:
    def test_window_extracts_compacted_subgraph(self, figure3_graph):
        w = figure3_graph.window(3, 5)
        assert w.num_edges == 3
        assert w.frozen
        # timestamps preserved, node ids compacted; edges at t=3,4,5 touch
        # B, C, A, E.
        assert [e.time for e in w.edges] == [3, 4, 5]
        assert w.num_nodes == 4
        assert sorted(w.labels) == ["A", "B", "C", "E"]

    def test_window_empty_range(self, figure3_graph):
        w = figure3_graph.window(100, 200)
        assert w.num_edges == 0
        assert w.num_nodes == 0


class TestFromEvents:
    def test_from_events_builds_and_freezes(self):
        g = TemporalGraph.from_events([("a", "b", 0), ("b", "c", 1), ("a", "c", 2)])
        assert g.frozen
        assert g.num_nodes == 3
        assert g.num_edges == 3

    def test_from_events_reuses_keys(self):
        g = TemporalGraph.from_events([("a", "b", 0), ("a", "b", 1)])
        assert g.num_nodes == 2
        assert g.num_edges == 2

    def test_from_events_label_mapping(self):
        g = TemporalGraph.from_events(
            [("k1", "k2", 0)], node_keys={"k1": "proc", "k2": "file"}
        )
        assert sorted(g.labels) == ["file", "proc"]


class TestTemporalEdge:
    def test_endpoints(self):
        e = TemporalEdge(3, 5, 7)
        assert e.endpoints() == (3, 5)

    def test_frozen_dataclass(self):
        e = TemporalEdge(0, 1, 2)
        with pytest.raises(AttributeError):
            e.src = 9
