"""Tests for TGMiner: planted patterns, pruning variants, stats, config."""

import random

import pytest

from repro.core.errors import MiningError
from repro.core.graph import TemporalGraph
from repro.core.miner import (
    MinerConfig,
    TGMiner,
    VARIANT_NAMES,
    miner_variant,
)

from conftest import random_temporal_graph


def planted_dataset(seed=0, n_pos=8, n_neg=8, noise=6):
    """Positive graphs embed P->F->S in order; negatives never do."""
    rng = random.Random(seed)
    labels = ["P", "F", "S", "Q", "R"]

    def make(planted):
        g = TemporalGraph()
        ids = [g.add_node(l) for l in labels]
        t = 0
        if planted:
            g.add_edge(ids[0], ids[1], t)
            t += 1
            g.add_edge(ids[1], ids[2], t)
            t += 1
        for _ in range(noise):
            u, v = rng.sample(range(3, 5), 2)
            g.add_edge(ids[u], ids[v], t)
            t += 1
        return g.freeze()

    return [make(True) for _ in range(n_pos)], [make(False) for _ in range(n_neg)]


class TestPlantedPattern:
    def test_finds_planted_core(self):
        pos, neg = planted_dataset()
        result = TGMiner(MinerConfig(max_edges=2, min_pos_support=0.9)).mine(pos, neg)
        best_keys = {m.pattern.key() for m in result.best}
        planted = (("P", "F", "S"), ((0, 1), (1, 2)))
        assert planted in best_keys
        assert result.best_score > 0

    def test_best_by_size_tracks_each_depth(self):
        pos, neg = planted_dataset()
        result = TGMiner(MinerConfig(max_edges=2, min_pos_support=0.9)).mine(pos, neg)
        assert 1 in result.best_by_size
        assert 2 in result.best_by_size
        assert result.best_by_size[2].score >= result.best_by_size[1].score

    def test_frequencies_reported(self):
        pos, neg = planted_dataset()
        result = TGMiner(MinerConfig(max_edges=2, min_pos_support=0.9)).mine(pos, neg)
        top = [m for m in result.best if m.pattern.num_edges == 2][0]
        assert top.pos_freq == 1.0
        assert top.neg_freq == 0.0

    def test_min_support_filters_rare_patterns(self):
        pos, neg = planted_dataset()
        # Demand support above 100%: nothing can be mined.
        result = TGMiner(MinerConfig(min_pos_support=1.0, max_edges=2)).mine(
            pos[:4] + neg[:4], neg
        )
        # planted edge occurs in only half the "positives" here
        keys = {m.pattern.key() for m in result.best}
        assert (("P", "F"), ((0, 1),)) not in keys


class TestVariants:
    def test_variant_names_resolve(self):
        for name in VARIANT_NAMES:
            config = miner_variant(name)
            config.validate()

    def test_variant_flags(self):
        assert miner_variant("SubPrune").supergraph_pruning is False
        assert miner_variant("SupPrune").subgraph_pruning is False
        assert miner_variant("PruneGI").subgraph_test == "gi"
        assert miner_variant("PruneVF2").subgraph_test == "vf2"
        assert miner_variant("LinearScan").residual_equivalence == "linear"

    def test_unknown_variant_raises(self):
        with pytest.raises(MiningError):
            miner_variant("TurboMiner")

    @pytest.mark.parametrize("name", VARIANT_NAMES)
    def test_all_variants_agree_on_planted_dataset(self, name):
        pos, neg = planted_dataset()
        base = MinerConfig(max_edges=3, min_pos_support=0.9)
        reference = TGMiner(base).mine(pos, neg)
        result = TGMiner(miner_variant(name, base)).mine(pos, neg)
        assert result.best_score == pytest.approx(reference.best_score)
        assert {m.pattern.key() for m in result.best} == {
            m.pattern.key() for m in reference.best
        }

    @pytest.mark.parametrize("name", VARIANT_NAMES)
    @pytest.mark.parametrize("seed", range(4))
    def test_all_variants_agree_on_random_data(self, name, seed):
        rng = random.Random(seed)
        pos = [random_temporal_graph(rng, 4, 7, "ABC") for _ in range(4)]
        neg = [random_temporal_graph(rng, 4, 7, "ABC") for _ in range(4)]
        base = MinerConfig(max_edges=3, min_pos_support=0.5, max_best_patterns=10_000)
        reference = TGMiner(
            MinerConfig(
                max_edges=3,
                min_pos_support=0.5,
                max_best_patterns=10_000,
                subgraph_pruning=False,
                supergraph_pruning=False,
                upper_bound_pruning=False,
            )
        ).mine(pos, neg)
        result = TGMiner(miner_variant(name, base)).mine(pos, neg)
        assert result.best_score == pytest.approx(reference.best_score)
        assert {m.pattern.key() for m in result.best} == {
            m.pattern.key() for m in reference.best
        }

    def test_pruning_reduces_exploration(self):
        pos, neg = planted_dataset(noise=8)
        full = TGMiner(
            MinerConfig(
                max_edges=4,
                min_pos_support=0.4,
                subgraph_pruning=False,
                supergraph_pruning=False,
                upper_bound_pruning=False,
            )
        ).mine(pos, neg)
        pruned = TGMiner(MinerConfig(max_edges=4, min_pos_support=0.4)).mine(pos, neg)
        assert pruned.stats.patterns_explored <= full.stats.patterns_explored


class TestStats:
    def test_counters_populated(self):
        pos, neg = planted_dataset(noise=8)
        result = TGMiner(MinerConfig(max_edges=4, min_pos_support=0.4)).mine(pos, neg)
        stats = result.stats
        assert stats.patterns_explored > 0
        assert stats.elapsed_seconds > 0
        assert 0.0 <= stats.subgraph_trigger_rate() <= 1.0
        assert 0.0 <= stats.supergraph_trigger_rate() <= 1.0

    def test_trigger_rates_zero_on_empty(self):
        from repro.core.miner import MiningStats

        stats = MiningStats()
        assert stats.subgraph_trigger_rate() == 0.0
        assert stats.supergraph_trigger_rate() == 0.0


class TestConfig:
    def test_invalid_max_edges(self):
        with pytest.raises(MiningError):
            MinerConfig(max_edges=0).validate()

    def test_invalid_support(self):
        with pytest.raises(MiningError):
            MinerConfig(min_pos_support=1.5).validate()

    def test_invalid_subgraph_test(self):
        with pytest.raises(MiningError):
            MinerConfig(subgraph_test="magic").validate()

    def test_invalid_residual_mode(self):
        with pytest.raises(MiningError):
            MinerConfig(residual_equivalence="hash").validate()

    def test_empty_positive_set_rejected(self):
        with pytest.raises(MiningError):
            TGMiner().mine([], [])

    def test_miner_validates_on_construction(self):
        with pytest.raises(MiningError):
            TGMiner(MinerConfig(max_edges=-1))

    def test_mine_validates_config(self):
        # construction-time validation can be sidestepped by swapping the
        # config afterwards; mine() must re-validate at entry instead of
        # mining garbage
        pos, neg = planted_dataset()
        miner = TGMiner()
        miner.config = MinerConfig(min_pos_support=-0.5)
        with pytest.raises(MiningError):
            miner.mine(pos, neg)


class TestLimits:
    def test_max_edges_respected(self):
        pos, neg = planted_dataset()
        result = TGMiner(MinerConfig(max_edges=2, min_pos_support=0.5)).mine(pos, neg)
        assert all(m.pattern.num_edges <= 2 for m in result.best)
        assert max(result.best_by_size) <= 2

    def test_timeout_flags_result(self):
        pos, neg = planted_dataset(noise=10)
        result = TGMiner(
            MinerConfig(max_edges=8, min_pos_support=0.1, max_seconds=0.0)
        ).mine(pos, neg)
        assert result.stats.timed_out

    def test_tie_cap_respected(self):
        pos, neg = planted_dataset()
        result = TGMiner(
            MinerConfig(max_edges=3, min_pos_support=0.5, max_best_patterns=2)
        ).mine(pos, neg)
        assert len(result.best) <= 2

    def test_unfrozen_graphs_accepted(self):
        g = TemporalGraph()
        a, b = g.add_node("A"), g.add_node("B")
        g.add_edge(a, b, 0)
        result = TGMiner(MinerConfig(max_edges=1)).mine([g], [])
        assert result.best_score > 0

    def test_top_helper(self):
        pos, neg = planted_dataset()
        result = TGMiner(MinerConfig(max_edges=2, min_pos_support=0.9)).mine(pos, neg)
        assert len(result.top(1)) == 1
