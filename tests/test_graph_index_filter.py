"""Tests for the candidate-pruning prefilter (signatures + CandidateFilter).

Soundness is the contract everything rests on: the filter may only reject
pairs that provably have no mapping, so every indexed component must
return results identical to its unindexed counterpart.
"""

import random

from repro.core.graph_index import (
    CandidateFilter,
    Signature,
    graph_signature,
    pattern_signature,
    signature_contains,
)
from repro.core.growth import seed_patterns
from repro.core.miner import MinerConfig, TGMiner
from repro.core.pattern import TemporalPattern
from repro.core.subgraph import SequenceSubgraphTester
from repro.core.vf2 import VF2SubgraphTester
from repro.query.engine import QueryEngine

from repro.core.errors import PatternError

from conftest import build_graph, random_embedded_pattern, random_temporal_graph


def random_pattern(rng, n_nodes, n_edges):
    """A random T-connected pattern (rejection-samples random graphs)."""
    while True:
        graph = random_temporal_graph(rng, n_nodes=n_nodes, n_edges=n_edges)
        try:
            return TemporalPattern.from_graph(graph)
        except PatternError:
            continue


class TestSignatures:
    def test_pattern_signature_counts(self):
        pattern = TemporalPattern(("A", "B", "A"), ((0, 1), (1, 2), (0, 1)))
        sig = pattern_signature(pattern)
        assert sig.node_labels == {"A": 2, "B": 1}
        assert sig.edge_labels == {("A", "B"): 2, ("B", "A"): 1}

    def test_graph_signature_counts(self, figure3_graph):
        sig = graph_signature(figure3_graph)
        assert sig.node_labels == {"A": 1, "B": 1, "C": 1, "E": 1}
        assert sig.edge_labels == {
            ("A", "B"): 2,
            ("B", "C"): 1,
            ("A", "C"): 1,
            ("C", "E"): 1,
            ("A", "E"): 1,
        }

    def test_graph_and_pattern_signature_agree(self):
        pattern = TemporalPattern(("A", "B", "C"), ((0, 1), (1, 2), (0, 2)))
        assert pattern_signature(pattern) == graph_signature(
            pattern.as_temporal_graph()
        )

    def test_containment_multiset_semantics(self):
        big = Signature({"A": 2, "B": 1}, {("A", "B"): 2})
        assert signature_contains(big, Signature({"A": 1}, {("A", "B"): 1}))
        assert signature_contains(big, big)
        # one more A-node than available
        assert not signature_contains(big, Signature({"A": 3}, {}))
        # label pair absent entirely
        assert not signature_contains(big, Signature({"A": 1}, {("B", "A"): 1}))
        # multi-edge count exceeded
        assert not signature_contains(big, Signature({}, {("A", "B"): 3}))

    def test_label_pair_index_matches_edges_between(self, figure3_graph):
        index = figure3_graph.label_pair_index()
        for pair, idxs in index.items():
            assert list(figure3_graph.edges_between(*pair)) == list(idxs)
        total = sum(len(idxs) for idxs in index.values())
        assert total == figure3_graph.num_edges


class TestCandidateFilter:
    def test_never_rejects_true_subgraph(self):
        """Soundness: a pair with a real mapping must pass the prefilter."""
        rng = random.Random(3)
        filt = CandidateFilter()
        checked = 0
        for _ in range(120):
            big = random_pattern(rng, n_nodes=6, n_edges=10)
            big_graph = big.as_temporal_graph()
            small = random_embedded_pattern(rng, big_graph, max_edges=4)
            assert filt.pattern_vs_pattern(small, big)
            assert filt.pattern_vs_graph(small, big_graph)
            checked += 1
        assert filt.stats.checks == 2 * checked
        assert filt.stats.rejections == 0

    def test_agrees_with_full_test_on_random_pairs(self):
        """The filter may reject only pairs the exact tester also rejects."""
        rng = random.Random(7)
        filt = CandidateFilter()
        exact = SequenceSubgraphTester()
        rejections = 0
        for _ in range(200):
            small = random_pattern(rng, n_nodes=4, n_edges=4)
            big = random_pattern(rng, n_nodes=6, n_edges=9)
            if not filt.pattern_vs_pattern(small, big):
                rejections += 1
                assert exact.mapping(small, big) is None
        assert rejections > 0  # the corpus must exercise the reject path

    def test_signature_caching(self):
        filt = CandidateFilter()
        pattern = TemporalPattern(("A", "B"), ((0, 1),))
        assert filt.signature_of_pattern(pattern) is filt.signature_of_pattern(pattern)
        graph = build_graph([(0, 1, 1)], labels=["A", "B"])
        assert filt.signature_of_graph(graph) is filt.signature_of_graph(graph)

    def test_label_nodes_index(self):
        filt = CandidateFilter()
        pattern = TemporalPattern(("A", "B", "A"), ((0, 1), (1, 2)))
        assert filt.label_nodes(pattern) == {"A": [0, 2], "B": [1]}


class TestFilteredTesters:
    def test_sequence_and_vf2_match_unfiltered(self):
        rng = random.Random(11)
        filt = CandidateFilter()
        plain_seq, filt_seq = SequenceSubgraphTester(), SequenceSubgraphTester(
            prefilter=filt
        )
        plain_vf2, filt_vf2 = VF2SubgraphTester(), VF2SubgraphTester(prefilter=filt)
        for _ in range(150):
            small = random_pattern(rng, n_nodes=4, n_edges=5)
            big = random_pattern(rng, n_nodes=6, n_edges=10)
            expected = plain_seq.contains(small, big)
            assert filt_seq.contains(small, big) == expected
            assert plain_vf2.contains(small, big) == expected
            assert filt_vf2.contains(small, big) == expected
        assert filt_seq.stats.prefilter_rejections > 0
        assert filt_vf2.stats.prefilter_rejections > 0

    def test_vf2_mapping_identical_with_filter(self):
        rng = random.Random(13)
        filt = CandidateFilter()
        plain, filtered = VF2SubgraphTester(), VF2SubgraphTester(prefilter=filt)
        for _ in range(80):
            big = random_pattern(rng, n_nodes=6, n_edges=9)
            small = random_embedded_pattern(rng, big.as_temporal_graph(), max_edges=3)
            assert plain.mapping(small, big) == filtered.mapping(small, big)


class TestIndexedSeeds:
    def test_seed_patterns_identical_with_index(self):
        rng = random.Random(17)
        graphs = [random_temporal_graph(rng, n_nodes=5, n_edges=8) for _ in range(6)]
        assert seed_patterns(graphs) == seed_patterns(graphs, use_index=True)


def mining_corpus(seed=0, n_pos=6, n_neg=6):
    """Dense shared-alphabet corpus so pruning lookups (and hence the
    prefilter) actually fire during mining."""
    rng = random.Random(seed)
    pos = [
        random_temporal_graph(rng, n_nodes=5, n_edges=14, alphabet="AB")
        for _ in range(n_pos)
    ]
    neg = [
        random_temporal_graph(rng, n_nodes=5, n_edges=14, alphabet="AB")
        for _ in range(n_neg)
    ]
    return pos, neg


class TestIndexedMining:
    def test_indexed_mining_identical_pattern_sets(self):
        """Acceptance: indexed and unindexed mining agree byte-for-byte."""
        pos, neg = mining_corpus()
        results = {}
        for indexed in (True, False):
            config = MinerConfig(
                max_edges=4, min_pos_support=0.5, index_prefilter=indexed
            )
            results[indexed] = TGMiner(config).mine(pos, neg)
        on, off = results[True], results[False]
        assert on.best_score == off.best_score
        assert [m.pattern.key() for m in on.best] == [
            m.pattern.key() for m in off.best
        ]
        assert {s: m.pattern.key() for s, m in on.best_by_size.items()} == {
            s: m.pattern.key() for s, m in off.best_by_size.items()
        }
        assert on.stats.patterns_explored == off.stats.patterns_explored
        assert (
            on.stats.subgraph_pruning_triggers == off.stats.subgraph_pruning_triggers
        )
        assert (
            on.stats.supergraph_pruning_triggers
            == off.stats.supergraph_pruning_triggers
        )
        # The same candidate pairs reach the tester either way; with the
        # filter, most are answered by signature alone (no mapping search).
        assert on.stats.subgraph_tests == off.stats.subgraph_tests
        assert on.stats.index_prefilter_checks > 0
        assert on.stats.index_prefilter_skips > 0
        assert off.stats.index_prefilter_checks == 0
        assert off.stats.index_prefilter_skips == 0

    def test_indexed_mining_identical_across_testers(self):
        pos, neg = mining_corpus(seed=23)
        keys = set()
        for tester in ("sequence", "vf2", "gi"):
            for indexed in (True, False):
                config = MinerConfig(
                    max_edges=3,
                    min_pos_support=0.5,
                    subgraph_test=tester,
                    index_prefilter=indexed,
                )
                result = TGMiner(config).mine(pos, neg)
                keys.add(tuple(m.pattern.key() for m in result.best))
        assert len(keys) == 1


class TestIndexedQueries:
    def test_temporal_search_identical_spans(self):
        rng = random.Random(29)
        graph = random_temporal_graph(rng, n_nodes=8, n_edges=30)
        indexed, plain = QueryEngine(graph), QueryEngine(graph, use_index=False)
        for _ in range(20):
            pattern = random_embedded_pattern(rng, graph, max_edges=3)
            assert indexed.search_temporal(pattern, max_span=40) == (
                plain.search_temporal(pattern, max_span=40)
            )

    def test_impossible_query_short_circuits(self):
        graph = build_graph([(0, 1, 1), (1, 2, 2)], labels=["A", "B", "C"])
        engine = QueryEngine(graph)
        absent = TemporalPattern(("X", "Y"), ((0, 1),))
        assert engine.search_temporal(absent, max_span=10) == []
        assert engine.filter.stats.rejections == 1
