"""Determinism suite for the parallel sharded mining engine.

The contract under test: :class:`ParallelMiner` produces byte-identical
mined pattern sets (best score + ranked co-optimal list with bit-equal
scores and frequencies) to the serial :class:`TGMiner`, for every worker
count, on every bundled workload — including graphs whose concurrent
edges were sequentialized with the ``random`` policy under a fixed seed.
"""

import os
import time

import pytest

import repro.core.parallel as parallel
from repro.core.concurrent import sequentialize
from repro.core.errors import MiningError
from repro.core.graph import TemporalEdge
from repro.core.growth import seed_patterns
from repro.core.miner import MinedPattern, MinerConfig, MiningStats, TGMiner
from repro.core.parallel import (
    ParallelMiner,
    SeedResult,
    merge_seed_results,
    mining_fingerprint,
    resolve_start_method,
    run_sharded,
)
from repro.core.pattern import TemporalPattern
from repro.core.shm import attach_corpus, publish_corpus
from repro.syscall import build_training_data

WORKER_COUNTS = (1, 2, 3, 4)


@pytest.fixture(scope="module")
def train():
    return build_training_data(instances_per_behavior=5, background_graphs=10)


def fingerprints_for(positives, negatives, config):
    serial = TGMiner(config).mine(positives, negatives)
    parallel = {
        workers: ParallelMiner(config, workers=workers).mine(positives, negatives)
        for workers in WORKER_COUNTS
    }
    return serial, parallel


class TestByteIdentity:
    @pytest.mark.parametrize(
        "behavior", ["gzip-decompress", "ftp-download", "scp-download"]
    )
    def test_identical_to_serial_across_behaviors(self, train, behavior):
        config = MinerConfig(max_edges=4, min_pos_support=0.7)
        serial, parallel = fingerprints_for(
            train.behavior(behavior), train.background, config
        )
        expected = mining_fingerprint(serial)
        for workers, result in parallel.items():
            assert mining_fingerprint(result) == expected, f"workers={workers}"

    def test_identical_under_linear_residuals(self, train):
        config = MinerConfig(
            max_edges=3, min_pos_support=0.7, residual_equivalence="linear"
        )
        serial, parallel = fingerprints_for(
            train.behavior("bzip2-decompress"), train.background, config
        )
        expected = mining_fingerprint(serial)
        for result in parallel.values():
            assert mining_fingerprint(result) == expected

    def test_identical_without_index_prefilter(self, train):
        config = MinerConfig(max_edges=3, min_pos_support=0.7, index_prefilter=False)
        serial, parallel = fingerprints_for(
            train.behavior("gzip-decompress"), train.background, config
        )
        expected = mining_fingerprint(serial)
        for result in parallel.values():
            assert mining_fingerprint(result) == expected

    def test_worker_results_invariant_to_worker_count(self, train):
        # Stronger than the pattern-set contract: the full merged result
        # (including per-size incumbents and summed counters) may not
        # depend on how many processes mined the seeds.
        config = MinerConfig(max_edges=4, min_pos_support=0.7)
        results = {
            workers: ParallelMiner(config, workers=workers).mine(
                train.behavior("ftp-download"), train.background
            )
            for workers in WORKER_COUNTS
        }
        reference = results[1]
        ref_sizes = {
            s: (m.pattern.key(), m.score) for s, m in reference.best_by_size.items()
        }
        for workers, result in results.items():
            assert mining_fingerprint(result) == mining_fingerprint(reference)
            assert {
                s: (m.pattern.key(), m.score) for s, m in result.best_by_size.items()
            } == ref_sizes
            assert (
                result.stats.patterns_explored == reference.stats.patterns_explored
            ), f"workers={workers}"


def _concurrent_workload(seed: int, graphs: int, flip: bool):
    """Graphs with concurrent edges, sequentialized by the random policy.

    ``flip`` varies edge insertion order between positive and negative
    sets so the two classes end up with genuinely different graphs.
    """
    out = []
    for g in range(graphs):
        labels = ["A", "B", "C", "D"]
        edges = []
        raw = [(0, 1), (1, 2), (2, 3), (0, 2), (1, 3), (3, 0)]
        if flip:
            raw = raw[::-1] + [(0, 3)]
        for i, (u, v) in enumerate(raw):
            # two edges per timestamp -> every timestamp is a concurrent block
            edges.append(TemporalEdge(u, v, i // 2))
        out.append(
            sequentialize(
                edges, labels, policy="random", seed=seed + g, name=f"conc{g}"
            )
        )
    return out


class TestRandomSequentializationWorkload:
    def test_identical_on_random_policy_graphs(self):
        positives = _concurrent_workload(seed=101, graphs=6, flip=False)
        negatives = _concurrent_workload(seed=202, graphs=6, flip=True)
        config = MinerConfig(max_edges=4, min_pos_support=0.5)
        serial = TGMiner(config).mine(positives, negatives)
        expected = mining_fingerprint(serial)
        assert serial.stats.patterns_explored > 0
        for workers in WORKER_COUNTS:
            result = ParallelMiner(config, workers=workers).mine(positives, negatives)
            assert mining_fingerprint(result) == expected, f"workers={workers}"

    def test_random_policy_is_seed_deterministic(self):
        # the sequentialized inputs themselves must be reproducible, or
        # the byte-identity claim above would be vacuous
        first = _concurrent_workload(seed=7, graphs=2, flip=False)
        second = _concurrent_workload(seed=7, graphs=2, flip=False)
        for a, b in zip(first, second):
            assert [e.endpoints() for e in a.edges] == [
                e.endpoints() for e in b.edges
            ]


class TestMergeSeedResults:
    def _mined(self, src, dst, score, edges=1):
        pattern = TemporalPattern.single_edge(src, dst)
        for _ in range(edges - 1):
            pattern = pattern.grow_inward(0, 1)
        return MinedPattern(pattern, score, 1.0, 0.0)

    def _seed_result(self, seed, best, best_by_size=None):
        score = best[0].score if best else float("-inf")
        return SeedResult(
            seed=seed,
            best_score=score,
            best=tuple(best),
            best_by_size=best_by_size or {},
            stats=MiningStats(patterns_explored=len(best)),
        )

    def test_empty_results(self):
        merged = merge_seed_results([], MinerConfig())
        assert merged.best == [] and merged.best_score == float("-inf")

    def test_losing_seeds_contribute_nothing(self):
        winner = self._seed_result(("A", "B"), [self._mined("A", "B", 5.0)])
        loser = self._seed_result(("A", "C"), [self._mined("A", "C", 1.0)])
        merged = merge_seed_results([loser, winner], MinerConfig())
        assert merged.best_score == 5.0
        assert [m.score for m in merged.best] == [5.0]

    def test_cap_applies_in_seed_order(self):
        config = MinerConfig(max_best_patterns=3)
        first = self._seed_result(
            ("A", "A"), [self._mined("A", "A", 2.0) for _ in range(2)]
        )
        second = self._seed_result(
            ("B", "B"), [self._mined("B", "B", 2.0) for _ in range(2)]
        )
        # passed out of order: the merge must re-sort by seed key
        merged = merge_seed_results([second, first], config)
        assert len(merged.best) == 3
        labels = [m.pattern.label(0) for m in merged.best]
        assert labels.count("A") == 2 and labels.count("B") == 1

    def test_best_by_size_prefers_higher_score_then_earlier_seed(self):
        low = self._mined("A", "B", 1.0)
        high = self._mined("C", "D", 3.0)
        tie_early = self._mined("A", "E", 3.0)
        first = self._seed_result(("A", "B"), [low], {1: low})
        second = self._seed_result(("A", "E"), [tie_early], {1: tie_early})
        third = self._seed_result(("C", "D"), [high], {1: high})
        merged = merge_seed_results([third, first, second], MinerConfig())
        # 3.0 beats 1.0; among the 3.0 ties the earlier seed ("A","E") wins
        assert merged.best_by_size[1].pattern.key() == tie_early.pattern.key()

    def test_stats_are_summed(self):
        first = self._seed_result(("A", "B"), [self._mined("A", "B", 1.0)])
        second = self._seed_result(("B", "C"), [self._mined("B", "C", 2.0)])
        merged = merge_seed_results([first, second], MinerConfig())
        assert merged.stats.patterns_explored == 2


class TestParallelMinerApi:
    def test_rejects_empty_positives(self):
        with pytest.raises(MiningError):
            ParallelMiner(MinerConfig()).mine([], [])

    def test_rejects_bad_worker_count(self):
        with pytest.raises(MiningError):
            ParallelMiner(MinerConfig(), workers=0)

    def test_invalid_config_raises_at_construction(self):
        with pytest.raises(MiningError):
            ParallelMiner(MinerConfig(max_edges=0))

    def test_invalid_config_raises_at_mine(self, train):
        miner = ParallelMiner(MinerConfig(max_edges=2))
        miner.config = MinerConfig(min_pos_support=2.0)
        with pytest.raises(MiningError):
            miner.mine(train.behavior("gzip-decompress"), train.background)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_max_seconds_budget_bounds_wall_clock(self, train, workers):
        # max_seconds is a soft budget for the whole sharded search, not
        # a per-seed allowance: the parent stops dispatching once spent
        config = MinerConfig(max_edges=6, min_pos_support=0.5, max_seconds=0.05)
        started = time.perf_counter()
        result = ParallelMiner(config, workers=workers).mine(
            train.behavior("sshd-login"), train.background
        )
        elapsed = time.perf_counter() - started
        assert result.stats.timed_out
        # generous ceiling: budget + in-flight subtrees + pool startup,
        # nowhere near the tasks x budget a per-seed deadline would allow
        assert elapsed < 10.0

    def test_seed_tasks_match_serial_support_filter(self, train):
        config = MinerConfig(max_edges=2, min_pos_support=0.7)
        miner = ParallelMiner(config, workers=1)
        positives = train.behavior("gzip-decompress")
        tasks = miner.seed_tasks(positives, train.background)
        assert tasks == sorted(tasks)
        assert len(tasks) == len(set(tasks)) > 0

    def test_default_start_method_resolution(self):
        assert resolve_start_method("spawn") == "spawn"
        assert resolve_start_method() in ("fork", "spawn")


def _shm_entries():
    """Names of live POSIX shared-memory segments (Linux)."""
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


class TestSharedMemoryCorpus:
    """Lifecycle and identity contract of the zero-copy corpus segment."""

    def _corpus(self):
        positives = _concurrent_workload(seed=11, graphs=3, flip=False)
        negatives = _concurrent_workload(seed=22, graphs=3, flip=True)
        return positives, negatives

    def test_attach_rebuilds_identical_corpus(self):
        positives, negatives = self._corpus()
        seeds = seed_patterns(positives + negatives, use_index=True)
        descriptor, handle = publish_corpus(positives, negatives, seeds=seeds)
        try:
            corpus = attach_corpus(descriptor)
            assert len(corpus.positives) == len(positives)
            assert len(corpus.negatives) == len(negatives)
            for original, rebuilt in zip(
                positives + negatives, corpus.positives + corpus.negatives
            ):
                assert rebuilt.name == original.name
                assert rebuilt.labels == original.labels
                assert list(rebuilt.edge_arrays()[3]) == [
                    e.time for e in original.edges
                ]
                assert [e.endpoints() for e in rebuilt.edges] == [
                    e.endpoints() for e in original.edges
                ]
            # the lazy seed table materializes the exact embedding sets
            assert set(corpus.seeds) == set(seeds)
            for key in seeds:
                assert corpus.seeds[key] == seeds[key], key
        finally:
            handle.unlink()

    def test_attached_columns_are_read_only(self):
        positives, negatives = self._corpus()
        descriptor, handle = publish_corpus(positives, negatives)
        try:
            corpus = attach_corpus(descriptor)
            _base, src, _dst, _time = corpus.positives[0].edge_arrays()
            with pytest.raises(TypeError):
                src[0] = 99
            with pytest.raises(TypeError):
                corpus._words[0] = 99
        finally:
            handle.unlink()

    def test_unlink_is_idempotent_and_cleans_dev_shm(self):
        before = _shm_entries()
        positives, negatives = self._corpus()
        descriptor, handle = publish_corpus(positives, negatives)
        assert descriptor.shm_name.lstrip("/") in _shm_entries()
        handle.unlink()
        handle.unlink()  # second call must be a no-op
        assert _shm_entries() <= before

    @pytest.mark.parametrize("start_method", ["spawn", "fork"])
    def test_shared_mining_identical_to_serial(self, start_method):
        positives, negatives = self._corpus()
        config = MinerConfig(max_edges=3, min_pos_support=0.5)
        expected = mining_fingerprint(TGMiner(config).mine(positives, negatives))
        before = _shm_entries()
        for workers in (1, 2, 4):
            result = ParallelMiner(
                config,
                workers=workers,
                start_method=start_method,
                share_memory=True,
            ).mine(positives, negatives)
            assert mining_fingerprint(result) == expected, (
                f"workers={workers} method={start_method}"
            )
        assert _shm_entries() <= before, "leaked shared-memory segments"

    def test_segment_unlinked_after_worker_crash(self, monkeypatch):
        # fork inherits the monkeypatched worker state, so the crash
        # happens inside a real pool worker mid-map
        positives, negatives = self._corpus()
        config = MinerConfig(max_edges=3, min_pos_support=0.5)
        before = _shm_entries()

        def explode(self, seed):
            raise RuntimeError("worker crashed mid-seed")

        monkeypatch.setattr(parallel._WorkerState, "mine_seed", explode)
        miner = ParallelMiner(config, workers=2, start_method="fork", share_memory=True)
        with pytest.raises(RuntimeError, match="worker crashed"):
            miner.mine(positives, negatives)
        assert _shm_entries() <= before, "crash leaked a segment"

    def test_auto_policy_publishes_only_for_pooled_spawn(self, monkeypatch):
        positives, negatives = self._corpus()
        config = MinerConfig(max_edges=2, min_pos_support=0.5)
        published = []
        real_publish = parallel.publish_corpus

        def counting_publish(*args, **kwargs):
            published.append(True)
            return real_publish(*args, **kwargs)

        monkeypatch.setattr(parallel, "publish_corpus", counting_publish)
        # fork: copy-on-write inheritance, a segment would only add copies
        ParallelMiner(config, workers=2, start_method="fork").mine(positives, negatives)
        assert not published
        # single worker: inline run, nothing to share
        ParallelMiner(config, workers=1, start_method="spawn").mine(
            positives, negatives
        )
        assert not published
        # pooled spawn: the case shared memory exists for
        ParallelMiner(config, workers=2, start_method="spawn").mine(
            positives, negatives
        )
        assert published == [True]


class TestRunSharded:
    def test_empty_tasks(self):
        assert run_sharded([], _square, 4, _noop_init, ()) == []

    def test_inline_matches_pool(self):
        inline = run_sharded([1, 2, 3], _square, 1, _noop_init, ())
        pooled = run_sharded([1, 2, 3], _square, 2, _noop_init, ())
        assert inline == pooled == [1, 4, 9]

    def test_preserves_task_order(self):
        tasks = list(range(12))
        assert run_sharded(tasks, _square, 3, _noop_init, ()) == [
            t * t for t in tasks
        ]


def _noop_init():
    pass


def _square(x):
    return x * x
