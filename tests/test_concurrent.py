"""Tests for concurrent-edge handling (paper Section 5)."""

import pytest

from repro.core.concurrent import (
    concurrency_ratio,
    concurrent_blocks,
    has_concurrent_edges,
    sequentialize,
)
from repro.core.errors import GraphError
from repro.core.graph import TemporalEdge


EDGES = [
    TemporalEdge(0, 1, 0),
    TemporalEdge(1, 2, 1),
    TemporalEdge(0, 2, 1),  # concurrent with previous
    TemporalEdge(2, 0, 3),
]
LABELS = ["A", "B", "C"]


class TestDetection:
    def test_has_concurrent_edges(self):
        assert has_concurrent_edges(EDGES)
        assert not has_concurrent_edges(EDGES[:2])

    def test_concurrency_ratio(self):
        assert concurrency_ratio(EDGES) == pytest.approx(0.5)
        assert concurrency_ratio(EDGES[:2]) == 0.0
        assert concurrency_ratio([]) == 0.0


class TestSequentialize:
    @pytest.mark.parametrize("policy", ["stable", "random", "by-endpoint"])
    def test_produces_total_order(self, policy):
        g = sequentialize(EDGES, LABELS, policy=policy, seed=5)
        times = [e.time for e in g.edges]
        assert times == sorted(times)
        assert len(set(times)) == len(times)
        assert g.num_edges == len(EDGES)

    def test_stable_preserves_collection_order(self):
        g = sequentialize(EDGES, LABELS, policy="stable")
        # block at t=1 keeps (1,2) before (0,2)
        pairs = [(e.src, e.dst) for e in g.edges]
        assert pairs == [(0, 1), (1, 2), (0, 2), (2, 0)]

    def test_by_endpoint_orders_within_block(self):
        g = sequentialize(EDGES, LABELS, policy="by-endpoint")
        pairs = [(e.src, e.dst) for e in g.edges]
        # within t=1 block: (A,C) before (B,C)
        assert pairs == [(0, 1), (0, 2), (1, 2), (2, 0)]

    def test_random_is_seed_deterministic(self):
        a = sequentialize(EDGES, LABELS, policy="random", seed=3)
        b = sequentialize(EDGES, LABELS, policy="random", seed=3)
        assert [(e.src, e.dst) for e in a.edges] == [(e.src, e.dst) for e in b.edges]

    def test_cross_block_order_always_preserved(self):
        g = sequentialize(EDGES, LABELS, policy="random", seed=1)
        positions = {(e.src, e.dst): i for i, e in enumerate(g.edges)}
        assert positions[(0, 1)] < positions[(1, 2)]
        assert positions[(0, 2)] < positions[(2, 0)]

    def test_unknown_policy_rejected(self):
        with pytest.raises(GraphError):
            sequentialize(EDGES, LABELS, policy="chaos")


class TestBlocks:
    def test_blocks_group_by_timestamp(self):
        seq = concurrent_blocks(EDGES, LABELS)
        assert seq.num_blocks == 3
        assert [b.time for b in seq.blocks] == [0, 1, 3]
        assert len(seq.blocks[1].edges) == 2

    def test_block_fingerprint(self):
        seq = concurrent_blocks(EDGES, LABELS)
        assert seq.blocks[1].label_pair_multiset(LABELS) == (("A", "C"), ("B", "C"))

    def test_may_contain_positive(self):
        big = concurrent_blocks(EDGES, LABELS)
        small = concurrent_blocks(
            [TemporalEdge(0, 1, 0), TemporalEdge(1, 2, 1)], LABELS
        )
        assert big.may_contain(small)

    def test_may_contain_respects_block_order(self):
        big = concurrent_blocks(EDGES, LABELS)
        # needs C->A before A->B: impossible
        small = concurrent_blocks(
            [TemporalEdge(2, 0, 0), TemporalEdge(0, 1, 1)], LABELS
        )
        assert not big.may_contain(small)

    def test_may_contain_requires_block_cover(self):
        big = concurrent_blocks(EDGES, LABELS)
        # one block needing both A->B and B->C simultaneously: no block covers it
        small = concurrent_blocks(
            [TemporalEdge(0, 1, 5), TemporalEdge(1, 2, 5)], LABELS
        )
        assert not big.may_contain(small)
