"""Tests for the Appendix-M domain-knowledge ranking."""

from repro.core.miner import MinedPattern
from repro.core.pattern import TemporalPattern
from repro.core.ranking import (
    DEFAULT_BLACKLIST,
    InterestModel,
    rank_patterns,
    select_queries,
)

from conftest import build_graph


def make_corpus():
    return [
        build_graph([(0, 1, 0)], labels=["proc:x", "file:rare"]),
        build_graph([(0, 1, 0)], labels=["proc:x", "file:common"]),
        build_graph([(0, 1, 0)], labels=["proc:y", "file:common"]),
        build_graph([(0, 1, 0)], labels=["proc:y", "file:/tmp/scratch"]),
    ]


class TestInterestModel:
    def test_inverse_frequency(self):
        model = InterestModel.fit(make_corpus())
        assert model.label_interest("file:rare") == 1.0
        assert model.label_interest("file:common") == 0.5
        assert model.label_interest("proc:x") == 0.5

    def test_blacklisted_labels_zeroed(self):
        model = InterestModel.fit(make_corpus())
        assert model.label_interest("file:/tmp/scratch") == 0.0

    def test_unseen_labels_zero(self):
        model = InterestModel.fit(make_corpus())
        assert model.label_interest("file:never-seen") == 0.0

    def test_blacklist_case_insensitive(self):
        model = InterestModel.fit(
            [build_graph([(0, 1, 0)], labels=["proc:a", "file:TmpFile9"])]
        )
        assert model.label_interest("file:TmpFile9") == 0.0

    def test_default_blacklist_covers_paper_examples(self):
        assert any("tmp" in item for item in DEFAULT_BLACKLIST)
        assert any("/proc/" in item for item in DEFAULT_BLACKLIST)

    def test_pattern_interest_sums_nodes(self):
        model = InterestModel.fit(make_corpus())
        p = TemporalPattern(("proc:x", "file:rare"), ((0, 1),))
        assert model.pattern_interest(p) == 1.5


class TestRanking:
    def mined(self, labels, edges, score=1.0):
        return MinedPattern(TemporalPattern(labels, edges), score, 1.0, 0.0)

    def test_rarer_labels_rank_first(self):
        model = InterestModel.fit(make_corpus())
        rare = self.mined(("proc:x", "file:rare"), ((0, 1),))
        common = self.mined(("proc:x", "file:common"), ((0, 1),))
        ranked = rank_patterns([common, rare], model)
        assert ranked[0] is rare

    def test_size_breaks_interest_ties(self):
        model = InterestModel.fit(make_corpus())
        small = self.mined(("proc:x", "file:common"), ((0, 1),))
        # same labels plus one more edge between the same nodes: same
        # node-interest sum, larger pattern wins.
        large = self.mined(("proc:x", "file:common"), ((0, 1), (0, 1)))
        ranked = rank_patterns([small, large], model)
        assert ranked[0] is large

    def test_select_queries_top_k(self):
        model = InterestModel.fit(make_corpus())
        mined = [
            self.mined(("proc:x", "file:rare"), ((0, 1),)),
            self.mined(("proc:x", "file:common"), ((0, 1),)),
            self.mined(("proc:y", "file:common"), ((0, 1),)),
        ]
        queries = select_queries(mined, model, top_k=2)
        assert len(queries) == 2
        assert queries[0].label_set() == {"proc:x", "file:rare"}

    def test_ranking_is_deterministic(self):
        model = InterestModel.fit(make_corpus())
        mined = [
            self.mined(("proc:x", "file:common"), ((0, 1),)),
            self.mined(("proc:y", "file:common"), ((0, 1),)),
        ]
        assert rank_patterns(mined, model) == rank_patterns(
            list(reversed(mined)), model
        )
