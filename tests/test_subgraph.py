"""Unit tests for the three temporal subgraph testers, using the
brute-force matcher as the correctness oracle."""

import random

import pytest

from repro.core.brute import contains_pattern
from repro.core.graph_index import GraphIndexTester
from repro.core.pattern import TemporalPattern
from repro.core.subgraph import (
    SequenceSubgraphTester,
    find_mapping,
    is_temporal_subgraph,
)
from repro.core.vf2 import VF2SubgraphTester

from conftest import random_embedded_pattern, random_temporal_graph

TESTERS = [
    pytest.param(SequenceSubgraphTester(), id="sequence"),
    pytest.param(VF2SubgraphTester(), id="vf2"),
    pytest.param(GraphIndexTester(), id="graph-index"),
]


def p(labels, edges):
    return TemporalPattern(labels, edges)


BIG = p(("A", "B", "C", "E"), ((0, 1), (0, 1), (1, 2), (0, 2), (2, 3), (0, 3)))


class TestKnownCases:
    @pytest.mark.parametrize("tester", TESTERS)
    def test_figure3_subgraph(self, tester):
        small = p(("A", "C", "E"), ((0, 1), (1, 2), (0, 2)))
        assert tester.contains(small, BIG)

    @pytest.mark.parametrize("tester", TESTERS)
    def test_order_violation_rejected(self, tester):
        # Edges exist but in the wrong temporal order: C->E then B->C.
        small = p(("C", "E", "A"), ((0, 1), (2, 1)))
        # In BIG, C->E is at time 5 and A->E at 6: A->E after C->E: fine;
        # instead use B->C (time 3) required after C->E (time 5): impossible.
        small = p(("C", "E", "B"), ((0, 1), (2, 0)))
        assert not tester.contains(small, BIG)

    @pytest.mark.parametrize("tester", TESTERS)
    def test_label_mismatch_rejected(self, tester):
        small = p(("A", "Z"), ((0, 1),))
        assert not tester.contains(small, BIG)

    @pytest.mark.parametrize("tester", TESTERS)
    def test_multi_edge_requirement(self, tester):
        double = p(("A", "B"), ((0, 1), (0, 1)))
        triple = p(("A", "B"), ((0, 1), (0, 1), (0, 1)))
        assert tester.contains(double, BIG)
        assert not tester.contains(triple, BIG)

    @pytest.mark.parametrize("tester", TESTERS)
    def test_size_fast_paths(self, tester):
        huge = p(tuple("AB" * 4), tuple((i, i + 1) for i in range(7)))
        assert not tester.contains(huge, p(("A", "B"), ((0, 1),)))

    @pytest.mark.parametrize("tester", TESTERS)
    def test_identity_contains_itself(self, tester):
        assert tester.contains(BIG, BIG)

    @pytest.mark.parametrize("tester", TESTERS)
    def test_injectivity_enforced(self, tester):
        # Pattern needs two distinct B nodes; big graph has only one.
        small = p(("A", "B", "B"), ((0, 1), (0, 2)))
        big = p(("A", "B"), ((0, 1), (0, 1)))
        assert not tester.contains(small, big)

    @pytest.mark.parametrize("tester", TESTERS)
    def test_mapping_is_witness(self, tester):
        small = p(("A", "C", "E"), ((0, 1), (1, 2), (0, 2)))
        mapping = tester.mapping(small, BIG)
        assert mapping is not None
        for i, node in enumerate(mapping):
            assert small.label(i) == BIG.label(node)
        assert len(set(mapping)) == len(mapping)


class TestModuleHelpers:
    def test_is_temporal_subgraph(self):
        assert is_temporal_subgraph(p(("A", "B"), ((0, 1),)), BIG)

    def test_find_mapping_none(self):
        assert find_mapping(p(("Z", "Q"), ((0, 1),)), BIG) is None


class TestAppendixJPruningToggles:
    def make(self, **kwargs):
        return SequenceSubgraphTester(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"use_label_test": False},
            {"use_local_info": False},
            {"use_prefix_pruning": False},
            {
                "use_label_test": False,
                "use_local_info": False,
                "use_prefix_pruning": False,
            },
        ],
    )
    def test_results_independent_of_pruning(self, kwargs):
        rng = random.Random(42)
        reference = SequenceSubgraphTester()
        tester = self.make(**kwargs)
        for _ in range(60):
            big_graph = random_temporal_graph(rng, n_nodes=5, n_edges=8, alphabet="AB")
            small = random_embedded_pattern(rng, big_graph, max_edges=3)
            other = random_embedded_pattern(
                rng, random_temporal_graph(rng, n_nodes=5, n_edges=8, alphabet="AB"), 3
            )
            big = None
            try:
                from repro.core.pattern import TemporalPattern as TP

                big = TP.from_graph(big_graph)
            except Exception:
                continue
            assert tester.contains(small, big) == reference.contains(small, big)
            assert tester.contains(other, big) == reference.contains(other, big)

    def test_label_rejection_counter(self):
        tester = self.make()
        tester.contains(p(("Z", "Z"), ((0, 1),)), BIG)
        assert tester.stats.label_rejections == 1
        assert tester.stats.tests == 1


class TestAgainstBruteForce:
    @pytest.mark.parametrize("tester", TESTERS)
    @pytest.mark.parametrize("seed", range(8))
    def test_random_agreement(self, tester, seed):
        rng = random.Random(seed)
        for _ in range(30):
            data = random_temporal_graph(rng, n_nodes=5, n_edges=9, alphabet="AB")
            pattern = random_embedded_pattern(rng, data, max_edges=4)
            # Embedded patterns must always be found.
            big = TemporalPattern.from_graph(data) if _t_connected(data) else None
            expected = contains_pattern(pattern, data)
            assert expected, "embedded pattern must match its source graph"
            if big is not None:
                assert tester.contains(pattern, big) == contains_pattern(
                    pattern, big.as_temporal_graph()
                )

    @pytest.mark.parametrize("tester", TESTERS)
    @pytest.mark.parametrize("seed", range(8, 14))
    def test_random_cross_graph_agreement(self, tester, seed):
        rng = random.Random(seed)
        for _ in range(25):
            g1 = random_temporal_graph(rng, n_nodes=4, n_edges=7, alphabet="AB")
            g2 = random_temporal_graph(rng, n_nodes=5, n_edges=9, alphabet="AB")
            if not _t_connected(g2):
                continue
            pattern = random_embedded_pattern(rng, g1, max_edges=3)
            big = TemporalPattern.from_graph(g2)
            expected = contains_pattern(pattern, g2)
            assert tester.contains(pattern, big) == expected


def _t_connected(graph) -> bool:
    nodes: set[int] = set()
    for i, edge in enumerate(graph.edges):
        if i > 0 and edge.src not in nodes and edge.dst not in nodes:
            return False
        nodes.update(edge.endpoints())
    return True
