"""Tests for the syscall simulator substrate (entities, events, behaviors,
background, collectors)."""

import random

import pytest

from repro.core.errors import DatasetError
from repro.syscall import (
    BEHAVIOR_NAMES,
    BEHAVIORS,
    CATEGORIES,
    SIZE_CLASSES,
    ClosedEnvironment,
    build_test_data,
    build_training_data,
    events_to_graph,
    get_behavior,
    merge_streams,
)
from repro.syscall.background import generate_background_events
from repro.syscall.behaviors import SHADOW
from repro.syscall.collector import TestConfig as LogTestConfig
from repro.syscall.collector import TrainingConfig
from repro.syscall.entities import LabelPools, fresh, persistent, pooled
from repro.syscall.events import SyscallEvent


class TestEntities:
    def test_persistent_key_is_label(self):
        ref = persistent("file:/etc/passwd")
        assert ref.is_persistent and ref.label == ref.name

    def test_fresh_and_pooled(self):
        assert fresh("p", "proc:x").label == "proc:x"
        assert pooled("f", "tmp_file").pool == "tmp_file"

    def test_pools_draw_all_known(self):
        pools = LabelPools(random.Random(0))
        for name in (
            "user_file", "tmp_file", "src_file", "obj_file", "archive",
            "download", "remote_host", "ephemeral_port", "log_file",
            "proc_misc", "deb_package",
        ):
            label = pools.draw(name)
            assert isinstance(label, str) and label

    def test_unknown_pool_raises(self):
        with pytest.raises(KeyError):
            LabelPools(random.Random(0)).draw("nope")


class TestEvents:
    def test_events_to_graph_identity(self):
        events = [
            SyscallEvent(0, "open", "p1", "proc:x", "f1", "file:y"),
            SyscallEvent(1, "read", "f1", "file:y", "p1", "proc:x"),
        ]
        g = events_to_graph(events)
        assert g.num_nodes == 2
        assert g.num_edges == 2
        assert g.label(0) == "proc:x"

    def test_merge_streams_preserves_internal_order(self):
        a = [SyscallEvent(i, "a", f"a{i}", "A", "x", "X") for i in range(5)]
        b = [SyscallEvent(i, "b", f"b{i}", "B", "x", "X") for i in range(5)]
        merged = merge_streams([a, b], random.Random(0))
        assert len(merged) == 10
        assert [e.time for e in merged] == list(range(10))
        a_keys = [e.src_key for e in merged if e.syscall == "a"]
        assert a_keys == [f"a{i}" for i in range(5)]


class TestBehaviorTemplates:
    def test_registry_has_twelve(self):
        assert len(BEHAVIORS) == 12
        assert set(BEHAVIOR_NAMES) == set(BEHAVIORS)

    def test_size_classes_partition_behaviors(self):
        all_classed = [n for names in SIZE_CLASSES.values() for n in names]
        assert sorted(all_classed) == sorted(BEHAVIOR_NAMES)

    def test_five_categories(self):
        assert len(CATEGORIES) == 5
        assert {t.category for t in BEHAVIORS.values()} == set(CATEGORIES)

    def test_get_behavior_unknown(self):
        with pytest.raises(DatasetError):
            get_behavior("rm-rf-slash")

    @pytest.mark.parametrize("name", BEHAVIOR_NAMES)
    def test_instantiation_yields_total_order(self, name):
        rng = random.Random(1)
        events = get_behavior(name).instantiate(rng, "i1", force_complete=True)
        times = [e.time for e in events]
        assert times == list(range(len(events)))
        graph = events_to_graph(events)
        assert graph.num_edges == len(events)

    @pytest.mark.parametrize("name", BEHAVIOR_NAMES)
    def test_core_steps_in_order_when_complete(self, name):
        template = get_behavior(name)
        rng = random.Random(7)
        events = template.instantiate(rng, "i2", force_complete=True)
        core_pairs = [
            (s.src.name, s.dst.name) for s in template.steps if s.core
        ]
        cursor = 0
        event_pairs = [
            (e.src_key.split("#")[0], e.dst_key.split("#")[0]) for e in events
        ]
        for pair in core_pairs:
            while cursor < len(event_pairs) and event_pairs[cursor] != pair:
                cursor += 1
            assert cursor < len(event_pairs), f"core step {pair} missing/out of order"

    def test_abort_truncates_core(self):
        template = get_behavior("apt-get-update")

        def core_events(force_complete, seed):
            events = template.instantiate(random.Random(seed), "i", force_complete)
            core_srcs = {s.src.name for s in template.steps if s.core}
            return sum(1 for e in events if e.src_key.split("#")[0] in core_srcs)

        complete = sum(core_events(True, s) for s in range(10))
        aborted = sum(core_events(False, s) for s in range(10))
        assert aborted < complete

    def test_determinism_per_seed(self):
        template = get_behavior("ssh-login")
        a = template.instantiate(random.Random(5), "x", force_complete=True)
        b = template.instantiate(random.Random(5), "x", force_complete=True)
        assert a == b

    def test_scp_shares_ssh_labels_and_differs_in_order(self):
        rng = random.Random(2)
        scp = events_to_graph(get_behavior("scp-download").instantiate(rng, "s", True))
        ssh = events_to_graph(get_behavior("ssh-login").instantiate(rng, "t", True))
        scp_labels = {l for l in scp.label_set() if not l.startswith("file:/home/u")}
        ssh_core = {
            "file:/etc/ssh/ssh_config",
            "file:/home/.ssh/known_hosts",
            "proc:ssh",
        }
        assert ssh_core <= scp_labels
        assert ssh_core <= ssh.label_set()


class TestBackground:
    def test_background_never_contains_behavior_cores(self):
        rng = random.Random(4)
        for _ in range(10):
            events = generate_background_events(rng, 80, f"b{rng.random()}")
            labels = {e.src_label for e in events} | {e.dst_label for e in events}
            # full login completions never appear in background
            assert "file:/var/log/wtmp" not in labels
            assert "proc:wget" not in labels
            assert "proc:apt-get" not in labels

    def test_failed_auth_fragment_possible(self):
        rng = random.Random(0)
        seen_shadow = False
        for i in range(30):
            events = generate_background_events(rng, 80, f"c{i}")
            labels = {e.src_label for e in events}
            if SHADOW.label in labels:
                seen_shadow = True
        assert seen_shadow

    def test_timestamps_dense(self):
        events = generate_background_events(random.Random(1), 50, "t")
        assert [e.time for e in events] == list(range(len(events)))


class TestClosedEnvironment:
    def test_collect_counts(self):
        env = ClosedEnvironment(seed=0)
        graphs = env.collect("gzip-decompress", 5)
        assert len(graphs) == 5
        assert all(g.frozen for g in graphs)

    def test_seed_reproducibility(self):
        a = ClosedEnvironment(seed=9).collect("wget-download", 3)
        b = ClosedEnvironment(seed=9).collect("wget-download", 3)
        assert [g.num_edges for g in a] == [g.num_edges for g in b]
        assert [tuple(g.labels) for g in a] == [tuple(g.labels) for g in b]

    def test_collect_background(self):
        env = ClosedEnvironment(seed=0)
        graphs = env.collect_background(3, (20, 30))
        assert len(graphs) == 3
        assert all(20 <= g.num_edges <= 30 for g in graphs)


class TestTrainingData:
    def test_build_with_overrides(self):
        data = build_training_data(instances_per_behavior=2, background_graphs=3)
        assert len(data.behavior("ssh-login")) == 2
        assert len(data.background) == 3

    def test_config_and_overrides_mutually_exclusive(self):
        with pytest.raises(DatasetError):
            build_training_data(TrainingConfig(), instances_per_behavior=2)

    def test_invalid_config(self):
        with pytest.raises(DatasetError):
            build_training_data(instances_per_behavior=0)

    def test_unknown_behavior_lookup(self):
        data = build_training_data(instances_per_behavior=1, background_graphs=1)
        with pytest.raises(DatasetError):
            data.behavior("nmap-scan")

    def test_subset_fraction(self):
        data = build_training_data(instances_per_behavior=10, background_graphs=10)
        half = data.subset(0.5)
        assert len(half.behavior("gzip-decompress")) == 5
        assert len(half.background) == 5

    def test_subset_keeps_at_least_one(self):
        data = build_training_data(instances_per_behavior=2, background_graphs=2)
        tiny = data.subset(0.01)
        assert len(tiny.behavior("gzip-decompress")) == 1

    def test_subset_invalid_fraction(self):
        data = build_training_data(instances_per_behavior=1, background_graphs=1)
        with pytest.raises(DatasetError):
            data.subset(0.0)

    def test_max_lifetime_positive(self):
        data = build_training_data(instances_per_behavior=3, background_graphs=1)
        assert data.max_lifetime("sshd-login") > 0

    def test_all_graphs_count(self):
        data = build_training_data(instances_per_behavior=2, background_graphs=3)
        assert len(data.all_graphs()) == 2 * 12 + 3


class TestTestData:
    def test_instances_and_intervals(self):
        test = build_test_data(instances=24)
        assert len(test.instances) == 24
        # every behavior gets scheduled at least once per 12-block
        assert {gt.behavior for gt in test.instances} == set(BEHAVIOR_NAMES)
        for gt in test.instances:
            assert gt.start <= gt.end

    def test_intervals_disjoint_and_ordered(self):
        test = build_test_data(instances=24)
        ordered = sorted(test.instances, key=lambda gt: gt.start)
        for a, b in zip(ordered, ordered[1:]):
            assert a.end < b.start

    def test_graph_is_totally_ordered(self):
        test = build_test_data(instances=12)
        times = [e.time for e in test.graph.edges]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_instances_of_filter(self):
        test = build_test_data(instances=24)
        subset = test.instances_of("gzip-decompress")
        assert len(subset) == 2

    def test_ground_truth_contains(self):
        test = build_test_data(instances=12)
        gt = test.instances[0]
        assert gt.contains(gt.start, gt.end)
        assert not gt.contains(gt.start - 1, gt.end)

    def test_config_exclusive_overrides(self):
        with pytest.raises(DatasetError):
            build_test_data(LogTestConfig(), instances=5)

    def test_seed_reproducibility(self):
        a = build_test_data(instances=12, seed=3)
        b = build_test_data(instances=12, seed=3)
        assert a.graph.num_edges == b.graph.num_edges
        assert a.instances == b.instances
