"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_rejects_unknown_behavior(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", "--train", "x", "--behavior", "nmap"])

    def test_negative_workers_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "--train", "x", "--behavior", "sshd-login", "-j", "-1"]
            )


class TestCommands:
    def test_behaviors_lists_all(self, capsys):
        assert main(["behaviors"]) == 0
        out = capsys.readouterr().out
        assert "sshd-login" in out and "small:" in out

    def test_generate_then_mine_roundtrip(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert (
            main(
                [
                    "generate",
                    "--out",
                    str(corpus),
                    "--instances",
                    "4",
                    "--background",
                    "6",
                ]
            )
            == 0
        )
        assert (corpus / "gzip-decompress.jsonl").exists()
        assert (corpus / "background.jsonl").exists()
        assert (
            main(
                [
                    "mine",
                    "--train",
                    str(corpus),
                    "--behavior",
                    "gzip-decompress",
                    "--max-edges",
                    "3",
                    "--max-seconds",
                    "20",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "best score" in out
        assert "t=1:" in out

    def test_mine_missing_corpus_errors(self, tmp_path, capsys):
        code = main(
            ["mine", "--train", str(tmp_path), "--behavior", "gzip-decompress"]
        )
        assert code == 2
        assert "missing" in capsys.readouterr().err


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("corpus")
    assert (
        main(["generate", "--out", str(root), "--instances", "4", "--background", "6"])
        == 0
    )
    return root


class TestWorkers:
    def test_mine_parallel_matches_serial_output(self, corpus, capsys):
        args = [
            "mine",
            "--train",
            str(corpus),
            "--behavior",
            "gzip-decompress",
            "--max-edges",
            "3",
        ]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["-j", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # identical mined patterns; only the stats line may differ
        assert serial_out.split("\n\n", 1)[1] == parallel_out.split("\n\n", 1)[1]
        assert "(2 workers)" in parallel_out
        # -j 0 = one worker per CPU, mirroring `experiment -j 0`
        assert main(args + ["-j", "0"]) == 0
        cpu_out = capsys.readouterr().out
        assert serial_out.split("\n\n", 1)[1] == cpu_out.split("\n\n", 1)[1]


class TestProfile:
    def test_mine_profile_prints_hotspots(self, corpus, capsys):
        assert (
            main(
                [
                    "mine",
                    "--train",
                    str(corpus),
                    "--behavior",
                    "gzip-decompress",
                    "--max-edges",
                    "3",
                    "--profile",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # normal mining report first, then the profile table
        assert "best score" in out
        assert "cProfile: top 20 by cumulative time" in out
        assert "cumtime" in out

    def test_detect_profile_prints_hotspots(self, corpus, tmp_path, capsys):
        queries = tmp_path / "profile-queries.jsonl"
        assert (
            main(
                [
                    "mine",
                    "--train",
                    str(corpus),
                    "--behavior",
                    "gzip-decompress",
                    "--max-edges",
                    "3",
                    "--save-queries",
                    str(queries),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "detect",
                    "--queries",
                    str(queries),
                    "--instances",
                    "2",
                    "--profile",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "detections:" in out
        assert "cProfile: top 20 by cumulative time" in out


class TestDetect:
    def test_mine_save_queries_then_detect(self, corpus, tmp_path, capsys):
        queries = tmp_path / "queries.jsonl"
        assert (
            main(
                [
                    "mine",
                    "--train",
                    str(corpus),
                    "--behavior",
                    "gzip-decompress",
                    "--max-edges",
                    "3",
                    "--save-queries",
                    str(queries),
                ]
            )
            == 0
        )
        assert "behavior queries" in capsys.readouterr().out
        assert queries.exists()
        out_json = tmp_path / "detect.json"
        log = tmp_path / "log.jsonl"
        assert (
            main(
                [
                    "detect",
                    "--queries",
                    str(queries),
                    "--instances",
                    "3",
                    "--batch-size",
                    "64",
                    "--save-log",
                    str(log),
                    "--json",
                    str(out_json),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "events/s" in out and "detections" in out
        import json

        payload = json.loads(out_json.read_text())
        assert payload["kind"] == "service"
        assert payload["queries"] >= 1
        assert payload["stats"]["kind"] == "service"
        assert payload["stats"]["batches"] >= 1
        assert payload["stats"]["events_per_second"] > 0
        assert "gzip-decompress#1" in payload["per_query"]
        # the saved log replays identically through --log
        assert (
            main(
                [
                    "detect",
                    "--queries",
                    str(queries),
                    "--log",
                    str(log),
                    "--batch-size",
                    "64",
                ]
            )
            == 0
        )
        replay_out = capsys.readouterr().out
        first_detections = out.split("detections:")[1].split("wrote")[0]
        assert replay_out.split("detections:")[1] == first_detections

    def test_detect_fleet_json_roundtrip(self, tmp_path, capsys):
        import json

        queries = tmp_path / "q.jsonl"
        queries.write_text(
            '{"name": "q", "labels": ["A", "B"], "edges": [[0, 1]], "max_span": 5}\n'
        )
        out_json = tmp_path / "fleet.json"
        assert (
            main(
                [
                    "detect",
                    "--queries",
                    str(queries),
                    "--instances",
                    "1",
                    "--tenants",
                    "3",
                    "--shards",
                    "2",
                    "--batch-size",
                    "64",
                    "--json",
                    str(out_json),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fleet: 2 shard(s) [inline], 3 tenant(s)" in out
        payload = json.loads(out_json.read_text())
        assert payload["kind"] == "fleet"
        from repro.serving.service import STATS_SCHEMA_KEYS

        stats = payload["stats"]
        assert set(STATS_SCHEMA_KEYS) <= set(stats)
        assert stats["shards"] == 2
        assert stats["tenants"] == 3
        assert len(stats["per_shard"]) == 2
        assert stats["events"] == sum(s["events"] for s in stats["per_shard"])

    def test_detect_fleet_rejects_zero_shards(self, tmp_path, capsys):
        queries = tmp_path / "q.jsonl"
        queries.write_text(
            '{"name": "q", "labels": ["A", "B"], "edges": [[0, 1]], "max_span": 5}\n'
        )
        code = main(
            ["detect", "--queries", str(queries), "--instances", "1", "--shards", "0"]
        )
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_detect_missing_queries_errors(self, tmp_path, capsys):
        code = main(
            ["detect", "--queries", str(tmp_path / "none.jsonl"), "--instances", "2"]
        )
        assert code == 2
        assert "missing" in capsys.readouterr().err

    def test_detect_missing_log_errors(self, tmp_path, capsys):
        queries = tmp_path / "q.jsonl"
        queries.write_text(
            '{"name": "q", "labels": ["A", "B"], "edges": [[0, 1]], "max_span": 5}\n'
        )
        code = main(
            ["detect", "--queries", str(queries), "--log", str(tmp_path / "no.jsonl")]
        )
        assert code == 2
        assert "missing" in capsys.readouterr().err

    def test_detect_requires_a_source(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--queries", "q.jsonl"])


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out


class TestModelBundles:
    @pytest.fixture(scope="class")
    def bundle(self, corpus, tmp_path_factory):
        path = tmp_path_factory.mktemp("model") / "model.tgm"
        assert (
            main(
                [
                    "mine",
                    "--train",
                    str(corpus),
                    "--behavior",
                    "gzip-decompress",
                    "--max-edges",
                    "3",
                    "--save-model",
                    str(path),
                ]
            )
            == 0
        )
        return path

    def test_mine_save_model_writes_bundle(self, bundle, capsys):
        assert bundle.exists()

    def test_inspect_reports_manifest(self, bundle, capsys):
        assert main(["inspect", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "BehaviorModel schema v1" in out
        assert "gzip-decompress" in out
        assert "span cap" in out

    def test_pack_roundtrip_preserves_model(self, bundle, tmp_path, capsys):
        unpacked = tmp_path / "unpacked"
        assert main(["pack", str(bundle), str(unpacked)]) == 0
        assert "re-packed" in capsys.readouterr().out
        assert (unpacked / "manifest.json").exists()
        rezipped = tmp_path / "again.tgm"
        assert main(["pack", str(unpacked), str(rezipped)]) == 0
        assert rezipped.read_bytes() == bundle.read_bytes()

    def test_detect_model_matches_detect_queries(
        self, corpus, bundle, tmp_path, capsys
    ):
        queries = tmp_path / "queries.jsonl"
        assert (
            main(
                [
                    "mine",
                    "--train",
                    str(corpus),
                    "--behavior",
                    "gzip-decompress",
                    "--max-edges",
                    "3",
                    "--save-queries",
                    str(queries),
                ]
            )
            == 0
        )
        assert "deprecated" in capsys.readouterr().out
        args = ["--instances", "3", "--batch-size", "64"]
        assert main(["detect", "--model", str(bundle)] + args) == 0
        model_out = capsys.readouterr().out
        assert main(["detect", "--queries", str(queries)] + args) == 0
        queries_out = capsys.readouterr().out
        assert model_out.split("detections:")[1] == queries_out.split("detections:")[1]

    def test_detect_empty_model_errors(self, tmp_path, capsys):
        from repro import BehaviorModel, MinerConfig

        empty = tmp_path / "empty.tgm"
        BehaviorModel(config=MinerConfig(), records={}, labels=()).save(empty)
        code = main(["detect", "--model", str(empty), "--instances", "2"])
        assert code == 2
        assert "no queries" in capsys.readouterr().err

    def test_detect_missing_model_errors(self, tmp_path, capsys):
        code = main(
            [
                "detect",
                "--model",
                str(tmp_path / "none.tgm"),
                "--instances",
                "2",
            ]
        )
        assert code == 2
        assert "no such model bundle" in capsys.readouterr().err

    def test_inspect_corrupt_bundle_errors(self, tmp_path, capsys):
        stray = tmp_path / "stray.tgm"
        stray.write_text("not a zip")
        assert main(["inspect", str(stray)]) == 2
        assert "not a model bundle" in capsys.readouterr().err

    def test_detect_rejects_model_and_queries_together(self, bundle):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "detect",
                    "--model",
                    str(bundle),
                    "--queries",
                    "q.jsonl",
                    "--instances",
                    "2",
                ]
            )


class TestExperiment:
    def test_experiment_all_behaviors(self, corpus, capsys, tmp_path):
        out_json = tmp_path / "exp.json"
        bundle = tmp_path / "exp-model"
        assert (
            main(
                [
                    "experiment",
                    "--train",
                    str(corpus),
                    "--behaviors",
                    "gzip-decompress",
                    "bzip2-decompress",
                    "--max-edges",
                    "3",
                    "-j",
                    "2",
                    "--json",
                    str(out_json),
                    "--save-model",
                    str(bundle),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "gzip-decompress" in out and "bzip2-decompress" in out
        assert "mined 2 behaviors" in out
        import json

        payload = json.loads(out_json.read_text())
        assert set(payload["behaviors"]) == {"gzip-decompress", "bzip2-decompress"}
        assert payload["behaviors"]["gzip-decompress"]["best_score"] > 0
        # the saved multi-behavior bundle is inspectable
        assert main(["inspect", str(bundle)]) == 0
        inspect_out = capsys.readouterr().out
        assert "2 behaviors" in inspect_out

    def test_experiment_discovers_corpus_behaviors(self, corpus, capsys):
        assert (
            main(["experiment", "--train", str(corpus), "--max-edges", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "sshd-login" in out

    def test_experiment_missing_corpus_errors(self, tmp_path, capsys):
        assert main(["experiment", "--train", str(tmp_path)]) == 2
        assert "missing" in capsys.readouterr().err


class TestErrorPaths:
    """Filesystem failures exit 2 with an error line, never a traceback."""

    def check(self, capsys, argv, fragment):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert fragment in err
        assert "Traceback" not in err
        return err

    def test_detect_missing_model_bundle(self, capsys):
        self.check(
            capsys,
            ["detect", "--model", "/nonexistent/x.tgm", "--instances", "3"],
            "no such model bundle",
        )

    def test_serve_missing_model_bundle(self, capsys):
        self.check(
            capsys,
            ["serve", "--http", "127.0.0.1:0", "--model", "/nonexistent/x.tgm"],
            "no such model bundle",
        )

    def test_serve_unopenable_registry(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("occupied")  # a file where the registry dir must go
        self.check(
            capsys,
            ["serve", "--http", "127.0.0.1:0", "--registry", str(blocker)],
            "cannot open model registry",
        )

    def test_serve_malformed_http_address(self, tmp_path, capsys):
        from conftest import make_behavior_model

        bundle = make_behavior_model().save(tmp_path / "m.tgm")
        self.check(
            capsys,
            ["serve", "--http", "nocolon", "--model", str(bundle)],
            "HOST:PORT",
        )

    def test_serve_needs_model_or_registry(self, capsys):
        self.check(
            capsys,
            ["serve", "--http", "127.0.0.1:0"],
            "--model and/or --registry",
        )

    def test_serve_empty_registry_without_model(self, tmp_path, capsys):
        self.check(
            capsys,
            ["serve", "--http", "127.0.0.1:0", "--registry", str(tmp_path / "reg")],
            "empty",
        )

    def test_pack_unwritable_bundle_path(self, tmp_path, capsys):
        from conftest import make_behavior_model

        model = make_behavior_model()
        blocker = tmp_path / "blocker"
        blocker.write_text("occupied")
        from repro.core.errors import ArtifactError

        with pytest.raises(ArtifactError, match="cannot write model bundle"):
            model.save(blocker / "out.tgm")  # parent is a file, not a dir


class TestCorpusStoreCLI:
    @pytest.fixture(scope="class")
    def store_path(self, corpus, tmp_path_factory):
        path = tmp_path_factory.mktemp("store") / "corpus.store"
        assert (
            main(["corpus", "build", "--train", str(corpus), "--out", str(path)])
            == 0
        )
        return path

    def test_build_reports_totals(self, corpus, store_path, capsys):
        assert store_path.exists()
        # rebuilding without --overwrite refuses; with it, succeeds
        code = main(
            ["corpus", "build", "--train", str(corpus), "--out", str(store_path)]
        )
        assert code == 2
        assert "already exists" in capsys.readouterr().err

    def test_info_and_verify(self, store_path, tmp_path, capsys):
        out_json = tmp_path / "info.json"
        assert (
            main(
                [
                    "corpus",
                    "info",
                    str(store_path),
                    "--verify",
                    "--json",
                    str(out_json),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "schema v1" in out
        assert "gzip-decompress" in out
        assert "checksums: OK" in out
        import json

        payload = json.loads(out_json.read_text())
        assert payload["schema_version"] == 1
        assert payload["behaviors"]["gzip-decompress"] == 4
        assert payload["background_graphs"] == 6

    def test_export_round_trips_bytes(self, corpus, store_path, tmp_path, capsys):
        out = tmp_path / "exported"
        assert main(["corpus", "export", str(store_path), "--out", str(out)]) == 0
        assert "exported" in capsys.readouterr().out
        for src in sorted(corpus.glob("*.jsonl")):
            assert (out / src.name).read_bytes() == src.read_bytes()

    def test_mine_corpus_matches_mine_train(self, corpus, store_path, capsys):
        base = ["--behavior", "gzip-decompress", "--max-edges", "3"]
        assert main(["mine", "--train", str(corpus)] + base) == 0
        train_out = capsys.readouterr().out
        assert main(["mine", "--corpus", str(store_path)] + base) == 0
        corpus_out = capsys.readouterr().out
        # identical mined patterns; only the stats line may differ
        assert train_out.split("\n\n", 1)[1] == corpus_out.split("\n\n", 1)[1]

    def test_detect_store_matches_detect_log(
        self, corpus, store_path, tmp_path, capsys
    ):
        bundle = tmp_path / "model.tgm"
        assert (
            main(
                [
                    "mine",
                    "--corpus",
                    str(store_path),
                    "--behavior",
                    "gzip-decompress",
                    "--max-edges",
                    "3",
                    "--save-model",
                    str(bundle),
                ]
            )
            == 0
        )
        log = tmp_path / "log.jsonl"
        args = ["detect", "--model", str(bundle), "--batch-size", "64"]
        assert main(args + ["--instances", "3", "--save-log", str(log)]) == 0
        live_out = capsys.readouterr().out
        with_log = tmp_path / "with-log.store"
        assert (
            main(
                [
                    "corpus",
                    "build",
                    "--log",
                    str(log),
                    "--out",
                    str(with_log),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(args + ["--store", str(with_log)]) == 0
        store_out = capsys.readouterr().out
        assert store_out.split("detections:")[1] == live_out.split(
            "detections:"
        )[1].split("wrote")[0]

    def test_build_requires_an_input(self, tmp_path, capsys):
        code = main(["corpus", "build", "--out", str(tmp_path / "x.store")])
        assert code == 2
        assert "--train and/or --log" in capsys.readouterr().err

    def test_mine_requires_one_source(self, corpus, store_path, capsys):
        code = main(["mine", "--behavior", "gzip-decompress"])
        assert code == 2
        assert "exactly one" in capsys.readouterr().err
        code = main(
            [
                "mine",
                "--train",
                str(corpus),
                "--corpus",
                str(store_path),
                "--behavior",
                "gzip-decompress",
            ]
        )
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_info_missing_store_errors(self, tmp_path, capsys):
        assert main(["corpus", "info", str(tmp_path / "no.store")]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "missing" in err

    def test_detect_store_without_events_errors(self, store_path, tmp_path, capsys):
        from conftest import make_behavior_model

        bundle = make_behavior_model().save(tmp_path / "m.tgm")
        code = main(["detect", "--model", str(bundle), "--store", str(store_path)])
        assert code == 2
        assert "no event logs" in capsys.readouterr().err

    def test_detect_range_flags_require_store(self, tmp_path, capsys):
        from conftest import make_behavior_model

        bundle = make_behavior_model().save(tmp_path / "m.tgm")
        code = main(
            ["detect", "--model", str(bundle), "--instances", "1", "--start", "5"]
        )
        assert code == 2
        assert "--store" in capsys.readouterr().err
