"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_rejects_unknown_behavior(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", "--train", "x", "--behavior", "nmap"])


class TestCommands:
    def test_behaviors_lists_all(self, capsys):
        assert main(["behaviors"]) == 0
        out = capsys.readouterr().out
        assert "sshd-login" in out and "small:" in out

    def test_generate_then_mine_roundtrip(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        assert (
            main(
                [
                    "generate",
                    "--out",
                    str(corpus),
                    "--instances",
                    "4",
                    "--background",
                    "6",
                ]
            )
            == 0
        )
        assert (corpus / "gzip-decompress.jsonl").exists()
        assert (corpus / "background.jsonl").exists()
        assert (
            main(
                [
                    "mine",
                    "--train",
                    str(corpus),
                    "--behavior",
                    "gzip-decompress",
                    "--max-edges",
                    "3",
                    "--max-seconds",
                    "20",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "best score" in out
        assert "t=1:" in out

    def test_mine_missing_corpus_errors(self, tmp_path, capsys):
        code = main(
            ["mine", "--train", str(tmp_path), "--behavior", "gzip-decompress"]
        )
        assert code == 2
        assert "missing" in capsys.readouterr().err
