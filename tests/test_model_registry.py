"""Tests for the versioned on-disk model registry.

The registry contract: content-hashed idempotent publishes, an atomic
manifest every instance (and process) reads fresh, digest-verified
loads, and the candidate -> active -> retired promotion state machine
(including rollback).  All invalid registry state surfaces as
:class:`RegistryError`.
"""

import json

import pytest

from repro.api import BehaviorModel, ModelRegistry, RegistryError
from repro.serving.model_registry import (
    REGISTRY_SCHEMA_VERSION,
    STATE_ACTIVE,
    STATE_CANDIDATE,
    STATE_RETIRED,
    RegistryEntry,
)

from conftest import make_behavior_model


@pytest.fixture
def model():
    return make_behavior_model()


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestOpen:
    def test_open_creates_layout(self, tmp_path):
        root = tmp_path / "fresh"
        registry = ModelRegistry(root)
        assert (root / "registry.json").is_file()
        assert (root / "models").is_dir()
        assert registry.entries() == []
        assert registry.active_version is None
        assert registry.latest_version is None

    def test_open_over_file_raises_registry_error(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        with pytest.raises(RegistryError, match="cannot open model registry"):
            ModelRegistry(blocker)

    def test_unknown_version_raises(self, registry):
        with pytest.raises(RegistryError, match="no version 3"):
            registry.entry(3)


class TestPublish:
    def test_first_publish_auto_activates(self, registry, model):
        entry = registry.publish(model)
        assert entry.version == 1
        assert entry.state == STATE_ACTIVE
        assert registry.active_version == 1
        assert registry.latest_version == 1
        assert entry.behaviors == ("chain-abc",)
        assert entry.queries == 1
        assert (registry.root / "models" / entry.filename).is_file()
        assert entry.filename.startswith("v0001-")

    def test_identical_bytes_dedup_to_same_version(self, registry, model):
        first = registry.publish(model)
        again = registry.publish(model)
        assert again.version == first.version
        assert again.digest == first.digest
        assert len(registry.entries()) == 1

    def test_different_content_mints_new_candidate(self, registry, model):
        registry.publish(model)
        entry = registry.publish(make_behavior_model(span_cap=20))
        assert entry.version == 2
        assert entry.state == STATE_CANDIDATE
        assert registry.active_version == 1
        assert registry.latest_version == 2

    def test_publish_accepts_bundle_path(self, registry, model, tmp_path):
        bundle = model.save(tmp_path / "m.tgm")
        entry = registry.publish(bundle)
        assert entry.version == 1
        assert registry.publish(model).version == 1  # same bytes, same entry

    def test_publish_visible_to_other_instances(self, registry, model):
        registry.publish(model)
        other = ModelRegistry(registry.root)
        assert other.latest_version == 1
        assert other.active_version == 1


class TestLoad:
    def test_load_round_trips_model(self, registry, model):
        registry.publish(model)
        loaded = registry.load(1)
        assert isinstance(loaded, BehaviorModel)
        assert loaded.behaviors == model.behaviors
        assert [q.name for q in loaded.queries()] == ["chain-abc#1"]

    def test_load_detects_corrupt_bundle(self, registry, model):
        entry = registry.publish(model)
        bundle = registry.root / "models" / entry.filename
        bundle.write_bytes(b"\x00" * 64)
        with pytest.raises(RegistryError, match="corrupt"):
            registry.load(1)

    def test_load_missing_bundle_file(self, registry, model):
        entry = registry.publish(model)
        (registry.root / "models" / entry.filename).unlink()
        with pytest.raises(RegistryError, match="unreadable"):
            registry.load(1)

    def test_path_for(self, registry, model):
        entry = registry.publish(model)
        assert registry.path_for(1).name == entry.filename


class TestPromote:
    def publish_two(self, registry, model):
        registry.publish(model)
        registry.publish(make_behavior_model(span_cap=20))

    def test_promote_activates_and_retires(self, registry, model):
        self.publish_two(registry, model)
        entry = registry.promote(2)
        assert entry.state == STATE_ACTIVE
        assert registry.active_version == 2
        assert registry.entry(1).state == STATE_RETIRED

    def test_promote_retired_is_rollback(self, registry, model):
        self.publish_two(registry, model)
        registry.promote(2)
        rolled = registry.promote(1)
        assert rolled.state == STATE_ACTIVE
        assert registry.active_version == 1
        assert registry.entry(2).state == STATE_RETIRED

    def test_promote_active_is_noop(self, registry, model):
        registry.publish(model)
        entry = registry.promote(1)
        assert entry.state == STATE_ACTIVE
        assert registry.active_version == 1

    def test_promote_unknown_raises(self, registry, model):
        registry.publish(model)
        with pytest.raises(RegistryError, match="cannot promote unknown version 9"):
            registry.promote(9)

    def test_at_most_one_active(self, registry, model):
        self.publish_two(registry, model)
        registry.publish(make_behavior_model(span_cap=30))
        registry.promote(2)
        registry.promote(3)
        states = [entry.state for entry in registry.entries()]
        assert states.count(STATE_ACTIVE) == 1
        assert registry.active_version == 3


class TestManifestValidation:
    def test_corrupt_manifest_raises(self, registry):
        (registry.root / "registry.json").write_text("{not json")
        with pytest.raises(RegistryError, match="corrupt registry manifest"):
            registry.entries()

    def test_wrong_format_tag_raises(self, registry):
        (registry.root / "registry.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(RegistryError, match="not a model-registry manifest"):
            registry.entries()

    def test_newer_schema_rejected(self, registry):
        manifest = json.loads((registry.root / "registry.json").read_text())
        manifest["schema_version"] = REGISTRY_SCHEMA_VERSION + 1
        (registry.root / "registry.json").write_text(json.dumps(manifest))
        with pytest.raises(RegistryError, match="newer than this library"):
            registry.entries()

    def test_malformed_entry_raises(self, registry, model):
        registry.publish(model)
        manifest = json.loads((registry.root / "registry.json").read_text())
        del manifest["entries"][0]["digest"]
        (registry.root / "registry.json").write_text(json.dumps(manifest))
        with pytest.raises(RegistryError, match="malformed registry entry"):
            registry.entries()

    def test_unknown_state_raises(self, registry, model):
        registry.publish(model)
        manifest = json.loads((registry.root / "registry.json").read_text())
        manifest["entries"][0]["state"] = "limbo"
        (registry.root / "registry.json").write_text(json.dumps(manifest))
        with pytest.raises(RegistryError, match="unknown state 'limbo'"):
            registry.entries()


class TestEntrySerialization:
    def test_entry_round_trips_as_dict(self, registry, model):
        entry = registry.publish(model)
        assert RegistryEntry.from_dict(entry.as_dict()) == entry

    def test_describe_lists_versions(self, registry, model):
        assert "empty" in registry.describe()
        registry.publish(model)
        registry.publish(make_behavior_model(span_cap=20))
        text = registry.describe()
        assert "2 version(s)" in text
        assert "v1" in text and "v2" in text
        assert "active" in text and "candidate" in text
