"""Unit tests for the sequence encodings (paper Section 4.3 / Figure 9)."""

from repro.core.pattern import TemporalPattern
from repro.core.sequence import (
    SequenceEncoding,
    edge_sequence,
    encode,
    enhanced_node_sequence,
    label_subsequence,
    node_sequence,
)


class TestNodeSequence:
    def test_identity_on_normalized_patterns(self):
        p = TemporalPattern(("A", "B", "C"), ((0, 1), (1, 2)))
        assert node_sequence(p) == (0, 1, 2)

    def test_single_edge(self):
        assert node_sequence(TemporalPattern.single_edge("A", "B")) == (0, 1)


class TestEdgeSequence:
    def test_matches_pattern_edges(self):
        p = TemporalPattern(("A", "B", "C"), ((0, 1), (1, 2), (0, 2)))
        assert edge_sequence(p) == ((0, 1), (1, 2), (0, 2))


class TestEnhancedNodeSequence:
    def test_first_edge_adds_both_endpoints(self):
        p = TemporalPattern.single_edge("A", "B")
        assert enhanced_node_sequence(p) == (0, 1)

    def test_source_skipped_when_last_added(self):
        # edges: (0,1), (1,2) — node 1 is the last added when edge 2 is
        # processed, so it is skipped as a source.
        p = TemporalPattern(("A", "B", "C"), ((0, 1), (1, 2)))
        assert enhanced_node_sequence(p) == (0, 1, 2)

    def test_source_skipped_when_source_of_previous_edge(self):
        # edges: (0,1), (0,2) — node 0 was the previous source.
        p = TemporalPattern(("A", "B", "C"), ((0, 1), (0, 2)))
        assert enhanced_node_sequence(p) == (0, 1, 2)

    def test_source_rerecorded_after_detour(self):
        # edges: (0,1), (1,2), (0,3): node 0 is neither last-added (2) nor
        # the previous source (1), so it is appended again.
        p = TemporalPattern(("A", "B", "C", "D"), ((0, 1), (1, 2), (0, 3)))
        assert enhanced_node_sequence(p) == (0, 1, 2, 0, 3)

    def test_backward_growth_recorded(self):
        # edges: (0,1), (2,1): new source 2 appended, destination 1 always
        # appended even though it already occurred.
        p = TemporalPattern(("A", "B", "C"), ((0, 1), (2, 1)))
        assert enhanced_node_sequence(p) == (0, 1, 2, 1)

    def test_multi_edge_destination_repeats(self):
        p = TemporalPattern(("A", "B"), ((0, 1), (0, 1)))
        assert enhanced_node_sequence(p) == (0, 1, 1)


class TestLabelSubsequence:
    def test_positive(self):
        assert label_subsequence(("A", "C"), ("A", "B", "C"))

    def test_negative_order(self):
        assert not label_subsequence(("C", "A"), ("A", "B", "C"))

    def test_empty_needle(self):
        assert label_subsequence((), ("A",))

    def test_needle_longer_than_haystack(self):
        assert not label_subsequence(("A", "A"), ("A",))

    def test_duplicates_respected(self):
        assert label_subsequence(("A", "A"), ("A", "B", "A"))


class TestEncodingCache:
    def test_encode_caches_per_pattern(self):
        p = TemporalPattern.single_edge("A", "B")
        assert encode(p) is encode(p)

    def test_encoding_fields_consistent(self):
        p = TemporalPattern(("A", "B", "A"), ((0, 1), (1, 2)))
        enc = SequenceEncoding(p)
        assert enc.node_labels == ("A", "B", "A")
        assert enc.edge_label_pairs == (("A", "B"), ("B", "A"))
        assert len(enc.enh_labels) == len(enc.enhseq)
