"""Property-based tests (hypothesis) for the core invariants:

* the three subgraph testers agree with the brute-force oracle;
* every embedded pattern is found by every tester;
* all six miner variants return identical results (Theorem 2);
* sequence encodings are consistent with Lemma 5's premises;
* the three temporal-join implementations (legacy objects, scalar
  buffers, vectorized masks) enumerate byte-identical match sequences
  on seeded adversarial logs, batch and streaming alike.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

import repro.core.graph_index as graph_index
from repro.core import buffers
from repro.core.brute import contains_pattern, enumerate_matches
from repro.core.concurrent import sequentialize
from repro.core.graph import TemporalEdge, TemporalGraph
from repro.core.graph_index import GraphIndexTester, find_matches
from repro.core.miner import MinerConfig, TGMiner, miner_variant
from repro.core.pattern import TemporalPattern
from repro.core.sequence import encode
from repro.core.subgraph import SequenceSubgraphTester
from repro.core.vf2 import VF2SubgraphTester
from repro.serving.streaming import StreamingGraph
from repro.syscall.events import SyscallEvent

from conftest import random_embedded_pattern, random_temporal_graph


@st.composite
def temporal_graphs(draw, max_nodes=6, max_edges=9, alphabet="AB"):
    """A random small, totally ordered temporal graph."""
    n_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    n_edges = draw(st.integers(min_value=1, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return random_temporal_graph(random.Random(seed), n_nodes, n_edges, alphabet)


@st.composite
def graph_and_embedded_pattern(draw):
    graph = draw(temporal_graphs())
    seed = draw(st.integers(min_value=0, max_value=10**6))
    pattern = random_embedded_pattern(random.Random(seed), graph, max_edges=4)
    return graph, pattern


def t_connected(graph: TemporalGraph) -> bool:
    nodes: set[int] = set()
    for i, edge in enumerate(graph.edges):
        if i > 0 and edge.src not in nodes and edge.dst not in nodes:
            return False
        nodes.update(edge.endpoints())
    return True


class TestMatcherProperties:
    @given(graph_and_embedded_pattern())
    @settings(max_examples=120, deadline=None)
    def test_embedded_patterns_always_found(self, case):
        graph, pattern = case
        assert contains_pattern(pattern, graph)
        matches = list(find_matches(pattern, graph))
        assert matches, "index-join matcher must find embedded pattern"

    @given(graph_and_embedded_pattern(), temporal_graphs())
    @settings(max_examples=120, deadline=None)
    def test_testers_agree_with_oracle(self, case, other):
        _graph, pattern = case
        if not t_connected(other):
            return
        big = TemporalPattern.from_graph(other)
        expected = contains_pattern(pattern, other)
        assert SequenceSubgraphTester().contains(pattern, big) == expected
        assert VF2SubgraphTester().contains(pattern, big) == expected
        assert GraphIndexTester().contains(pattern, big) == expected

    @given(graph_and_embedded_pattern())
    @settings(max_examples=100, deadline=None)
    def test_index_join_equals_brute_matches(self, case):
        graph, pattern = case
        brute = {(m.nodes, m.edge_indexes) for m in enumerate_matches(pattern, graph)}
        joined = {(m.nodes, m.edge_indexes) for m in find_matches(pattern, graph)}
        assert brute == joined

    @given(graph_and_embedded_pattern())
    @settings(max_examples=100, deadline=None)
    def test_match_edge_indexes_strictly_increase(self, case):
        graph, pattern = case
        for match in enumerate_matches(pattern, graph):
            idxs = match.edge_indexes
            assert all(a < b for a, b in zip(idxs, idxs[1:]))
            assert len(set(match.nodes)) == len(match.nodes)


class TestSequenceProperties:
    @given(graph_and_embedded_pattern())
    @settings(max_examples=120, deadline=None)
    def test_enhseq_covers_nodeseq(self, case):
        _graph, pattern = case
        enc = encode(pattern)
        # every node occurs in the enhanced sequence
        assert set(enc.enhseq) == set(enc.nodeseq)
        # destination of every edge appears in enhseq at least once per edge
        assert len(enc.enhseq) >= pattern.num_nodes

    @given(graph_and_embedded_pattern())
    @settings(max_examples=120, deadline=None)
    def test_pattern_contains_its_prefixes(self, case):
        _graph, pattern = case
        tester = SequenceSubgraphTester()
        for k in range(1, pattern.num_edges + 1):
            assert tester.contains(pattern.prefix(k), pattern)


class TestMinerProperties:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_variants_identical_results(self, seed, max_edges):
        rng = random.Random(seed)
        pos = [random_temporal_graph(rng, 4, 6, "AB") for _ in range(3)]
        neg = [random_temporal_graph(rng, 4, 6, "AB") for _ in range(3)]
        base = MinerConfig(
            max_edges=max_edges, min_pos_support=0.5, max_best_patterns=100_000
        )
        results = {}
        for name in ("TGMiner", "SubPrune", "SupPrune", "LinearScan"):
            res = TGMiner(miner_variant(name, base)).mine(pos, neg)
            results[name] = (res.best_score, {m.pattern.key() for m in res.best})
        reference = results["TGMiner"]
        for name, got in results.items():
            assert got == reference, f"{name} diverged"

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_best_score_matches_unpruned_search(self, seed):
        rng = random.Random(seed)
        pos = [random_temporal_graph(rng, 4, 6, "AB") for _ in range(3)]
        neg = [random_temporal_graph(rng, 4, 6, "AB") for _ in range(3)]
        pruned = TGMiner(MinerConfig(max_edges=3, min_pos_support=0.5)).mine(pos, neg)
        unpruned = TGMiner(
            MinerConfig(
                max_edges=3,
                min_pos_support=0.5,
                subgraph_pruning=False,
                supergraph_pruning=False,
                upper_bound_pruning=False,
            )
        ).mine(pos, neg)
        assert pruned.best_score == unpruned.best_score


# ----------------------------------------------------------------------
# randomized byte-identity harness for the temporal-join implementations
# ----------------------------------------------------------------------


def _burst_log(rng: random.Random) -> TemporalGraph:
    """Dense bursts between few nodes: match counts saturate any limit."""
    graph = TemporalGraph(name="burst")
    for _ in range(4):
        graph.add_node(rng.choice("AB"))
    for t in range(rng.randint(12, 20)):
        u = rng.randrange(4)
        v = (u + rng.randint(1, 3)) % 4
        graph.add_edge(u, v, t)
    return graph.freeze()


def _all_one_label_log(rng: random.Random) -> TemporalGraph:
    """Every node carries the same label: one giant candidate list."""
    n = rng.randint(3, 6)
    graph = TemporalGraph(name="onelabel")
    for _ in range(n):
        graph.add_node("X")
    for t in range(rng.randint(8, 16)):
        u = rng.randrange(n)
        v = rng.randrange(n)
        while v == u:
            v = rng.randrange(n)
        graph.add_edge(u, v, t)
    return graph.freeze()


def _sparse_gap_log(rng: random.Random) -> TemporalGraph:
    """Huge time gaps: small ``max_span`` caps leave empty scan windows."""
    n = rng.randint(4, 6)
    graph = TemporalGraph(name="gaps")
    for _ in range(n):
        graph.add_node(rng.choice("ABC"))
    t = 0
    for _ in range(rng.randint(6, 12)):
        t += rng.choice((1, 1, 2, 1000))
        u = rng.randrange(n)
        v = rng.randrange(n)
        while v == u:
            v = rng.randrange(n)
        graph.add_edge(u, v, t)
    return graph.freeze()


def _concurrent_log(rng: random.Random) -> TemporalGraph:
    """Duplicate raw timestamps, sequentialized by the random policy."""
    n = rng.randint(4, 6)
    labels = [rng.choice("AB") for _ in range(n)]
    edges = []
    for i in range(rng.randint(8, 14)):
        u = rng.randrange(n)
        v = rng.randrange(n)
        while v == u:
            v = rng.randrange(n)
        # several edges share each raw timestamp -> concurrent blocks
        edges.append(TemporalEdge(u, v, i // 3))
    return sequentialize(
        edges, labels, policy="random", seed=rng.randrange(10**6), name="conc"
    )


_ADVERSARIES = (_burst_log, _all_one_label_log, _sparse_gap_log, _concurrent_log)


def _query_for(rng: random.Random, graph: TemporalGraph) -> TemporalPattern:
    if rng.random() < 0.7:
        return random_embedded_pattern(rng, graph, max_edges=4)
    # a pattern that need not embed: relabel an extracted one
    pattern = random_embedded_pattern(rng, graph, max_edges=3)
    labels = [rng.choice("ABCX") for _ in pattern.labels]
    return TemporalPattern(labels, pattern.edges)


def _match_key(matches):
    return [(m.nodes, m.edge_indexes) for m in matches]


@pytest.fixture
def restore_backend():
    yield
    buffers.force_backend(None)


class TestJoinByteIdentityHarness:
    """Seeded adversarial logs pin all join paths byte-identical.

    Per case the legacy object join (``use_kernel=False``) is the
    reference; the vectorized join (numpy backend, with the dispatch
    thresholds zeroed so the mask branches run even on tiny windows)
    and the scalar buffer join (forced ``array`` backend) must enumerate
    the same match sequence under every span cap and limit — including
    limits that cut a mask batch mid-iteration.
    """

    SEEDS = range(40)

    def _check_graph(self, graph, rng, monkeypatch):
        monkeypatch.setattr(graph_index, "_VECTOR_MIN_CANDIDATES", 0)
        monkeypatch.setattr(graph_index, "_VECTOR_MIN_WINDOW", 0)
        patterns = [_query_for(rng, graph) for _ in range(3)]
        spans = (None, 0, rng.randint(1, 5), 10**6)
        limits = (None, 1, rng.randint(2, 7))
        for pattern in patterns:
            for max_span in spans:
                for limit in limits:
                    reference = _match_key(
                        find_matches(
                            pattern,
                            graph,
                            max_span=max_span,
                            limit=limit,
                            use_kernel=False,
                        )
                    )
                    for backend in ("numpy", "array"):
                        if backend == "numpy" and not buffers.have_numpy():
                            continue
                        buffers.force_backend(backend)
                        got = _match_key(
                            find_matches(
                                pattern, graph, max_span=max_span, limit=limit
                            )
                        )
                        assert got == reference, (
                            f"{backend} join diverged: span={max_span} "
                            f"limit={limit} pattern={pattern.key()}"
                        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_joins_identical(self, seed, monkeypatch, restore_backend):
        rng = random.Random(seed)
        adversary = _ADVERSARIES[seed % len(_ADVERSARIES)]
        self._check_graph(adversary(rng), rng, monkeypatch)

    @pytest.mark.parametrize("seed", range(12))
    def test_streaming_window_joins_identical(
        self, seed, monkeypatch, restore_backend
    ):
        """A live evicting window enumerates the same spans as its batch
        rebuild, on every backend."""
        monkeypatch.setattr(graph_index, "_VECTOR_MIN_CANDIDATES", 0)
        monkeypatch.setattr(graph_index, "_VECTOR_MIN_WINDOW", 0)
        rng = random.Random(1000 + seed)
        adversary = _ADVERSARIES[seed % len(_ADVERSARIES)]
        source = adversary(rng)
        stream = StreamingGraph(window_span=rng.randint(4, 12), name="live")
        events = [
            SyscallEvent(
                time=edge.time,
                syscall="op",
                src_key=f"n{edge.src}",
                src_label=source.label(edge.src),
                dst_key=f"n{edge.dst}",
                dst_label=source.label(edge.dst),
            )
            for edge in source.edges
        ]
        # ingest in ragged batches so eviction/compaction actually happens
        while events:
            k = rng.randint(1, 4)
            stream.ingest(events[:k])
            events = events[k:]
        batch = stream.as_temporal_graph(name="rebuild")
        start = stream.first_live_index
        pattern = _query_for(rng, batch)
        for max_span in (None, rng.randint(1, 6)):
            want = [
                tuple(batch.edges[i].time for i in m.edge_indexes)
                for m in find_matches(
                    pattern, batch, max_span=max_span, use_kernel=False
                )
            ]
            for backend in ("numpy", "array"):
                if backend == "numpy" and not buffers.have_numpy():
                    continue
                buffers.force_backend(backend)
                got = [
                    tuple(stream.edges[i].time for i in m.edge_indexes)
                    for m in find_matches(
                        pattern, stream, max_span=max_span, start_index=start
                    )
                ]
                assert got == want, f"{backend} streaming join diverged"
