"""Property-based tests (hypothesis) for the core invariants:

* the three subgraph testers agree with the brute-force oracle;
* every embedded pattern is found by every tester;
* all six miner variants return identical results (Theorem 2);
* sequence encodings are consistent with Lemma 5's premises.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.brute import contains_pattern, enumerate_matches
from repro.core.graph import TemporalGraph
from repro.core.graph_index import GraphIndexTester, find_matches
from repro.core.miner import MinerConfig, TGMiner, miner_variant
from repro.core.pattern import TemporalPattern
from repro.core.sequence import encode
from repro.core.subgraph import SequenceSubgraphTester
from repro.core.vf2 import VF2SubgraphTester

from conftest import random_embedded_pattern, random_temporal_graph


@st.composite
def temporal_graphs(draw, max_nodes=6, max_edges=9, alphabet="AB"):
    """A random small, totally ordered temporal graph."""
    n_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    n_edges = draw(st.integers(min_value=1, max_value=max_edges))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return random_temporal_graph(random.Random(seed), n_nodes, n_edges, alphabet)


@st.composite
def graph_and_embedded_pattern(draw):
    graph = draw(temporal_graphs())
    seed = draw(st.integers(min_value=0, max_value=10**6))
    pattern = random_embedded_pattern(random.Random(seed), graph, max_edges=4)
    return graph, pattern


def t_connected(graph: TemporalGraph) -> bool:
    nodes: set[int] = set()
    for i, edge in enumerate(graph.edges):
        if i > 0 and edge.src not in nodes and edge.dst not in nodes:
            return False
        nodes.update(edge.endpoints())
    return True


class TestMatcherProperties:
    @given(graph_and_embedded_pattern())
    @settings(max_examples=120, deadline=None)
    def test_embedded_patterns_always_found(self, case):
        graph, pattern = case
        assert contains_pattern(pattern, graph)
        matches = list(find_matches(pattern, graph))
        assert matches, "index-join matcher must find embedded pattern"

    @given(graph_and_embedded_pattern(), temporal_graphs())
    @settings(max_examples=120, deadline=None)
    def test_testers_agree_with_oracle(self, case, other):
        _graph, pattern = case
        if not t_connected(other):
            return
        big = TemporalPattern.from_graph(other)
        expected = contains_pattern(pattern, other)
        assert SequenceSubgraphTester().contains(pattern, big) == expected
        assert VF2SubgraphTester().contains(pattern, big) == expected
        assert GraphIndexTester().contains(pattern, big) == expected

    @given(graph_and_embedded_pattern())
    @settings(max_examples=100, deadline=None)
    def test_index_join_equals_brute_matches(self, case):
        graph, pattern = case
        brute = {(m.nodes, m.edge_indexes) for m in enumerate_matches(pattern, graph)}
        joined = {(m.nodes, m.edge_indexes) for m in find_matches(pattern, graph)}
        assert brute == joined

    @given(graph_and_embedded_pattern())
    @settings(max_examples=100, deadline=None)
    def test_match_edge_indexes_strictly_increase(self, case):
        graph, pattern = case
        for match in enumerate_matches(pattern, graph):
            idxs = match.edge_indexes
            assert all(a < b for a, b in zip(idxs, idxs[1:]))
            assert len(set(match.nodes)) == len(match.nodes)


class TestSequenceProperties:
    @given(graph_and_embedded_pattern())
    @settings(max_examples=120, deadline=None)
    def test_enhseq_covers_nodeseq(self, case):
        _graph, pattern = case
        enc = encode(pattern)
        # every node occurs in the enhanced sequence
        assert set(enc.enhseq) == set(enc.nodeseq)
        # destination of every edge appears in enhseq at least once per edge
        assert len(enc.enhseq) >= pattern.num_nodes

    @given(graph_and_embedded_pattern())
    @settings(max_examples=120, deadline=None)
    def test_pattern_contains_its_prefixes(self, case):
        _graph, pattern = case
        tester = SequenceSubgraphTester()
        for k in range(1, pattern.num_edges + 1):
            assert tester.contains(pattern.prefix(k), pattern)


class TestMinerProperties:
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_variants_identical_results(self, seed, max_edges):
        rng = random.Random(seed)
        pos = [random_temporal_graph(rng, 4, 6, "AB") for _ in range(3)]
        neg = [random_temporal_graph(rng, 4, 6, "AB") for _ in range(3)]
        base = MinerConfig(
            max_edges=max_edges, min_pos_support=0.5, max_best_patterns=100_000
        )
        results = {}
        for name in ("TGMiner", "SubPrune", "SupPrune", "LinearScan"):
            res = TGMiner(miner_variant(name, base)).mine(pos, neg)
            results[name] = (res.best_score, {m.pattern.key() for m in res.best})
        reference = results["TGMiner"]
        for name, got in results.items():
            assert got == reference, f"{name} diverged"

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_best_score_matches_unpruned_search(self, seed):
        rng = random.Random(seed)
        pos = [random_temporal_graph(rng, 4, 6, "AB") for _ in range(3)]
        neg = [random_temporal_graph(rng, 4, 6, "AB") for _ in range(3)]
        pruned = TGMiner(MinerConfig(max_edges=3, min_pos_support=0.5)).mine(pos, neg)
        unpruned = TGMiner(
            MinerConfig(
                max_edges=3,
                min_pos_support=0.5,
                subgraph_pruning=False,
                supergraph_pruning=False,
                upper_bound_pruning=False,
            )
        ).mine(pos, neg)
        assert pruned.best_score == unpruned.best_score
