"""Cross-implementation property tests for the interned-label CSR kernel.

The kernel layer (:mod:`repro.core.kernel`) is a pure *view*: every hot
path that switched from the object representation to the flat arrays —
embedding extension, the temporal index join, residual summaries,
signature pretests — must produce results **exactly equal** to the
retained legacy paths.  These tests pin that contract on random temporal
graphs so any divergence introduced later fails loudly.
"""

import pickle
import random

import pytest

from repro.core.errors import GraphError
from repro.core.graph import TemporalGraph
from repro.core.graph_index import (
    CandidateFilter,
    find_matches,
    graph_signature,
    pattern_signature,
    signature_contains,
)
from repro.core.growth import cut_points, extend_embeddings, seed_patterns
from repro.core.kernel import GraphKernel, LabelInterner, build_kernels
from repro.core.residual import summarize_residuals
from repro.core.sequence import encode
from repro.serving.streaming import StreamingGraph
from repro.syscall.events import SyscallEvent

from conftest import random_embedded_pattern, random_temporal_graph


def random_corpus(rng, count=6, n_nodes=8, n_edges=18, alphabet="ABCD"):
    return [
        random_temporal_graph(
            rng, n_nodes=n_nodes, n_edges=n_edges, alphabet=alphabet
        )
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# interner / kernel basics
# ----------------------------------------------------------------------
class TestLabelInterner:
    def test_round_trip_and_determinism(self):
        interner = LabelInterner()
        ids = [interner.intern(label) for label in ("b", "a", "b", "c")]
        assert ids == [0, 1, 0, 2]
        assert interner.label_of(2) == "c"
        assert interner.id_of("a") == 1
        assert interner.id_of("missing") is None
        assert "a" in interner and "missing" not in interner
        assert len(interner) == 3

    def test_separate_interners_assign_independently(self):
        left, right = LabelInterner(), LabelInterner()
        left.intern("x")
        assert right.id_of("x") is None


class TestGraphKernel:
    def test_arrays_mirror_edges(self):
        rng = random.Random(7)
        graph = random_temporal_graph(rng, n_nodes=10, n_edges=25)
        kernel = graph.kernel()
        base, srcs, dsts, times = graph.edge_arrays()
        assert base == 0
        for idx, edge in enumerate(graph.edges):
            assert (srcs[idx], dsts[idx], times[idx]) == (
                edge.src,
                edge.dst,
                edge.time,
            )
        # CSR rows reproduce the per-node adjacency in ascending order
        for node in range(graph.num_nodes):
            out_row = kernel.out_indices[
                kernel.out_indptr[node] : kernel.out_indptr[node + 1]
            ]
            assert out_row == [
                i for i, e in enumerate(graph.edges) if e.src == node
            ]
            in_row = kernel.in_indices[
                kernel.in_indptr[node] : kernel.in_indptr[node + 1]
            ]
            assert in_row == [
                i for i, e in enumerate(graph.edges) if e.dst == node
            ]

    def test_pair_buckets_share_graph_index_lists(self):
        rng = random.Random(11)
        graph = random_temporal_graph(rng)
        kernel = graph.kernel()
        interner = kernel.interner
        for (src_label, dst_label), idxs in graph.label_pair_index().items():
            bucket = kernel.edges_between_ids(
                interner.id_of(src_label), interner.id_of(dst_label)
            )
            assert bucket is idxs  # shared storage, not a copy

    def test_suffix_label_ids_match_string_sets(self):
        rng = random.Random(13)
        graph = random_temporal_graph(rng)
        kernel = graph.kernel()
        for i in range(graph.num_edges + 1):
            as_strings = {
                kernel.interner.label_of(lid)
                for lid in kernel.suffix_label_ids[i]
            }
            assert as_strings == set(graph.suffix_label_set(i))

    def test_kernel_cached_and_rebound_on_new_interner(self):
        rng = random.Random(17)
        graph = random_temporal_graph(rng)
        first = graph.kernel()
        assert graph.kernel() is first
        shared = LabelInterner()
        rebound = graph.kernel(shared)
        assert rebound is not first and rebound.interner is shared
        assert graph.kernel() is rebound  # cache follows the latest bind

    def test_kernel_requires_frozen_graph(self):
        graph = TemporalGraph()
        graph.add_node("A")
        graph.add_node("B")
        graph.add_edge(0, 1)
        with pytest.raises(GraphError):
            graph.kernel()
        with pytest.raises(GraphError):
            graph.edge_arrays()

    def test_pickle_drops_kernel_and_array_caches(self):
        rng = random.Random(19)
        graph = random_temporal_graph(rng)
        graph.kernel()
        graph.edge_arrays()
        clone = pickle.loads(pickle.dumps(graph))
        assert clone._kernel is None and clone._col_src is None
        # the rebuilt kernel is equivalent
        rebuilt = clone.kernel()
        assert rebuilt.edge_src == graph.kernel().edge_src
        assert rebuilt.node_label_ids == graph.kernel().node_label_ids


# ----------------------------------------------------------------------
# growth: kernel path == legacy scan path
# ----------------------------------------------------------------------
class TestExtendEmbeddingsEquivalence:
    def grow_levels(self, corpus, kernels, levels=3, seed_cap=12, fan=6):
        """Walk several growth generations comparing both paths each step."""
        seeds = seed_patterns(corpus, use_index=True)
        frontier = [seeds[key] for key in sorted(seeds)[:seed_cap]]
        for _ in range(levels):
            nxt = []
            for table in frontier:
                legacy = extend_embeddings(corpus, table, use_kernel=False)
                fast = extend_embeddings(corpus, table, kernels)
                assert fast == legacy
                auto = extend_embeddings(corpus, table)  # cached kernels
                assert auto == legacy
                for key in sorted(fast)[:fan]:
                    nxt.append(fast[key])
            if not nxt:
                break
            frontier = nxt[:fan]

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_corpora(self, seed):
        rng = random.Random(seed)
        corpus = random_corpus(rng)
        kernels = build_kernels(corpus, LabelInterner())
        self.grow_levels(corpus, kernels)

    def test_multi_edges_and_hubs(self):
        # a hub-heavy graph with repeated label pairs and parallel edges
        graph = TemporalGraph()
        hub = graph.add_node("H")
        others = [graph.add_node(label) for label in "AABBC"]
        t = 0
        rng = random.Random(5)
        for _ in range(30):
            other = rng.choice(others)
            if rng.random() < 0.5:
                graph.add_edge(hub, other, t)
            else:
                graph.add_edge(other, hub, t)
            t += 1
        corpus = [graph.freeze()]
        kernels = build_kernels(corpus, LabelInterner())
        self.grow_levels(corpus, kernels)

    def test_rows_equal_across_paths_and_fields_accessible(self):
        rng = random.Random(23)
        corpus = random_corpus(rng, count=2)
        seeds = seed_patterns(corpus)
        key = sorted(seeds)[0]
        fast = extend_embeddings(corpus, seeds[key])
        legacy = extend_embeddings(corpus, seeds[key], use_kernel=False)
        assert fast == legacy
        for table in fast.values():
            for rows in table.values():
                for row in rows:
                    # kernel rows stay Embedding instances (built through
                    # tuple.__new__) — named access keeps working
                    assert row.nodes == row[0]
                    assert row.last_index == row[1]


# ----------------------------------------------------------------------
# matching: array join == object join
# ----------------------------------------------------------------------
class TestFindMatchesEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_random_graphs_exact_sequence(self, seed):
        rng = random.Random(seed)
        graph = random_temporal_graph(rng, n_nodes=8, n_edges=24, alphabet="ABC")
        for _ in range(6):
            pattern = random_embedded_pattern(rng, graph)
            for max_span in (None, 3, 8):
                for limit in (None, 2):
                    legacy = list(
                        find_matches(
                            pattern,
                            graph,
                            max_span=max_span,
                            limit=limit,
                            use_kernel=False,
                        )
                    )
                    fast = list(
                        find_matches(pattern, graph, max_span=max_span, limit=limit)
                    )
                    assert fast == legacy  # same matches, same order
                    if max_span is None:
                        # the pattern was extracted from the graph, so the
                        # uncapped search must find it
                        assert legacy, "workload degenerate: no matches"

    def test_start_and_min_last_index(self):
        rng = random.Random(31)
        graph = random_temporal_graph(rng, n_nodes=8, n_edges=24)
        pattern = random_embedded_pattern(rng, graph, max_edges=2)
        for start in (0, 5, 12):
            for floor in (0, 8, 20):
                legacy = list(
                    find_matches(
                        pattern,
                        graph,
                        start_index=start,
                        min_last_index=floor,
                        use_kernel=False,
                    )
                )
                fast = list(
                    find_matches(
                        pattern, graph, start_index=start, min_last_index=floor
                    )
                )
                assert fast == legacy


# ----------------------------------------------------------------------
# streaming: incrementally maintained kernel columns
# ----------------------------------------------------------------------
class TestStreamingKernel:
    @staticmethod
    def event(time, src_key, src_label, dst_key, dst_label):
        return SyscallEvent(
            time=time,
            syscall="op",
            src_key=src_key,
            src_label=src_label,
            dst_key=dst_key,
            dst_label=dst_label,
        )

    def random_stream(self, rng, count=120):
        keys = [(f"k{i}", rng.choice("ABCD")) for i in range(10)]
        events = []
        for t in range(count):
            (sk, sl), (dk, dl) = rng.sample(keys, 2)
            events.append(self.event(t, sk, sl, dk, dl))
        return events

    def assert_columns_match_store(self, graph):
        base, srcs, dsts, times = graph.edge_arrays()
        assert base == graph._base
        assert len(srcs) == len(dsts) == len(times) == len(graph._store)
        for offset, edge in enumerate(graph._store):
            assert (srcs[offset], dsts[offset], times[offset]) == (
                edge.src,
                edge.dst,
                edge.time,
            )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_columns_survive_ingest_evict_and_ooo(self, seed):
        rng = random.Random(seed)
        events = self.random_stream(rng)
        graph = StreamingGraph(window_span=30)
        # shuffle batch boundaries and inject mild out-of-order arrival
        pos = 0
        while pos < len(events):
            size = rng.randrange(1, 20)
            batch = events[pos : pos + size]
            rng.shuffle(batch)
            graph.ingest(batch)
            self.assert_columns_match_store(graph)
            pos += size

    def test_streaming_join_uses_columns(self):
        rng = random.Random(9)
        events = self.random_stream(rng)
        graph = StreamingGraph(window_span=1000)
        graph.ingest(events)
        batch = graph.as_temporal_graph()
        pattern = random_embedded_pattern(rng, batch)
        live = {
            (graph.edges[m.edge_indexes[0]].time, graph.edges[m.edge_indexes[-1]].time)
            for m in find_matches(pattern, graph, max_span=50)
        }
        frozen = {
            (batch.edges[m.edge_indexes[0]].time, batch.edges[m.edge_indexes[-1]].time)
            for m in find_matches(pattern, batch, max_span=50)
        }
        assert live == frozen


# ----------------------------------------------------------------------
# residual summaries and signatures over interned ids
# ----------------------------------------------------------------------
class TestResidualAndSignatureEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_summaries_match_legacy(self, seed):
        rng = random.Random(seed)
        corpus = random_corpus(rng)
        interner = LabelInterner()
        kernels = build_kernels(corpus, interner)
        seeds = seed_patterns(corpus)
        for key in sorted(seeds)[:10]:
            table = seeds[key]
            for keep in (False, True):
                legacy = summarize_residuals(
                    corpus, cut_points(table), keep_cut_pairs=keep
                )
                fast = summarize_residuals(
                    corpus, cut_points(table), keep_cut_pairs=keep, kernels=kernels
                )
                assert fast.i_value == legacy.i_value
                assert fast.cut_pairs == legacy.cut_pairs
                assert {
                    interner.label_of(lid) for lid in fast.label_set
                } == set(legacy.label_set)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_filter_pretests_match_string_signatures(self, seed):
        rng = random.Random(seed)
        graphs = random_corpus(rng, count=3)
        patterns = [
            random_embedded_pattern(rng, graph)
            for graph in graphs
            for _ in range(4)
        ]
        filt = CandidateFilter()
        for small in patterns:
            for big in patterns:
                expected = signature_contains(
                    pattern_signature(big), pattern_signature(small)
                )
                assert filt.pattern_vs_pattern(small, big) is expected
            for graph in graphs:
                expected = signature_contains(
                    graph_signature(graph), pattern_signature(small)
                )
                assert filt.pattern_vs_graph(small, graph) is expected

    def test_sequence_encoding_id_projections(self):
        rng = random.Random(41)
        graph = random_temporal_graph(rng)
        pattern = random_embedded_pattern(rng, graph)
        enc = encode(pattern)
        assert len(enc.node_label_ids) == len(enc.node_labels)
        assert len(enc.enh_label_ids) == len(enc.enh_labels)
        # id equality must mirror string equality position by position
        for seq_ids, seq_labels in (
            (enc.node_label_ids, enc.node_labels),
            (enc.enh_label_ids, enc.enh_labels),
            (enc.edge_label_pair_ids, enc.edge_label_pairs),
        ):
            for i in range(len(seq_ids)):
                for j in range(len(seq_ids)):
                    assert (seq_ids[i] == seq_ids[j]) == (
                        seq_labels[i] == seq_labels[j]
                    )


# ----------------------------------------------------------------------
# miner end-to-end sanity: kernels never change the mined outcome
# ----------------------------------------------------------------------
class TestMinerUsesSharedInterner:
    def test_mining_runs_share_one_interner_across_graph_sets(self):
        from repro.core.miner import MinerConfig, _MiningRun

        rng = random.Random(3)
        positives = random_corpus(rng, count=3)
        negatives = random_corpus(rng, count=3)
        run = _MiningRun(MinerConfig(max_edges=3), positives, negatives)
        assert all(k.interner is run.interner for k in run.pos_kernels)
        assert all(k.interner is run.interner for k in run.neg_kernels)
        # every label of every graph is interned
        for graph in list(positives) + list(negatives):
            for label in graph.labels:
                assert run.interner.id_of(label) is not None
