"""Tests for consecutive growth and its completeness guarantee (Theorem 1)."""

import random
from itertools import combinations

from repro.core.growth import (
    Embedding,
    child_pattern,
    cut_points,
    extend_embeddings,
    seed_patterns,
    sort_extension_keys,
)
from repro.core.miner import MinerConfig, TGMiner
from repro.core.pattern import TemporalPattern

from conftest import build_graph, random_temporal_graph


class TestSeeds:
    def test_seed_patterns_group_by_label_pair(self):
        g = build_graph([(0, 1, 0), (1, 2, 1), (0, 2, 2)], labels=["A", "B", "A"])
        seeds = seed_patterns([g])
        assert set(seeds) == {("A", "B"), ("B", "A"), ("A", "A")}
        assert seeds[("A", "B")][0] == {Embedding((0, 1), 0)}

    def test_seed_patterns_skip_self_loops(self):
        g = build_graph([(0, 0, 0), (0, 1, 1)], labels=["A", "B"])
        seeds = seed_patterns([g])
        assert set(seeds) == {("A", "B")}

    def test_seed_patterns_multiple_graphs(self):
        g1 = build_graph([(0, 1, 0)], labels=["A", "B"])
        g2 = build_graph([(0, 1, 5)], labels=["A", "B"])
        seeds = seed_patterns([g1, g2])
        assert set(seeds[("A", "B")]) == {0, 1}


class TestExtensions:
    def test_forward_backward_inward_keys(self):
        g = build_graph(
            [(0, 1, 0), (1, 2, 1), (3, 1, 2), (0, 1, 3)],
            labels=["A", "B", "C", "D"],
        )
        embs = {0: {Embedding((0, 1), 0)}}
        ext = extend_embeddings([g], embs)
        assert ("f", 1, "C") in ext  # B -> new C
        assert ("b", "D", 1) in ext  # new D -> B
        assert ("i", 0, 1) in ext  # second A -> B edge
        # forward child extends node tuple
        emb = next(iter(ext[("f", 1, "C")][0]))
        assert emb.nodes == (0, 1, 2)
        assert emb.last_index == 1

    def test_extension_respects_temporal_order(self):
        # An edge *before* the embedding's cut cannot extend it.
        g = build_graph([(1, 2, 0), (0, 1, 1)], labels=["A", "B", "C"])
        embs = {0: {Embedding((0, 1), 1)}}  # matched A->B at index 1
        ext = extend_embeddings([g], embs)
        assert ext == {}

    def test_child_pattern_matches_key_kinds(self):
        p = TemporalPattern.single_edge("A", "B")
        assert child_pattern(p, ("f", 1, "C")).edges == ((0, 1), (1, 2))
        assert child_pattern(p, ("b", "C", 0)).edges == ((0, 1), (2, 0))
        assert child_pattern(p, ("i", 1, 0)).edges == ((0, 1), (1, 0))

    def test_cut_points(self):
        embs = {
            3: {Embedding((0, 1), 5), Embedding((2, 1), 5)},
            1: {Embedding((0, 1), 2)},
        }
        points = sorted(cut_points(embs))
        assert points == [(1, 2), (3, 5), (3, 5)]

    def test_sort_extension_keys_is_total(self):
        keys = [("i", 1, 0), ("f", 0, "Z"), ("b", "A", 1), ("f", 0, "A")]
        ordered = sort_extension_keys(keys)
        assert ordered[0][0] == "b"
        assert ordered == sort_extension_keys(list(reversed(keys)))


def enumerate_t_connected_patterns(graph, max_edges):
    """Reference enumeration: all T-connected patterns with >= 1 match.

    Every match is an increasing edge-index tuple whose edges form a
    T-connected subgraph; normalizing each one yields the pattern set the
    miner must cover exactly (Theorem 1 completeness).
    """
    found = set()
    n = graph.num_edges
    for size in range(1, max_edges + 1):
        for combo in combinations(range(n), size):
            nodes = set()
            ok = True
            for pos, idx in enumerate(combo):
                edge = graph.edges[idx]
                if edge.src == edge.dst:
                    ok = False
                    break
                if pos > 0 and edge.src not in nodes and edge.dst not in nodes:
                    ok = False
                    break
                nodes.update(edge.endpoints())
            if not ok:
                continue
            sub = build_graph(
                [
                    (graph.edges[i].src, graph.edges[i].dst, graph.edges[i].time)
                    for i in combo
                ],
                labels=list(graph.labels),
            )
            # drop isolated nodes by re-normalizing through from_graph
            found.add(_normalize(sub).key())
    return found


def _normalize(graph):
    remap = {}
    labels = []
    edges = []
    for edge in graph.edges:
        for node in edge.endpoints():
            if node not in remap:
                remap[node] = len(labels)
                labels.append(graph.label(node))
        edges.append((remap[edge.src], remap[edge.dst]))
    return TemporalPattern(labels, edges)


class TestCompleteness:
    """Theorem 1: the DFS covers every T-connected pattern exactly once."""

    def _explored_patterns(self, graphs):
        recorded = []

        config = MinerConfig(
            max_edges=3,
            min_pos_support=0.0,
            subgraph_pruning=False,
            supergraph_pruning=False,
            upper_bound_pruning=False,
        )
        miner = TGMiner(config)
        result = miner.mine(graphs, [])
        return result

    def test_exploration_matches_reference_enumeration(self):
        rng = random.Random(3)
        for _ in range(6):
            g = random_temporal_graph(rng, n_nodes=4, n_edges=6, alphabet="AB")
            expected = enumerate_t_connected_patterns(g, max_edges=3)
            result = self._explored_patterns([g])
            assert result.stats.patterns_explored == len(expected)

    def test_no_repetition_union_of_graphs(self):
        rng = random.Random(9)
        g1 = random_temporal_graph(rng, n_nodes=4, n_edges=5, alphabet="AB")
        g2 = random_temporal_graph(rng, n_nodes=4, n_edges=5, alphabet="AB")
        expected = enumerate_t_connected_patterns(
            g1, 3
        ) | enumerate_t_connected_patterns(g2, 3)
        result = self._explored_patterns([g1, g2])
        assert result.stats.patterns_explored == len(expected)
