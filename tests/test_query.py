"""Tests for the query engine and precision/recall evaluation."""

import pytest

from repro.baselines.gspan import NonTemporalPattern
from repro.baselines.nodeset import NodeSetQuery
from repro.core.errors import QueryError
from repro.core.graph import TemporalGraph
from repro.core.pattern import TemporalPattern
from repro.query.engine import QueryEngine
from repro.query.evaluation import PrecisionRecall, evaluate_spans, pool_spans
from repro.syscall.collector import GroundTruthInstance

from conftest import build_graph


@pytest.fixture
def log_graph():
    """Two occurrences of A->B->C (one stretched), plus decoys."""
    return build_graph(
        [
            (0, 1, 0),   # A->B
            (1, 2, 1),   # B->C  (occurrence 1: span 0-1)
            (3, 1, 4),   # D->B decoy
            (0, 1, 10),  # A->B
            (2, 0, 12),  # C->A decoy
            (1, 2, 30),  # B->C  (occurrence 2: span 10-30, stretched)
        ],
        labels=["A", "B", "C", "D"],
    )


PATTERN = TemporalPattern(("A", "B", "C"), ((0, 1), (1, 2)))


class TestEngineConstruction:
    def test_unfreezable_graph_raises_query_error(self):
        """Constructor failures surface as QueryError with a remedy."""
        graph = TemporalGraph(name="concurrent")
        a = graph.add_node("A")
        b = graph.add_node("B")
        graph.add_edge(a, b, time=5)
        graph.add_edge(b, a, time=5)  # concurrent edges: freeze() must fail
        with pytest.raises(QueryError, match="sequentialize"):
            QueryEngine(graph)

    def test_unfrozen_valid_graph_frozen_on_demand(self):
        graph = TemporalGraph(name="ok")
        a = graph.add_node("A")
        b = graph.add_node("B")
        graph.add_edge(a, b, time=1)
        engine = QueryEngine(graph)
        assert engine.graph.frozen


class TestTemporalSearch:
    def test_finds_all_spans(self, log_graph):
        engine = QueryEngine(log_graph)
        spans = engine.search_temporal(PATTERN, max_span=100)
        assert (0, 1) in spans
        assert (10, 30) in spans
        # cross-occurrence combination (0,30) also matches temporally
        assert (0, 30) in spans

    def test_max_span_filters(self, log_graph):
        engine = QueryEngine(log_graph)
        spans = engine.search_temporal(PATTERN, max_span=5)
        assert spans == [(0, 1)]

    def test_negative_span_rejected(self, log_graph):
        with pytest.raises(QueryError):
            QueryEngine(log_graph).search_temporal(PATTERN, max_span=-1)

    def test_match_limit(self, log_graph):
        engine = QueryEngine(log_graph)
        spans = engine.search_temporal(PATTERN, max_span=100, match_limit=1)
        assert len(spans) == 1


class TestNonTemporalSearch:
    def test_order_free_matching(self, log_graph):
        # reversed order pattern: C after B->C... structure B->C, A->B is
        # the same edge set; non-temporal search finds it regardless.
        pattern = NonTemporalPattern(("B", "C", "A"), ((0, 1), (2, 0)))
        engine = QueryEngine(log_graph)
        spans = engine.search_nontemporal(pattern, max_span=5)
        assert (0, 1) in spans

    def test_window_cap_respected(self, log_graph):
        pattern = NonTemporalPattern(("A", "B", "C"), ((0, 1), (1, 2)))
        engine = QueryEngine(log_graph)
        spans = engine.search_nontemporal(pattern, max_span=3)
        assert all(hi - lo <= 3 for lo, hi in spans)

    def test_empty_pattern_rejected(self, log_graph):
        with pytest.raises(QueryError):
            QueryEngine(log_graph).search_nontemporal(
                NonTemporalPattern((), ()), max_span=5
            )


class TestNodeSetSearch:
    def test_minimal_windows(self, log_graph):
        engine = QueryEngine(log_graph)
        query = NodeSetQuery(labels=("A", "C"), max_span=4)
        spans = engine.search_nodeset(query)
        assert (0, 1) in spans
        assert all(hi - lo <= 4 for lo, hi in spans)

    def test_span_override(self, log_graph):
        engine = QueryEngine(log_graph)
        query = NodeSetQuery(labels=("A", "C"), max_span=0)
        assert engine.search_nodeset(query, max_span=50)

    def test_missing_label_no_matches(self, log_graph):
        engine = QueryEngine(log_graph)
        query = NodeSetQuery(labels=("A", "ZZZ"), max_span=100)
        assert engine.search_nodeset(query) == []

    def test_empty_query_rejected(self, log_graph):
        with pytest.raises(QueryError):
            QueryEngine(log_graph).search_nodeset(NodeSetQuery(labels=(), max_span=5))


class TestHelpers:
    def test_label_activity(self, log_graph):
        engine = QueryEngine(log_graph)
        assert engine.label_activity("A") == [0, 10, 12]

    def test_count_in_interval(self, log_graph):
        engine = QueryEngine(log_graph)
        times = engine.label_activity("A")
        assert engine.count_in_interval(times, 0, 10) == 2


TRUTH = [
    GroundTruthInstance("ssh-login", 0, 10),
    GroundTruthInstance("scp-download", 20, 30),
    GroundTruthInstance("ssh-login", 40, 50),
]


class TestEvaluation:
    def test_perfect_query(self):
        pr = evaluate_spans("ssh-login", [(1, 5), (42, 49)], TRUTH)
        assert pr.precision == 1.0
        assert pr.recall == 1.0

    def test_match_in_other_behavior_is_false_positive(self):
        pr = evaluate_spans("ssh-login", [(21, 29)], TRUTH)
        assert pr.correct == 0
        assert pr.precision == 0.0

    def test_match_spanning_outside_is_false_positive(self):
        pr = evaluate_spans("ssh-login", [(5, 15)], TRUTH)
        assert pr.correct == 0

    def test_match_in_gap_is_false_positive(self):
        pr = evaluate_spans("ssh-login", [(12, 18)], TRUTH)
        assert pr.correct == 0

    def test_boundary_containment_inclusive(self):
        pr = evaluate_spans("ssh-login", [(0, 10)], TRUTH)
        assert pr.correct == 1

    def test_recall_counts_instances_once(self):
        pr = evaluate_spans("ssh-login", [(1, 2), (3, 4)], TRUTH)
        assert pr.discovered == 1
        assert pr.recall == pytest.approx(0.5)

    def test_no_matches_conventions(self):
        pr = evaluate_spans("ssh-login", [], TRUTH)
        assert pr.precision == 1.0  # vacuous
        assert pr.recall == 0.0

    def test_no_instances_recall_vacuous(self):
        pr = evaluate_spans("ftp-download", [], TRUTH)
        assert pr.recall == 1.0

    def test_as_row_formatting(self):
        pr = PrecisionRecall(
            "x", identified=2, correct=1, discovered=1, total_instances=2
        )
        row = pr.as_row()
        assert "50.0%" in row

    def test_pool_spans_dedupes(self):
        pooled = pool_spans([[(0, 1), (2, 3)], [(2, 3), (4, 5)]])
        assert pooled == [(0, 1), (2, 3), (4, 5)]
