"""Tests for the streaming serving layer.

The load-bearing suite here is the **equivalence class**: accumulated
streaming detections must be span-identical to the batch
``QueryEngine.search_temporal`` answers on the same recorded log — for
any batch split, at the eviction boundary (window exactly equal to the
query span), and under out-of-order batch arrival absorbed by the
window.
"""

import random

import pytest

from repro.core.errors import DatasetError, ServingError
from repro.core.graph_index import Signature
from repro.core.pattern import TemporalPattern
from repro.query.engine import QueryEngine
from repro.serving.registry import (
    BehaviorQuery,
    QueryRegistry,
    load_queries_jsonl,
    save_queries_jsonl,
)
from repro.serving.service import DetectionService
from repro.serving.streaming import StreamingGraph
from repro.syscall.collector import build_test_data, iter_event_batches
from repro.syscall.events import SyscallEvent

from conftest import random_embedded_pattern, random_temporal_graph


def graph_to_events(graph):
    """Replay a (frozen) temporal graph as a syscall event stream."""
    return [
        SyscallEvent(
            time=edge.time,
            syscall="op",
            src_key=f"n{edge.src}",
            src_label=graph.label(edge.src),
            dst_key=f"n{edge.dst}",
            dst_label=graph.label(edge.dst),
        )
        for edge in graph.edges
    ]


def event(time, src_key, src_label, dst_key, dst_label):
    return SyscallEvent(
        time=time,
        syscall="op",
        src_key=src_key,
        src_label=src_label,
        dst_key=dst_key,
        dst_label=dst_label,
    )


def streamed_spans(service, queries, batches):
    """Accumulated per-query span sets after replaying ``batches``."""
    spans = {query.name: set() for query in queries}
    for batch in batches:
        for detection in service.ingest(batch):
            spans[detection.query].add(detection.span)
    return spans


def batch_spans(graph, queries):
    """The batch engine's per-query span sets over the frozen log."""
    engine = QueryEngine(graph)
    return {
        query.name: set(engine.search_temporal(query.pattern, query.max_span))
        for query in queries
    }


# ----------------------------------------------------------------------
# StreamingGraph unit behavior
# ----------------------------------------------------------------------
class TestStreamingGraph:
    def test_incremental_index_matches_frozen_rebuild(self):
        rng = random.Random(5)
        graph = random_temporal_graph(rng, n_nodes=8, n_edges=40)
        stream = StreamingGraph()
        stream.ingest(graph_to_events(graph))
        rebuilt = stream.as_temporal_graph()
        assert rebuilt.num_edges == graph.num_edges
        for (a, b), idxs in graph.label_pair_index().items():
            assert len(stream.edges_between(a, b)) == len(idxs)

    def test_online_signature_tracks_live_window(self):
        stream = StreamingGraph(window_span=5)
        stream.ingest([event(0, "p1", "proc", "f1", "file")])
        stream.ingest([event(3, "p1", "proc", "s1", "sock")])
        sig = stream.signature()
        assert sig.node_labels == {"proc": 1, "file": 1, "sock": 1}
        # t=20 slides both earlier edges out of the window
        stream.ingest([event(20, "p2", "proc", "f2", "file")])
        sig = stream.signature()
        assert sig.node_labels == {"proc": 1, "file": 1}
        assert sig.edge_labels == {("proc", "file"): 1}
        assert stream.num_edges == 1
        assert stream.stats.evicted == 2

    def test_eviction_reclaims_nodes_and_reuses_keys(self):
        stream = StreamingGraph(window_span=2)
        stream.ingest([event(0, "p1", "proc", "f1", "file")])
        stream.ingest([event(10, "p2", "proc", "f2", "file")])
        assert stream.num_nodes == 2
        # the same entity key returns as a *new* node id after eviction
        stream.ingest([event(12, "p1", "proc", "f1", "file")])
        assert stream.num_nodes == 4

    def test_ids_stay_stable_across_eviction(self):
        stream = StreamingGraph(window_span=4)
        stream.ingest([event(t, f"p{t}", "proc", f"f{t}", "file") for t in range(10)])
        before = list(stream.edges_between("proc", "file"))
        stream.ingest([event(20, "px", "proc", "fx", "file")])
        # surviving global ids unchanged, new id appended
        after = list(stream.edges_between("proc", "file"))
        assert after[-1] == before[-1] + 1 or after == [before[-1] + 1]
        assert stream.edges[after[-1]].time == 20

    def test_edges_iterate_live_after_compaction(self):
        stream = StreamingGraph(window_span=4)
        stream.ingest([event(t, f"p{t}", "proc", f"f{t}", "file") for t in range(10)])
        stream.ingest([event(20, "px", "proc", "fx", "file")])  # evicts + compacts
        assert [edge.time for edge in stream.edges] == [20]

    def test_out_of_order_within_batch_is_sorted(self):
        stream = StreamingGraph()
        stream.ingest(
            [
                event(5, "a", "A", "b", "B"),
                event(1, "c", "C", "d", "D"),
                event(3, "e", "E", "f", "F"),
            ]
        )
        times = [stream.edges[i].time for i in stream.edges_between("A", "B")]
        assert times == [5]
        assert stream.window_bounds() == (1, 5)

    def test_out_of_order_across_batches_reinserts_tail(self):
        stream = StreamingGraph()
        stream.ingest([event(1, "a", "A", "b", "B"), event(9, "c", "C", "d", "D")])
        delta = stream.ingest([event(4, "e", "E", "f", "F")])
        assert delta.reinserted == 1  # the t=9 edge was unsealed and re-sealed
        assert delta.appended == 2
        # id order equals time order again
        pairs = [("A", "B"), ("E", "F"), ("C", "D")]
        ids = [stream.edges_between(p, q)[0] for p, q in pairs]
        assert ids == sorted(ids)

    def test_late_event_beyond_window_dropped(self):
        stream = StreamingGraph(window_span=3)
        stream.ingest([event(100, "a", "A", "b", "B")])
        delta = stream.ingest([event(10, "c", "C", "d", "D")])
        assert delta.late == 1 and delta.empty
        assert stream.stats.late_dropped == 1

    def test_timestamp_collision_rejected(self):
        stream = StreamingGraph()
        stream.ingest([event(5, "a", "A", "b", "B")])
        with pytest.raises(ServingError, match="collision"):
            stream.ingest([event(5, "c", "C", "d", "D")])

    def test_within_batch_collision_rejected(self):
        stream = StreamingGraph()
        with pytest.raises(ServingError, match="within the batch"):
            stream.ingest(
                [event(5, "a", "A", "b", "B"), event(5, "c", "C", "d", "D")]
            )

    def test_rejected_ingest_leaves_window_untouched(self):
        """Validation happens before mutation: a failed batch is a no-op."""
        stream = StreamingGraph()
        stream.ingest([event(1, "a", "A", "b", "B"), event(9, "c", "C", "d", "D")])
        with pytest.raises(ServingError):
            # t=4 would trigger tail reinsertion; t=9 collides with a
            # sealed edge — nothing may change
            stream.ingest([event(4, "e", "E", "f", "F"), event(9, "g", "G", "h", "H")])
        assert stream.num_edges == 2
        assert stream.window_bounds() == (1, 9)
        assert [stream.edges[i].time for i in stream.edges_between("C", "D")] == [9]

    def test_negative_time_rejected(self):
        with pytest.raises(ServingError):
            StreamingGraph().ingest([event(-1, "a", "A", "b", "B")])

    def test_empty_batch_is_noop(self):
        stream = StreamingGraph()
        delta = stream.ingest([])
        assert delta.empty and stream.num_edges == 0


# ----------------------------------------------------------------------
# QueryRegistry prefilter
# ----------------------------------------------------------------------
class TestQueryRegistry:
    PATTERN_AB = TemporalPattern(("A", "B"), ((0, 1),))
    PATTERN_ABC = TemporalPattern(("A", "B", "C"), ((0, 1), (1, 2)))
    PATTERN_XY = TemporalPattern(("X", "Y"), ((0, 1),))

    def window(self, node_labels, edge_labels):
        return Signature(node_labels, edge_labels)

    def test_one_pass_answers_all_impossible_queries(self):
        registry = QueryRegistry()
        registry.register(BehaviorQuery("ab", self.PATTERN_AB, 10))
        registry.register(BehaviorQuery("abc", self.PATTERN_ABC, 10))
        registry.register(BehaviorQuery("xy", self.PATTERN_XY, 10))
        window = self.window(
            {"A": 1, "B": 1, "C": 1},
            {("A", "B"): 2, ("B", "C"): 1},
        )
        survivors = registry.survivors(window)
        assert [query.name for _qid, query in survivors] == ["ab", "abc"]
        assert registry.stats.queries_pruned == 1

    def test_shared_prefix_checked_once(self):
        registry = QueryRegistry()
        # both queries require A/B nodes and an A->B edge — a shared
        # requirement prefix in the trie
        registry.register(BehaviorQuery("ab", self.PATTERN_AB, 10))
        registry.register(
            BehaviorQuery("ab2", TemporalPattern(("A", "B"), ((0, 1), (0, 1))), 10)
        )
        empty = self.window({}, {})
        registry.survivors(empty)
        # the first requirement ("A" node) fails once and prunes both
        assert registry.stats.requirement_checks == 1
        assert registry.stats.queries_pruned == 2

    def test_multiedge_counts_respected(self):
        registry = QueryRegistry()
        double = TemporalPattern(("A", "B"), ((0, 1), (0, 1)))
        registry.register(BehaviorQuery("double", double, 10))
        single_window = self.window({"A": 1, "B": 1}, {("A", "B"): 1})
        assert registry.survivors(single_window) == []
        double_window = self.window({"A": 1, "B": 1}, {("A", "B"): 2})
        assert len(registry.survivors(double_window)) == 1

    def test_max_span_and_lookup(self):
        registry = QueryRegistry()
        qid = registry.register(BehaviorQuery("ab", self.PATTERN_AB, 7))
        registry.register(BehaviorQuery("abc", self.PATTERN_ABC, 31))
        assert registry.max_span == 31
        assert registry.get(qid).name == "ab"
        assert len(registry) == 2

    def test_negative_span_rejected(self):
        with pytest.raises(ServingError):
            BehaviorQuery("bad", self.PATTERN_AB, -1)

    def test_queries_jsonl_roundtrip(self, tmp_path):
        queries = [
            BehaviorQuery("ab", self.PATTERN_AB, 10),
            BehaviorQuery("abc", self.PATTERN_ABC, 20),
        ]
        path = tmp_path / "queries.jsonl"
        assert save_queries_jsonl(queries, path) == 2
        assert load_queries_jsonl(path) == queries

    def test_malformed_query_payload_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "x", "labels": ["A"], "edges": [], "max_span": 1}\n')
        with pytest.raises(DatasetError):
            load_queries_jsonl(path)


# ----------------------------------------------------------------------
# streaming vs batch equivalence
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def recorded_log():
    """A small busy-host log with behavior instances and its query slate."""
    data = build_test_data(instances=6)
    rng = random.Random(17)
    queries = []
    while len(queries) < 4:
        pattern = random_embedded_pattern(rng, data.graph, max_edges=3)
        queries.append(BehaviorQuery(f"q{len(queries)}", pattern, 40))
    # a query whose labels cannot occur: prefilter must answer it empty
    queries.append(
        BehaviorQuery(
            "impossible", TemporalPattern(("zz", "yy"), ((0, 1),)), 40
        )
    )
    return data, queries


class TestStreamingBatchEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 7, 50, 10_000])
    def test_span_identical_for_any_batch_split(self, recorded_log, batch_size):
        data, queries = recorded_log
        reference = batch_spans(data.graph, queries)
        service = DetectionService()
        for query in queries:
            service.register(query)
        spans = streamed_spans(
            service, queries, iter_event_batches(data.events, batch_size)
        )
        assert spans == reference

    def test_eviction_boundary_window_equals_span(self, recorded_log):
        """The auto window (exactly the widest query span) loses nothing."""
        data, queries = recorded_log
        service = DetectionService()
        for query in queries:
            service.register(query)
        assert service.window_span == max(q.max_span for q in queries)
        spans = streamed_spans(
            service, queries, iter_event_batches(data.events, 25)
        )
        assert spans == batch_spans(data.graph, queries)
        assert service.graph.stats.evicted > 0  # the window actually slid

    def test_out_of_order_batches_absorbed_by_window(self, recorded_log):
        """Adjacent batch swaps (bounded lateness) keep span identity."""
        data, queries = recorded_log
        batches = list(iter_event_batches(data.events, 30))
        for i in range(0, len(batches) - 1, 2):
            batches[i], batches[i + 1] = batches[i + 1], batches[i]
        # widen the window beyond the displacement the swaps introduce
        service = DetectionService(window_span=40 + 4 * 30)
        for query in queries:
            service.register(query)
        spans = streamed_spans(service, queries, batches)
        assert spans == batch_spans(data.graph, queries)
        assert service.graph.stats.reinserted > 0

    def test_prefilter_off_identical(self, recorded_log):
        data, queries = recorded_log
        on = DetectionService(use_prefilter=True)
        off = DetectionService(use_prefilter=False)
        for query in queries:
            on.register(query)
            off.register(query)
        batches = list(iter_event_batches(data.events, 40))
        assert streamed_spans(on, queries, batches) == streamed_spans(
            off, queries, list(iter_event_batches(data.events, 40))
        )
        assert on.stats.queries_prefiltered > 0
        assert off.stats.queries_prefiltered == 0

    def test_random_logs_property(self):
        """Random streams + embedded patterns: equivalence at random splits."""
        rng = random.Random(99)
        for _round in range(5):
            graph = random_temporal_graph(rng, n_nodes=7, n_edges=36)
            queries = [
                BehaviorQuery(
                    f"r{k}",
                    random_embedded_pattern(rng, graph, max_edges=3),
                    rng.randrange(8, 30),
                )
                for k in range(3)
            ]
            service = DetectionService()
            for query in queries:
                service.register(query)
            events = graph_to_events(graph)
            batch_size = rng.randrange(1, len(events) + 1)
            spans = streamed_spans(
                service, queries, iter_event_batches(events, batch_size)
            )
            assert spans == batch_spans(graph, queries)


# ----------------------------------------------------------------------
# DetectionService behavior
# ----------------------------------------------------------------------
class TestDetectionService:
    PATTERN = TemporalPattern(("proc", "file"), ((0, 1),))

    def test_detections_dedupe_and_carry_batch_index(self):
        service = DetectionService()
        service.register(name="pf", pattern=self.PATTERN, max_span=5)
        first = service.ingest([event(0, "p", "proc", "f", "file")])
        assert [d.span for d in first] == [(0, 0)]
        assert first[0].batch == 0 and first[0].query == "pf"
        # same span cannot be re-reported
        again = service.ingest([event(1, "p2", "proc", "f2", "file")])
        assert [d.span for d in again] == [(1, 1)]

    def test_incremental_delta_only(self):
        """A second batch only reports matches ending in its own delta."""
        service = DetectionService()
        service.register(
            name="chain",
            pattern=TemporalPattern(("proc", "file", "sock"), ((0, 1), (1, 2))),
            max_span=10,
        )
        assert service.ingest([event(0, "p", "proc", "f", "file")]) == []
        detections = service.ingest([event(3, "f", "file", "s", "sock")])
        assert [d.span for d in detections] == [(0, 3)]

    def test_window_narrower_than_query_rejected(self):
        service = DetectionService(window_span=3)
        with pytest.raises(ServingError, match="wider than"):
            service.register(name="pf", pattern=self.PATTERN, max_span=5)

    def test_register_needs_full_spec(self):
        with pytest.raises(ServingError):
            DetectionService().register(name="pf")

    def test_stats_track_throughput(self):
        service = DetectionService()
        service.register(name="pf", pattern=self.PATTERN, max_span=5)
        for _i, _d in service.replay(
            [event(t, f"p{t}", "proc", f"f{t}", "file") for t in range(10)], 4
        ):
            pass
        assert service.stats.batches == 3
        assert service.stats.events == 10
        assert service.stats.detections == 10
        assert service.stats.events_per_second > 0
        assert service.stats.latency.count == 3
        assert len(service.stats.latency.samples) == 3

    def test_batch_size_must_be_positive(self):
        with pytest.raises(DatasetError):
            list(iter_event_batches([], 0))
