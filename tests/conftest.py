"""Shared fixtures and graph-building helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.graph import TemporalGraph
from repro.core.pattern import TemporalPattern


def build_graph(edges, labels=None, name="g"):
    """Build a frozen graph from ``(src, dst, time)`` triples.

    ``labels`` maps node id -> label; defaults to ``"L{id}"``.
    Node ids are taken from the edge list.
    """
    n = max(max(u, v) for u, v, _t in edges) + 1
    graph = TemporalGraph(name=name)
    for i in range(n):
        label = labels[i] if labels else f"L{i}"
        graph.add_node(label)
    for u, v, t in edges:
        graph.add_edge(u, v, t)
    return graph.freeze()


def random_temporal_graph(rng: random.Random, n_nodes=6, n_edges=10, alphabet="ABC"):
    """A random totally-ordered temporal graph for property tests."""
    graph = TemporalGraph(name="rand")
    for _ in range(n_nodes):
        graph.add_node(rng.choice(alphabet))
    for t in range(n_edges):
        u = rng.randrange(n_nodes)
        v = rng.randrange(n_nodes)
        while v == u:
            v = rng.randrange(n_nodes)
        graph.add_edge(u, v, t)
    return graph.freeze()


def random_embedded_pattern(rng: random.Random, graph: TemporalGraph, max_edges=4):
    """Extract a random T-connected sub-pattern that surely embeds in ``graph``.

    Picks a random increasing, connected edge-index sequence and
    normalizes it into a pattern.
    """
    edges = graph.edges
    start = rng.randrange(len(edges))
    chosen = [start]
    nodes = set(edges[start].endpoints())
    for idx in range(start + 1, len(edges)):
        if len(chosen) >= max_edges:
            break
        edge = edges[idx]
        touches = edge.src in nodes or edge.dst in nodes
        if touches and rng.random() < 0.6:
            chosen.append(idx)
            nodes.update(edge.endpoints())
    sub = TemporalGraph(name="sub")
    remap = {}
    for pos, idx in enumerate(chosen):
        edge = edges[idx]
        for node in edge.endpoints():
            if node not in remap:
                remap[node] = sub.add_node(graph.label(node))
        sub.add_edge(remap[edge.src], remap[edge.dst], pos)
    return TemporalPattern.from_graph(sub.freeze())


def make_behavior_model(behavior="chain-abc", labels=("A", "B", "C"), span_cap=10):
    """A tiny hand-built :class:`BehaviorModel`: one path query over ``labels``.

    Mining-free model construction for the registry / HTTP / hot-reload
    tests: the single query is the label path ``labels[0] -> labels[1]
    -> ...`` capped at ``span_cap``.  Bundles save/load deterministically
    like mined ones, so varying ``behavior``/``labels``/``span_cap``
    yields registry versions with distinct content digests.
    """
    from repro.api.model import BehaviorModel, BehaviorRecord
    from repro.core.miner import MinedPattern, MinerConfig

    pattern = TemporalPattern(
        tuple(labels), tuple((i, i + 1) for i in range(len(labels) - 1))
    )
    record = BehaviorRecord(
        behavior=behavior,
        span_cap=span_cap,
        patterns=(
            MinedPattern(pattern=pattern, score=1.0, pos_freq=1.0, neg_freq=0.0),
        ),
        co_optimal=1,
        patterns_explored=1,
        subgraph_tests=0,
        index_prefilter_skips=0,
        elapsed_seconds=0.0,
        timed_out=False,
    )
    return BehaviorModel(
        config=MinerConfig(),
        records={behavior: record},
        labels=tuple(dict.fromkeys(labels)),
        provenance={"seed": None, "handmade": True},
    )


@pytest.fixture
def figure3_graph():
    """The paper's Figure 3 G1: multi-edges and T-connected structure."""
    return build_graph(
        [(0, 1, 1), (0, 1, 2), (1, 2, 3), (0, 2, 4), (2, 3, 5), (0, 3, 6)],
        labels=["A", "B", "C", "E"],
        name="G1",
    )


@pytest.fixture
def figure3_subpattern():
    """The paper's Figure 3 G2 (as a pattern): subgraph of G1."""
    return TemporalPattern(("A", "C", "E"), ((0, 1), (1, 2), (0, 2)))
