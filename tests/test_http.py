"""Tests for the HTTP serving tier: endpoints, registry flow, canary.

Each test binds a real ``ThreadingHTTPServer`` on an ephemeral port and
speaks the ``/v1/*`` JSON protocol over actual sockets.  The
load-bearing flow: publish -> canary (identical repack passes, a
perturbed model is flagged divergent) -> promote hot-reloads the live
deployment in place.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.api import ModelRegistry, Workspace, serve_http
from repro.core.errors import HttpError
from repro.datasets.io import event_to_dict
from repro.serving.http import DetectionServer
from repro.syscall.events import SyscallEvent

from conftest import make_behavior_model


def event(time, src_key, src_label, dst_key, dst_label):
    return SyscallEvent(
        time=time,
        syscall="op",
        src_key=src_key,
        src_label=src_label,
        dst_key=dst_key,
        dst_label=dst_label,
    )


def chain_events(base, i):
    """One instance of the conftest model's A->B->C chain at ``base``."""
    return [
        event(base, f"a{i}", "A", f"b{i}", "B"),
        event(base + 1, f"b{i}", "B", f"c{i}", "C"),
    ]


def call(server, method, path, payload=None):
    """One JSON request against a running server; returns (status, body)."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        server.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def post_events(server, events):
    return call(
        server, "POST", "/v1/ingest", {"events": [event_to_dict(e) for e in events]}
    )


@pytest.fixture
def model():
    return make_behavior_model()


@pytest.fixture
def server(model):
    handle = serve_http(Workspace().serve(model))
    with handle:
        yield handle


@pytest.fixture
def registry_server(model, tmp_path):
    registry = ModelRegistry(tmp_path / "registry")
    version = registry.publish(model).version
    handle = Workspace().serve_http(model, registry=registry, version=version)
    with handle:
        yield handle, registry


class TestPlainEndpoints:
    def test_healthz(self, server):
        status, body = call(server, "GET", "/v1/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["registry"] is None
        assert body["reloads"] == 0

    def test_ingest_reports_detections(self, server):
        status, body = post_events(server, chain_events(0, 0))
        assert status == 200
        assert body["ingested"] == 2
        assert body["batch"] == 0
        assert [(d["query"], d["start"], d["end"]) for d in body["detections"]] == [
            ("chain-abc#1", 0, 1)
        ]

    def test_detections_ring_buffer_and_limit(self, server):
        post_events(server, chain_events(0, 0))
        post_events(server, chain_events(5, 1))
        status, body = call(server, "GET", "/v1/detections")
        assert status == 200
        assert [d["start"] for d in body["detections"]] == [0, 5]
        _, limited = call(server, "GET", "/v1/detections?limit=1")
        assert [d["start"] for d in limited["detections"]] == [5]
        assert call(server, "GET", "/v1/detections?limit=-1")[0] == 400
        assert call(server, "GET", "/v1/detections?limit=x")[0] == 400

    def test_stats_speak_the_shared_schema(self, server):
        from repro.api import stats_from_dict

        post_events(server, chain_events(0, 0))
        status, body = call(server, "GET", "/v1/stats")
        assert status == 200
        view = stats_from_dict(body)
        assert view.kind == "service"
        assert view.events == 2
        assert view.detections == 1

    def test_unknown_endpoint_404(self, server):
        assert call(server, "GET", "/v1/nothing")[0] == 404
        assert call(server, "POST", "/v1/nothing", {})[0] == 404

    def test_malformed_bodies_400(self, server):
        assert call(server, "POST", "/v1/ingest", {"events": "nope"})[0] == 400
        assert call(server, "POST", "/v1/ingest", {"events": [{"x": 1}]})[0] == 400
        status, body = call(server, "POST", "/v1/ingest", [1, 2])
        assert status == 400
        assert "JSON object" in body["error"]

    def test_models_without_registry_409(self, server):
        status, body = call(server, "GET", "/v1/models")
        assert status == 409
        assert "no model registry" in body["error"]

    def test_canary_status_without_canary_404(self, server):
        assert call(server, "GET", "/v1/canary")[0] == 404


class TestRegistryEndpoints:
    def test_models_lists_registry(self, registry_server):
        server, registry = registry_server
        status, body = call(server, "GET", "/v1/models")
        assert status == 200
        assert body["active"] == 1
        assert body["serving"] == 1
        assert [e["version"] for e in body["entries"]] == [1]

    def test_publish_over_http(self, registry_server, model, tmp_path):
        server, registry = registry_server
        bundle = make_behavior_model(span_cap=20).save(tmp_path / "wider.tgm")
        status, body = call(server, "POST", "/v1/models", {"path": str(bundle)})
        assert status == 200
        assert body["published"]["version"] == 2
        assert body["published"]["state"] == "candidate"
        assert registry.latest_version == 2

    def test_publish_bad_path_400(self, registry_server):
        server, _registry = registry_server
        status, body = call(server, "POST", "/v1/models", {"path": "/nope/x.tgm"})
        assert status == 400
        assert "no such model bundle" in body["error"]
        assert call(server, "POST", "/v1/models", {})[0] == 400

    def test_promote_without_canary_409(self, registry_server, model, tmp_path):
        server, registry = registry_server
        registry.publish(make_behavior_model(span_cap=20))
        status, body = call(server, "POST", "/v1/models/2/promote", {})
        assert status == 409
        assert "no canary has run" in body["error"]

    def test_promote_unknown_version_force_409(self, registry_server):
        server, _registry = registry_server
        status, body = call(server, "POST", "/v1/models/9/promote", {"force": True})
        assert status == 409
        assert "no version 9" in body["error"]


class TestCanaryPromotion:
    def repack(self, model):
        """Same queries, different bytes: a repack with provenance noise."""
        from repro.api.model import BehaviorModel

        return BehaviorModel(
            config=model.config,
            records=model.records,
            labels=model.labels,
            provenance={**model.provenance, "note": "repack"},
        )

    def test_identical_repack_passes_canary_and_promotes(self, registry_server):
        server, registry = registry_server
        post_events(server, chain_events(0, 0))
        version = registry.publish(self.repack(make_behavior_model())).version
        assert version == 2

        status, body = call(
            server, "POST", f"/v1/models/{version}/canary", {"batches": 2}
        )
        assert status == 200
        assert body["verdict"] == "running"
        post_events(server, chain_events(10, 1))
        post_events(server, chain_events(20, 2))
        status, body = call(server, "GET", "/v1/canary")
        assert body["done"] is True
        assert body["verdict"] == "clean"
        assert body["divergent_batches"] == 0

        status, body = call(server, "POST", f"/v1/models/{version}/promote", {})
        assert status == 200
        assert body["serving"] == version
        assert body["forced"] is False
        assert registry.active_version == version
        assert registry.entry(1).state == "retired"

        _, health = call(server, "GET", "/v1/healthz")
        assert health["serving_version"] == version
        assert health["reloads"] == 1
        # canary state is consumed by promotion
        assert call(server, "GET", "/v1/canary")[0] == 404
        # the deployment keeps detecting after the reload
        _, out = post_events(server, chain_events(30, 3))
        assert [d["start"] for d in out["detections"]] == [30]

    def test_perturbed_model_is_flagged_and_refused(self, registry_server):
        server, registry = registry_server
        post_events(server, chain_events(0, 0))
        # same pattern, different behavior name: every detection batch
        # diverges because the two models report different query names
        version = registry.publish(make_behavior_model(behavior="chain-alt")).version

        status, body = call(
            server, "POST", f"/v1/models/{version}/canary", {"batches": 1}
        )
        assert status == 200
        post_events(server, chain_events(10, 1))
        status, body = call(server, "GET", "/v1/canary")
        assert body["done"] is True
        assert body["verdict"] == "divergent"
        assert body["divergent_batches"] == 1
        assert [d["query"] for d in body["missing"]] == ["chain-abc#1"]
        assert [d["query"] for d in body["extra"]] == ["chain-alt#1"]

        status, body = call(server, "POST", f"/v1/models/{version}/promote", {})
        assert status == 409
        assert "diverged" in body["error"]
        assert registry.active_version == 1

        status, body = call(
            server, "POST", f"/v1/models/{version}/promote", {"force": True}
        )
        assert status == 200
        assert body["forced"] is True
        assert registry.active_version == version

    def test_incomplete_canary_refused(self, registry_server):
        server, registry = registry_server
        version = registry.publish(self.repack(make_behavior_model())).version
        call(server, "POST", f"/v1/models/{version}/canary", {"batches": 5})
        post_events(server, chain_events(0, 0))
        status, body = call(server, "POST", f"/v1/models/{version}/promote", {})
        assert status == 409
        assert "still running" in body["error"]

    def test_canary_bad_batches_400(self, registry_server):
        server, _registry = registry_server
        assert call(server, "POST", "/v1/models/1/canary", {"batches": 0})[0] == 400
        assert call(server, "POST", "/v1/models/1/canary", {"batches": "x"})[0] == 400

    def test_canary_unknown_version_409(self, registry_server):
        server, _registry = registry_server
        status, body = call(server, "POST", "/v1/models/9/canary", {})
        assert status == 409
        assert "no version 9" in body["error"]


class TestAppObject:
    def test_canary_requires_single_service(self, model, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(model)
        handle = Workspace().serve(model, shards=2)
        app = DetectionServer(handle, registry=registry)
        with pytest.raises(HttpError) as excinfo:
            app.handle_canary_start(1, {})
        assert excinfo.value.status == 409
        assert "DetectionService" in str(excinfo.value)
        handle.close()

    def test_close_without_serving_does_not_block(self, model):
        handle = serve_http(Workspace().serve(model))
        handle.close()  # never started; must not deadlock on shutdown()
