"""Tests for the Ntemp (non-temporal miner) and NodeSet baselines."""

import pytest

from repro.baselines.gspan import (
    NonTemporalMiner,
    NonTemporalMinerConfig,
    NonTemporalPattern,
    collapse_multi_edges,
    enumerate_nontemporal_matches,
)
from repro.baselines.nodeset import label_frequencies, mine_nodeset_query
from repro.baselines.ntemp import mine_ntemp_queries
from repro.core.errors import MiningError
from repro.core.ranking import InterestModel

from conftest import build_graph
from test_miner import planted_dataset


class TestCollapse:
    def test_multi_edges_collapse(self):
        g = build_graph([(0, 1, 0), (0, 1, 1), (1, 2, 2)], labels=["A", "B", "C"])
        simple = collapse_multi_edges(g)
        assert simple.edges == ((0, 1), (1, 2))
        assert simple.num_nodes == 3

    def test_self_loops_dropped(self):
        g = build_graph([(0, 0, 0), (0, 1, 1)], labels=["A", "B"])
        simple = collapse_multi_edges(g)
        assert simple.edges == ((0, 1),)


class TestNonTemporalMiner:
    def test_finds_planted_structure(self):
        pos, neg = planted_dataset()
        result = NonTemporalMiner(
            NonTemporalMinerConfig(max_edges=2, min_pos_support=0.9)
        ).mine(pos, neg)
        # The planted P->F->S chain must be among the co-optimal patterns;
        # node numbering depends on discovery order, so compare the
        # label-pair multiset (isomorphism-invariant for this shape).
        structures = {
            tuple(
                sorted(
                    (m.pattern.label(u), m.pattern.label(v)) for u, v in m.pattern.edges
                )
            )
            for m in result.best
        }
        assert (("F", "S"), ("P", "F")) in structures

    def test_order_insensitive(self):
        # Positives contain A->B then C->B in *either* order: the
        # non-temporal miner sees one pattern where TGMiner sees two.
        g1 = build_graph([(0, 1, 0), (2, 1, 1)], labels=["A", "B", "C"])
        g2 = build_graph([(2, 1, 0), (0, 1, 1)], labels=["A", "B", "C"])
        result = NonTemporalMiner(
            NonTemporalMinerConfig(max_edges=2, min_pos_support=1.0)
        ).mine([g1, g2], [])
        best_sizes = {m.pattern.num_edges for m in result.best}
        assert 2 in best_sizes  # the full 2-edge structure has support 1.0

    def test_footprint_dedup_no_double_count(self):
        g = build_graph([(0, 1, 0), (1, 2, 1)], labels=["A", "B", "C"])
        result = NonTemporalMiner(
            NonTemporalMinerConfig(max_edges=2, min_pos_support=1.0)
        ).mine([g], [])
        # patterns: A->B, B->C, A->B->C == 3 (the 2-edge pattern reachable
        # from both seeds is explored once)
        assert result.patterns_explored == 3

    def test_empty_positive_rejected(self):
        with pytest.raises(MiningError):
            NonTemporalMiner().mine([], [])

    def test_invalid_config_rejected(self):
        with pytest.raises(MiningError):
            NonTemporalMiner(NonTemporalMinerConfig(max_edges=0))

    def test_describe(self):
        p = NonTemporalPattern(("A", "B"), ((0, 1),))
        assert "A" in p.describe()


class TestEnumerateNonTemporalMatches:
    def test_basic_injective_matching(self):
        pattern = NonTemporalPattern(("A", "B", "B"), ((0, 1), (0, 2)))
        labels = ["A", "B", "B"]
        adjacency = {(0, 1), (0, 2)}
        by_label = {"A": [0], "B": [1, 2]}
        matches = list(
            enumerate_nontemporal_matches(pattern, labels, adjacency, by_label)
        )
        assert sorted(matches) == [(0, 1, 2), (0, 2, 1)]

    def test_limit(self):
        pattern = NonTemporalPattern(("A", "B"), ((0, 1),))
        labels = ["A", "B", "B"]
        adjacency = {(0, 1), (0, 2)}
        by_label = {"A": [0], "B": [1, 2]}
        matches = list(
            enumerate_nontemporal_matches(pattern, labels, adjacency, by_label, limit=1)
        )
        assert len(matches) == 1


class TestNodeSet:
    def test_label_frequencies(self):
        graphs = [
            build_graph([(0, 1, 0)], labels=["X", "Y"]),
            build_graph([(0, 1, 0)], labels=["X", "Z"]),
        ]
        freqs = label_frequencies(graphs)
        assert freqs["X"] == 1.0
        assert freqs["Y"] == 0.5

    def test_top_k_discriminative_labels(self):
        pos = [build_graph([(0, 1, 0), (1, 2, 1)], labels=["S", "T", "C"])] * 4
        neg = [build_graph([(0, 1, 0)], labels=["C", "C"])] * 4
        query = mine_nodeset_query(pos, neg, k=2)
        assert set(query.labels) == {"S", "T"}
        assert query.size == 2

    def test_max_span_is_longest_lifetime(self):
        pos = [
            build_graph([(0, 1, 0), (1, 2, 9)], labels=["S", "T", "U"]),
            build_graph([(0, 1, 0), (1, 2, 3)], labels=["S", "T", "U"]),
        ]
        query = mine_nodeset_query(pos, [], k=2)
        assert query.max_span == 9

    def test_k_capped_by_vocabulary(self):
        pos = [build_graph([(0, 1, 0)], labels=["S", "T"])]
        query = mine_nodeset_query(pos, [], k=10)
        assert query.size == 2

    def test_invalid_inputs(self):
        with pytest.raises(MiningError):
            mine_nodeset_query([], [], k=3)
        with pytest.raises(MiningError):
            mine_nodeset_query([build_graph([(0, 1, 0)])], [], k=0)

    def test_describe(self):
        pos = [build_graph([(0, 1, 0)], labels=["S", "T"])]
        query = mine_nodeset_query(pos, [], k=2)
        assert "span" in query.describe()


class TestNtempPipeline:
    def test_queries_ranked_and_capped(self):
        pos, neg = planted_dataset()
        model = InterestModel.fit(pos + neg)
        queries = mine_ntemp_queries(
            pos, neg, interest=model, max_edges=2, top_k=3, min_pos_support=0.9
        )
        assert 1 <= len(queries) <= 3
        assert all(q.max_span > 0 for q in queries)

    def test_deterministic(self):
        pos, neg = planted_dataset()
        model = InterestModel.fit(pos + neg)
        a = mine_ntemp_queries(pos, neg, interest=model, max_edges=2, top_k=3)
        b = mine_ntemp_queries(pos, neg, interest=model, max_edges=2, top_k=3)
        assert [q.pattern.edges for q in a] == [q.pattern.edges for q in b]
