"""White-box tests of the miner's pruning machinery.

These pin down the *conditions* of Lemma 4 / Proposition 2 at the unit
level: when a pruning lookup may fire, what it records, and that the
residual-equivalence mode only changes cost, never results.
"""

import random

from repro.core.graph import TemporalGraph
from repro.core.miner import MinerConfig, TGMiner

from conftest import build_graph, random_temporal_graph


def chain_graph(labels, noise_labels=(), t0=0):
    """A simple labeled chain with optional trailing noise edges."""
    g = TemporalGraph()
    ids = [g.add_node(l) for l in labels]
    t = t0
    for a, b in zip(ids, ids[1:]):
        g.add_edge(a, b, t)
        t += 1
    for l in noise_labels:
        n = g.add_node(l)
        g.add_edge(ids[-1], n, t)
        t += 1
    return g.freeze()


class TestSubgraphPruningConditions:
    def test_pruning_never_changes_scores_across_modes(self):
        rng = random.Random(5)
        pos = [random_temporal_graph(rng, 5, 8, "ABC") for _ in range(4)]
        neg = [random_temporal_graph(rng, 5, 8, "ABC") for _ in range(4)]
        outcomes = set()
        for sub in (False, True):
            for sup in (False, True):
                result = TGMiner(
                    MinerConfig(
                        max_edges=3,
                        min_pos_support=0.5,
                        subgraph_pruning=sub,
                        supergraph_pruning=sup,
                        max_best_patterns=100_000,
                    )
                ).mine(pos, neg)
                outcomes.add(
                    (
                        round(result.best_score, 9),
                        frozenset(m.pattern.key() for m in result.best),
                    )
                )
        assert len(outcomes) == 1

    def test_subgraph_pruning_counter_fires_on_contaminated_branches(self):
        # Positives embed a clean chain; negatives share a prefix so the
        # prefix branches are contaminated (score < F*), creating real
        # subgraph-pruning opportunities among the sibling branches.
        pos = [
            chain_graph(("A", "B", "C", "D"), noise_labels=("X", "Y"))
            for _ in range(6)
        ]
        neg = [chain_graph(("A", "B", "X")) for _ in range(6)]
        result = TGMiner(MinerConfig(max_edges=4, min_pos_support=0.5)).mine(pos, neg)
        assert result.stats.patterns_explored > 0
        # the counters are consistent with the processed-pattern count
        total_triggers = (
            result.stats.subgraph_pruning_triggers
            + result.stats.supergraph_pruning_triggers
        )
        assert total_triggers <= result.stats.patterns_explored

    def test_residual_tests_counted(self):
        pos = [chain_graph(("A", "B", "C")) for _ in range(4)]
        neg = [chain_graph(("B", "C", "A")) for _ in range(4)]
        result = TGMiner(MinerConfig(max_edges=3, min_pos_support=0.5)).mine(pos, neg)
        # residual equivalence tests only happen when candidate entries
        # exist; the counter must never be negative and is bounded by
        # (patterns * history size), trivially sane here:
        assert result.stats.residual_equivalence_tests >= 0

    def test_history_isolated_between_runs(self):
        pos = [chain_graph(("A", "B", "C")) for _ in range(3)]
        miner = TGMiner(MinerConfig(max_edges=2, min_pos_support=0.5))
        first = miner.mine(pos, [])
        second = miner.mine(pos, [])
        assert first.best_score == second.best_score
        assert first.stats.patterns_explored == second.stats.patterns_explored


class TestUpperBoundPruning:
    def test_upper_bound_prunes_low_support_branches(self):
        # One perfect pattern (support 1.0) plus a rare structure: the
        # naive bound stops growth below the incumbent's score.
        pos = [chain_graph(("A", "B")) for _ in range(9)]
        pos.append(chain_graph(("Q", "R", "S")))
        result = TGMiner(MinerConfig(max_edges=3, min_pos_support=0.05)).mine(pos, [])
        assert result.stats.upper_bound_prunes > 0

    def test_disabling_upper_bound_explores_more(self):
        rng = random.Random(11)
        pos = [random_temporal_graph(rng, 5, 8, "AB") for _ in range(4)]
        neg = [random_temporal_graph(rng, 5, 8, "AB") for _ in range(4)]
        with_ub = TGMiner(
            MinerConfig(
                max_edges=3,
                min_pos_support=0.25,
                subgraph_pruning=False,
                supergraph_pruning=False,
            )
        ).mine(pos, neg)
        without_ub = TGMiner(
            MinerConfig(
                max_edges=3,
                min_pos_support=0.25,
                subgraph_pruning=False,
                supergraph_pruning=False,
                upper_bound_pruning=False,
            )
        ).mine(pos, neg)
        assert with_ub.stats.patterns_explored <= without_ub.stats.patterns_explored
        assert with_ub.best_score == without_ub.best_score


class TestMultiEdgePatterns:
    def test_multi_edge_core_mined(self):
        # positives repeat A->B twice in a row; the 2-multi-edge pattern
        # must be discovered and discriminate vs single-edge negatives
        g_pos = build_graph([(0, 1, 0), (0, 1, 1)], labels=["A", "B"])
        g_neg = build_graph([(0, 1, 0)], labels=["A", "B"])
        result = TGMiner(MinerConfig(max_edges=2, min_pos_support=1.0)).mine(
            [g_pos] * 4, [g_neg] * 4
        )
        best_keys = {m.pattern.key() for m in result.best}
        assert (("A", "B"), ((0, 1), (0, 1))) in best_keys

    def test_direction_matters(self):
        g_pos = build_graph([(0, 1, 0), (1, 0, 1)], labels=["A", "B"])
        g_neg = build_graph([(0, 1, 0), (0, 1, 1)], labels=["A", "B"])
        result = TGMiner(MinerConfig(max_edges=2, min_pos_support=1.0)).mine(
            [g_pos] * 4, [g_neg] * 4
        )
        best_keys = {m.pattern.key() for m in result.best}
        assert (("A", "B"), ((0, 1), (1, 0))) in best_keys


class TestTemporalOrderDiscrimination:
    def test_order_swap_is_discriminative(self):
        """The paper's core claim in miniature: same structure, different
        order is distinguishable temporally but not structurally."""
        pos = [chain_graph(("A", "B")) for _ in range(4)]
        neg = [chain_graph(("A", "B")) for _ in range(4)]
        # positives: A->B then B->C; negatives: B->C then A->B
        pos = [
            build_graph([(0, 1, 0), (1, 2, 1)], labels=["A", "B", "C"])
            for _ in range(4)
        ]
        neg = [
            build_graph([(1, 2, 0), (0, 1, 1)], labels=["A", "B", "C"])
            for _ in range(4)
        ]
        result = TGMiner(MinerConfig(max_edges=2, min_pos_support=1.0)).mine(pos, neg)
        top = max(result.best, key=lambda m: m.pattern.num_edges)
        assert top.pattern.num_edges == 2
        assert top.pos_freq == 1.0 and top.neg_freq == 0.0

        from repro.baselines.gspan import NonTemporalMiner, NonTemporalMinerConfig

        nt = NonTemporalMiner(NonTemporalMinerConfig(max_edges=2)).mine(pos, neg)
        # non-temporally the 2-edge structure exists in both classes
        two_edge = [m for m in nt.best if m.pattern.num_edges == 2]
        assert not two_edge or all(m.neg_freq == 1.0 for m in two_edge)
