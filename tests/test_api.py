"""Tests for the ``repro.api`` SDK: Workspace + BehaviorModel bundles."""

import json
import subprocess
import sys
import zipfile
from pathlib import Path

import pytest

import repro
from repro import BehaviorModel, MinerConfig, Workspace
from repro.api import SCHEMA_VERSION, ArtifactError
from repro.query.engine import QueryEngine
from repro.serving.registry import load_queries_jsonl

BEHAVIORS = ["gzip-decompress", "bzip2-decompress"]
CONFIG = MinerConfig(max_edges=3, min_pos_support=0.7)
SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(scope="module")
def ws():
    return Workspace(seed=3)


@pytest.fixture(scope="module")
def train(ws):
    return ws.generate(
        instances_per_behavior=4, background_graphs=6, behaviors=BEHAVIORS
    )


@pytest.fixture(scope="module")
def model(ws, train):
    return ws.mine(train, behaviors=BEHAVIORS, config=CONFIG, top_k=3)


@pytest.fixture(scope="module")
def test_data(ws):
    return ws.generate_test(instances=6, behaviors=BEHAVIORS, seed=11)


class TestWorkspaceMine:
    def test_model_shape(self, model):
        assert model.behaviors == tuple(BEHAVIORS)
        assert model.schema_version == SCHEMA_VERSION
        assert model.library_version == repro.__version__
        for name in BEHAVIORS:
            record = model.record(name)
            assert 1 <= len(record.patterns) <= 3
            assert record.best_score == record.patterns[0].score
            assert record.span_cap > 0
            assert record.patterns_explored > 0

    def test_queries_are_named_and_capped(self, model):
        queries = model.queries()
        names = [q.name for q in queries]
        expected = [
            f"{behavior}#{rank}"
            for behavior in BEHAVIORS
            for rank in range(1, len(model.record(behavior).patterns) + 1)
        ]
        assert names == expected
        for query in queries:
            behavior = query.name.split("#")[0]
            assert query.max_span == model.record(behavior).span_cap

    def test_queries_subset(self, model):
        only = model.queries(["bzip2-decompress"])
        assert {q.name.split("#")[0] for q in only} == {"bzip2-decompress"}

    def test_unknown_behavior_raises(self, model):
        with pytest.raises(ArtifactError, match="no behavior"):
            model.record("sshd-login")

    def test_provenance_records_run_facts(self, model, train):
        assert model.provenance["seed"] == train.config.seed
        assert model.provenance["top_k"] == 3

    def test_interner_covers_training_labels(self, model, train):
        interner = model.interner()
        for graph in train.all_graphs():
            for label in graph.labels:
                assert label in interner

    def test_mine_with_seed_workers_matches_serial(self, ws, train, model):
        sharded = ws.mine(
            train, behaviors=BEHAVIORS, config=CONFIG, seed_workers=2, top_k=3
        )
        for name in BEHAVIORS:
            assert sharded.record(name).patterns == model.record(name).patterns
            assert sharded.record(name).span_cap == model.record(name).span_cap


class TestCorpusRoundTrip:
    def test_save_load_corpus(self, ws, train, tmp_path):
        root = tmp_path / "corpus"
        total = ws.save_corpus(train, root)
        behavior_total = sum(len(train.behavior(n)) for n in BEHAVIORS)
        assert total == behavior_total + len(train.background)
        loaded = ws.load_corpus(root)
        assert set(loaded.config.behaviors) == set(BEHAVIORS)
        for name in BEHAVIORS:
            assert [g.edges for g in loaded.behavior(name)] == [
                g.edges for g in train.behavior(name)
            ]

    def test_load_corpus_subset(self, ws, train, tmp_path):
        root = tmp_path / "corpus"
        ws.save_corpus(train, root)
        one = ws.load_corpus(root, behaviors=["gzip-decompress"])
        assert one.config.behaviors == ("gzip-decompress",)

    def test_load_corpus_missing(self, ws, tmp_path):
        with pytest.raises(repro.ReproError, match="missing"):
            ws.load_corpus(tmp_path)


class TestBundleRoundTrip:
    @pytest.mark.parametrize("name", ["bundle-dir", "bundle.tgm"])
    def test_save_load_equality(self, model, tmp_path, name):
        path = model.save(tmp_path / name)
        assert BehaviorModel.load(path) == model

    def test_resave_is_byte_identical_dir(self, model, tmp_path):
        first = model.save(tmp_path / "a")
        second = BehaviorModel.load(first).save(tmp_path / "b")
        members = (
            "manifest.json",
            "patterns.jsonl",
            "queries.jsonl",
            "interner.json",
        )
        for member in members:
            assert (first / member).read_bytes() == (second / member).read_bytes()

    def test_resave_is_byte_identical_zip(self, model, tmp_path):
        first = model.save(tmp_path / "a.tgm")
        second = BehaviorModel.load(first).save(tmp_path / "b.tgm")
        assert first.read_bytes() == second.read_bytes()

    def test_bundle_queries_jsonl_is_registry_compatible(self, model, tmp_path):
        path = model.save(tmp_path / "bundle")
        queries = load_queries_jsonl(path / "queries.jsonl")
        assert queries == model.queries()

    def test_fresh_process_serve_matches_in_process_batch(
        self, model, test_data, tmp_path
    ):
        """Acceptance path: save -> load in a NEW process -> serve there."""
        from repro.datasets.io import save_events_jsonl

        bundle = model.save(tmp_path / "served.tgm")
        log = tmp_path / "log.jsonl"
        save_events_jsonl(test_data.events, log)
        script = (
            "import json, sys\n"
            f"sys.path.insert(0, {SRC!r})\n"
            "from repro import BehaviorModel, Workspace\n"
            "from repro.datasets.io import load_events_jsonl\n"
            f"model = BehaviorModel.load({str(bundle)!r})\n"
            "service = Workspace().serve(model)\n"
            f"events = load_events_jsonl({str(log)!r})\n"
            "spans = {q.name: set() for q in model.queries()}\n"
            "for _batch, found in service.replay(events, 64):\n"
            "    for d in found:\n"
            "        spans[d.query].add(d.span)\n"
            "print(json.dumps(\n"
            "    {name: sorted(s) for name, s in spans.items()}, sort_keys=True\n"
            "))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        streamed = json.loads(out.stdout)
        engine = QueryEngine(test_data.graph)
        for query in model.queries():
            batch = [list(span) for span in engine.search_query(query)]
            assert streamed[query.name] == batch, query.name

    def test_interner_ids_rederive_in_fresh_process(self, model, tmp_path):
        path = model.save(tmp_path / "bundle.tgm")
        probe = sorted(model.labels)[: len(model.labels) // 2]
        local = model.interner()
        script = (
            "import json, sys\n"
            f"sys.path.insert(0, {SRC!r})\n"
            "from repro import BehaviorModel\n"
            f"model = BehaviorModel.load({str(path)!r})\n"
            "interner = model.interner()\n"
            f"print(json.dumps([interner.id_of(l) for l in {probe!r}]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert json.loads(out.stdout) == [local.id_of(label) for label in probe]


class TestBundleValidation:
    def _manifest(self, path):
        return json.loads((path / "manifest.json").read_text())

    def _write_manifest(self, path, manifest):
        (path / "manifest.json").write_text(json.dumps(manifest))

    def test_future_schema_rejected(self, model, tmp_path):
        path = model.save(tmp_path / "bundle")
        manifest = self._manifest(path)
        manifest["schema_version"] = SCHEMA_VERSION + 1
        self._write_manifest(path, manifest)
        with pytest.raises(ArtifactError, match="newer than this library"):
            BehaviorModel.load(path)

    def test_bad_format_tag_rejected(self, model, tmp_path):
        path = model.save(tmp_path / "bundle")
        manifest = self._manifest(path)
        manifest["format"] = "something-else"
        self._write_manifest(path, manifest)
        with pytest.raises(ArtifactError, match="not a behavior-model bundle"):
            BehaviorModel.load(path)

    def test_missing_member_rejected(self, model, tmp_path):
        path = model.save(tmp_path / "bundle")
        (path / "interner.json").unlink()
        with pytest.raises(ArtifactError, match="member missing"):
            BehaviorModel.load(path)

    def test_corrupt_manifest_rejected(self, model, tmp_path):
        path = model.save(tmp_path / "bundle")
        (path / "manifest.json").write_text("{not json")
        with pytest.raises(ArtifactError, match="invalid JSON"):
            BehaviorModel.load(path)

    def test_edited_queries_rejected(self, model, tmp_path):
        path = model.save(tmp_path / "bundle")
        lines = (path / "queries.jsonl").read_text().splitlines()
        edited = json.loads(lines[0])
        edited["max_span"] += 1
        lines[0] = json.dumps(edited)
        (path / "queries.jsonl").write_text("\n".join(lines) + "\n")
        with pytest.raises(ArtifactError, match="disagrees"):
            BehaviorModel.load(path)

    def test_nonexistent_path_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="no such model bundle"):
            BehaviorModel.load(tmp_path / "nope.tgm")

    def test_non_bundle_file_rejected(self, tmp_path):
        stray = tmp_path / "stray.tgm"
        stray.write_text("not a zip")
        with pytest.raises(ArtifactError, match="not a model bundle"):
            BehaviorModel.load(stray)

    def test_zip_missing_member_rejected(self, model, tmp_path):
        full = model.save(tmp_path / "full.tgm")
        pruned = tmp_path / "pruned.tgm"
        with zipfile.ZipFile(full) as src, zipfile.ZipFile(pruned, "w") as dst:
            for name in src.namelist():
                if name != "patterns.jsonl":
                    dst.writestr(name, src.read(name))
        with pytest.raises(ArtifactError, match="member missing"):
            BehaviorModel.load(pruned)

    def test_manifest_entry_missing_key_rejected(self, model, tmp_path):
        path = model.save(tmp_path / "bundle")
        manifest = self._manifest(path)
        del manifest["behaviors"][0]["patterns"]
        self._write_manifest(path, manifest)
        with pytest.raises(ArtifactError, match="malformed behavior entry"):
            BehaviorModel.load(path)

    def test_config_round_trips_through_manifest(self, model, tmp_path):
        path = model.save(tmp_path / "bundle")
        assert BehaviorModel.load(path).config == CONFIG


class TestQueryAndServeEquivalence:
    def test_query_reports_accuracy(self, ws, model, test_data):
        report = ws.query(model, test_data)
        assert set(report.behaviors) == set(BEHAVIORS)
        for name in BEHAVIORS:
            ev = report.behaviors[name]
            assert ev.accuracy is not None
            assert ev.accuracy.identified == len(ev.spans)
        assert report.identified >= 1
        payload = report.as_dict()
        assert payload[BEHAVIORS[0]]["accuracy"]["behavior"] == BEHAVIORS[0]

    def test_query_on_bare_graph_skips_accuracy(self, ws, model, test_data):
        report = ws.query(model, test_data.graph)
        for ev in report.behaviors.values():
            assert ev.accuracy is None

    def test_loaded_model_serves_span_identical_to_batch(
        self, ws, model, test_data, tmp_path
    ):
        """The acceptance path: mine -> save -> fresh load -> serve."""
        loaded = BehaviorModel.load(model.save(tmp_path / "served.tgm"))
        engine = QueryEngine(test_data.graph)
        batch_spans = {q.name: tuple(engine.search_query(q)) for q in loaded.queries()}
        service = ws.serve(loaded)
        streamed: dict[str, set] = {query.name: set() for query in loaded.queries()}
        for _batch, detections in service.replay(test_data.events, 64):
            for detection in detections:
                streamed[detection.query].add(detection.span)
        assert {
            name: tuple(sorted(spans)) for name, spans in streamed.items()
        } == batch_spans

    def test_serve_window_must_cover_query_spans(self, ws, model):
        widest = max(q.max_span for q in model.queries())
        with pytest.raises(repro.ReproError, match="wider than"):
            ws.serve(model, window_span=widest - 1)


class TestVersion:
    def test_version_is_single_sourced(self):
        from repro._version import __version__ as underlying

        assert repro.__version__ == underlying
        assert repro.__version__.count(".") == 2

    def test_star_export_matches_documented_surface(self):
        exported = set(repro.__all__)
        required = {
            "Workspace",
            "BehaviorModel",
            "DetectionService",
            "QueryRegistry",
            "StreamingGraph",
            "Detection",
            "BehaviorQuery",
            "QueryEngine",
            "ArtifactError",
            "__version__",
        }
        assert required <= exported
        for name in exported:
            assert hasattr(repro, name), name
