"""End-to-end tests of the experiment harness (small scale)."""

import pytest

from repro.experiments.harness import (
    accuracy_for_behavior,
    formulate_nodeset_query,
    formulate_ntemp_queries,
    formulate_tgminer_queries,
    interest_model,
    mine_all_behaviors,
    mine_behavior,
    span_cap,
)
from repro.core.errors import DatasetError, MiningError
from repro.core.miner import MinerConfig
from repro.core.parallel import mining_fingerprint
from repro.query.engine import QueryEngine
from repro.syscall import build_test_data, build_training_data


@pytest.fixture(scope="module")
def small_world():
    train = build_training_data(instances_per_behavior=6, background_graphs=12)
    test = build_test_data(instances=24)
    return train, test, QueryEngine(test.graph), interest_model(train)


class TestFormulation:
    def test_tgminer_queries(self, small_world):
        train, _test, _engine, model = small_world
        queries = formulate_tgminer_queries(
            train, "gzip-decompress", max_edges=4, max_seconds=15, model=model
        )
        assert 1 <= len(queries) <= 5
        assert all(q.num_edges <= 4 for q in queries)

    def test_ntemp_queries(self, small_world):
        train, _test, _engine, model = small_world
        queries = formulate_ntemp_queries(
            train, "gzip-decompress", max_edges=4, max_seconds=15, model=model
        )
        assert queries and all(q.max_span > 0 for q in queries)

    def test_nodeset_query(self, small_world):
        train, _test, _engine, _model = small_world
        query = formulate_nodeset_query(train, "gzip-decompress", k=6)
        assert query.size == 6
        assert "proc:gzip" in query.labels

    def test_span_cap_scales_lifetime(self, small_world):
        train, _test, _engine, _model = small_world
        assert span_cap(train, "gzip-decompress") > train.max_lifetime(
            "gzip-decompress"
        )

    def test_mine_behavior_stats(self, small_world):
        train, _test, _engine, _model = small_world
        result = mine_behavior(
            train, "bzip2-decompress", MinerConfig(max_edges=3, max_seconds=15)
        )
        assert result.stats.patterns_explored > 0
        assert result.best_score > 0


class TestBehaviorFanOut:
    BEHAVIORS = ("gzip-decompress", "bzip2-decompress", "wget-download")

    def test_fan_out_matches_serial_loop(self, small_world):
        train, _test, _engine, _model = small_world
        config = MinerConfig(max_edges=3, min_pos_support=0.7)
        serial = {
            name: mine_behavior(train, name, config) for name in self.BEHAVIORS
        }
        for workers in (1, 3):
            fanned = mine_all_behaviors(
                train, self.BEHAVIORS, config, workers=workers
            )
            assert list(fanned) == list(self.BEHAVIORS)
            for name in self.BEHAVIORS:
                assert mining_fingerprint(fanned[name]) == mining_fingerprint(
                    serial[name]
                ), f"{name} workers={workers}"

    def test_seed_workers_compose(self, small_world):
        train, _test, _engine, _model = small_world
        config = MinerConfig(max_edges=3, min_pos_support=0.7)
        serial = mine_behavior(train, "gzip-decompress", config)
        sharded = mine_all_behaviors(
            train, ("gzip-decompress",), config, seed_workers=2
        )
        assert mining_fingerprint(sharded["gzip-decompress"]) == mining_fingerprint(
            serial
        )

    def test_defaults_to_corpus_behaviors(self, small_world):
        train, _test, _engine, _model = small_world
        results = mine_all_behaviors(
            train, config=MinerConfig(max_edges=2, min_pos_support=0.7)
        )
        assert list(results) == list(train.config.behaviors)

    def test_unknown_behavior_rejected(self, small_world):
        train, _test, _engine, _model = small_world
        with pytest.raises(DatasetError):
            mine_all_behaviors(train, ("nmap-scan",))

    def test_both_parallelism_levels_rejected(self, small_world):
        # pool workers are daemonic and cannot spawn a nested pool
        train, _test, _engine, _model = small_world
        with pytest.raises(MiningError):
            mine_all_behaviors(
                train, ("gzip-decompress",), workers=2, seed_workers=2
            )


class TestAccuracyEndToEnd:
    def test_easy_behavior_high_accuracy(self, small_world):
        train, test, engine, model = small_world
        row = accuracy_for_behavior(
            train,
            test,
            "bzip2-decompress",
            engine=engine,
            model=model,
            query_size=4,
            mining_seconds=20,
        )
        assert row.tgminer.precision >= 0.9
        assert row.tgminer.recall >= 0.9
        assert row.ntemp.precision >= 0.9
        assert row.nodeset.recall >= 0.5

    def test_confusable_behavior_orders_methods(self, small_world):
        train, test, engine, model = small_world
        row = accuracy_for_behavior(
            train,
            test,
            "scp-download",
            engine=engine,
            model=model,
            query_size=4,
            mining_seconds=20,
        )
        # the paper's headline: temporal queries dominate on the ssh family
        assert row.tgminer.precision >= row.ntemp.precision
        assert row.tgminer.precision >= row.nodeset.precision

    def test_method_subset(self, small_world):
        train, test, engine, model = small_world
        row = accuracy_for_behavior(
            train,
            test,
            "gzip-decompress",
            engine=engine,
            model=model,
            methods=("nodeset",),
            query_size=4,
        )
        assert row.nodeset is not None
        assert row.tgminer is None and row.ntemp is None
