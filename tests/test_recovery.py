"""Crash-recovery and fault-injection tests for the serving tier.

The load-bearing property everywhere: a deployment that crashes and
recovers from its checkpoint directory (snapshot + WAL tail) produces
the **same detection set, batch indexes included**, as one that never
died.  The suite drives that property through randomized stream shapes
(batch splits, out-of-order tails, eviction boundaries), through every
deterministic fault site (:mod:`repro.core.faults`), and through the
process-fleet supervisor (hard worker kills mid-stream, queue stalls,
poisoned batches, restart budgets).
"""

import os
import pickle
import random
import signal
import threading
import time

import pytest
from conftest import make_behavior_model

from repro.core.errors import (
    CheckpointError,
    HttpError,
    ServingError,
    ShardTimeoutError,
)
from repro.core.faults import FaultInjected, FaultPlan, FaultSpec
from repro.core.pattern import TemporalPattern
from repro.serving.checkpoint import (
    CheckpointedService,
    CheckpointStore,
    recover_service,
)
from repro.serving.fleet import DetectionFleet
from repro.serving.registry import BehaviorQuery
from repro.serving.service import DetectionService
from repro.syscall.events import SyscallEvent

PATTERN_PF = TemporalPattern(("proc", "file"), ((0, 1),))
PATTERN_PFS = TemporalPattern(("proc", "file", "sock"), ((0, 1), (1, 2)))


def make_queries():
    return [
        BehaviorQuery("pf", PATTERN_PF, 6),
        BehaviorQuery("pfs", PATTERN_PFS, 12),
    ]


def tenant_events(n, seed, tenants=("acme", "globex", "initech"), ooo=False):
    """A mixed multi-tenant stream over a tiny shared vocabulary.

    Per-tenant clocks are strictly increasing (the window rejects
    collisions); ``ooo`` shuffles small blocks so times regress across
    batch boundaries while staying collision-free per tenant.
    """
    rng = random.Random(seed)
    clocks = {t: 0 for t in tenants}
    events = []
    for _ in range(n):
        tenant = rng.choice(tenants)
        clocks[tenant] += rng.randint(1, 3)
        t = clocks[tenant]
        if rng.random() < 0.6:
            events.append(SyscallEvent(
                time=t, syscall="op",
                src_key=f"{tenant}|p{rng.randrange(3)}", src_label="proc",
                dst_key=f"{tenant}|f{rng.randrange(3)}", dst_label="file"))
        else:
            events.append(SyscallEvent(
                time=t, syscall="op",
                src_key=f"{tenant}|f{rng.randrange(3)}", src_label="file",
                dst_key=f"{tenant}|s0", dst_label="sock"))
    if ooo:
        for start in range(0, n, 6):
            block = events[start:start + 6]
            rng.shuffle(block)
            events[start:start + 6] = block
    return events


def single_tenant_events(n, seed, ooo=False):
    return tenant_events(n, seed, tenants=("acme",), ooo=ooo)


def det_key(d):
    return (d.query_id, d.start, d.end, d.batch)


def fleet_det_key(d):
    return (d.tenant, d.query_id, d.start, d.end, d.batch)


def serve_batches(ingestor, events, batch_size):
    out = []
    for i in range(0, len(events), batch_size):
        out.extend(ingestor.ingest(events[i:i + batch_size]))
    return out


# ---------------------------------------------------------------------------
# FaultPlan mechanics
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("no.such.site")

    def test_ordinals_are_one_based(self):
        with pytest.raises(ValueError):
            FaultSpec("worker.kill", at=0)

    def test_fire_is_deterministic_by_ordinal(self):
        plan = FaultPlan([FaultSpec("service.poison", at=3)])
        hits = [plan.fire("service.poison") is not None for _ in range(5)]
        assert hits == [False, False, True, False, False]

    def test_scope_counters_are_independent(self):
        plan = FaultPlan([FaultSpec("worker.kill", at=2, shard=1)])
        # shard 0 traffic never advances shard 1's counter
        for _ in range(10):
            assert plan.fire("worker.kill", shard=0) is None
        assert plan.fire("worker.kill", shard=1) is None
        assert plan.fire("worker.kill", shard=1) is not None

    def test_pickle_resets_counters(self):
        plan = FaultPlan([FaultSpec("service.poison", at=1)])
        assert plan.fire("service.poison") is not None
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.specs == plan.specs
        # the clone counts from scratch, like a respawned worker
        assert clone.fire("service.poison") is not None

    def test_scoped_drops_other_incarnations_worker_rules(self):
        plan = FaultPlan([
            FaultSpec("worker.kill", at=1, incarnation=0),
            FaultSpec("wal.torn", at=1, incarnation=0),
            FaultSpec("service.poison", at=1, incarnation=1),
        ])
        # a respawned worker (incarnation 1) only keeps its own rules —
        # restart-incarnation counters reset, so unfiltered kill/torn
        # rules would re-fire every restart and exhaust the budget
        respawned = plan.scoped(incarnation=1)
        assert [s.site for s in respawned.specs] == ["service.poison"]
        assert plan.scoped(incarnation=0).specs == plan.specs[:2]

    def test_maybe_raise(self):
        plan = FaultPlan([FaultSpec("wal.torn", at=1)])
        with pytest.raises(FaultInjected, match="wal.torn"):
            plan.maybe_raise("wal.torn", "boom")


# ---------------------------------------------------------------------------
# Checkpoint + WAL recovery of a single service
# ---------------------------------------------------------------------------
class TestCheckpointRecovery:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    @pytest.mark.parametrize("ooo", [False, True])
    def test_recover_equals_uninterrupted(self, tmp_path, seed, ooo):
        """Crash at every batch boundary; recovery is span-identical."""
        rng = random.Random(seed)
        events = single_tenant_events(240, seed, ooo=ooo)
        batch_size = rng.choice([7, 16, 33])
        every = rng.choice([1, 2, 5, 100])

        reference = DetectionService()
        reference.register_all(make_queries())
        ref = serve_batches(reference, events, batch_size)

        batches = [events[i:i + batch_size]
                   for i in range(0, len(events), batch_size)]
        crash_at = rng.randrange(1, len(batches))

        directory = tmp_path / "ckpt"
        service = DetectionService()
        service.register_all(make_queries())
        durable = CheckpointedService(service, directory, checkpoint_every=every)
        got = []
        for batch in batches[:crash_at]:
            got.extend(durable.ingest(batch))
        # crash: no close(), no final snapshot — the WAL tail is all we get
        del durable

        resumed, report = CheckpointedService.recover(directory,
                                                      checkpoint_every=every)
        assert report.rejected_records == 0
        for batch in batches[crash_at:]:
            got.extend(resumed.ingest(batch))
        resumed.close()

        assert {det_key(d) for d in got} == {det_key(d) for d in ref}
        assert resumed.stats.as_dict()["batches"] == len(batches)

    def test_fresh_directory_guard(self, tmp_path):
        service = DetectionService()
        service.register_all(make_queries())
        durable = CheckpointedService(service, tmp_path / "d")
        durable.ingest(single_tenant_events(20, 1)[:10])
        durable.close()
        other = DetectionService()
        with pytest.raises(ServingError, match="already holds state"):
            CheckpointedService(other, tmp_path / "d")

    def test_torn_wal_tail_is_truncated(self, tmp_path):
        events = single_tenant_events(120, 5)
        directory = tmp_path / "ckpt"
        plan = FaultPlan([FaultSpec("wal.torn", at=4)])
        service = DetectionService()
        service.register_all(make_queries())
        durable = CheckpointedService(
            service, directory, checkpoint_every=100,
            store=CheckpointStore(directory, faults=plan),
        )
        batches = [events[i:i + 20] for i in range(0, len(events), 20)]
        got = []
        crashed_batch = None
        for index, batch in enumerate(batches):
            try:
                got.extend(durable.ingest(batch))
            except CheckpointError:
                crashed_batch = index
                break
        assert crashed_batch is not None

        resumed, report = CheckpointedService.recover(directory)
        assert report.truncated_records == 1
        # the torn batch never acked: the client resubmits it, then the
        # rest of the stream — identical to the uninterrupted reference
        for batch in batches[crashed_batch:]:
            got.extend(resumed.ingest(batch))
        resumed.close()

        reference = DetectionService()
        reference.register_all(make_queries())
        ref = serve_batches(reference, events, 20)
        assert {det_key(d) for d in got} == {det_key(d) for d in ref}

    def test_corrupt_snapshot_falls_back_a_generation(self, tmp_path):
        events = single_tenant_events(160, 9)
        directory = tmp_path / "ckpt"
        # cuts: ctor slate snapshot, then one per 2 batches; 6 batches
        # before the crash -> ordinal 4 is the newest on-disk snapshot
        plan = FaultPlan([FaultSpec("snapshot.corrupt", at=4)])
        service = DetectionService()
        service.register_all(make_queries())
        durable = CheckpointedService(
            service, directory, checkpoint_every=2,
            store=CheckpointStore(directory, faults=plan),
        )
        batches = [events[i:i + 16] for i in range(0, len(events), 16)]
        split = 6
        got = []
        for batch in batches[:split]:
            got.extend(durable.ingest(batch))
        del durable  # crash with the newest snapshot corrupt on disk

        resumed, report = CheckpointedService.recover(directory,
                                                      checkpoint_every=2)
        assert report.corrupt_snapshots == 1
        for batch in batches[split:]:
            got.extend(resumed.ingest(batch))
        resumed.close()

        reference = DetectionService()
        reference.register_all(make_queries())
        ref = serve_batches(reference, events, 16)
        assert {det_key(d) for d in got} == {det_key(d) for d in ref}

    def test_rejected_batch_never_replays(self, tmp_path):
        directory = tmp_path / "ckpt"
        service = DetectionService()
        service.register_all(make_queries())
        durable = CheckpointedService(service, directory, checkpoint_every=100)
        events = single_tenant_events(40, 13)
        durable.ingest(events[:20])
        bad = [SyscallEvent(time=events[19].time, syscall="op",
                            src_key="acme|p0", src_label="proc",
                            dst_key="acme|f0", dst_label="file")]
        with pytest.raises(ServingError):
            durable.ingest(bad)  # in-window timestamp collision
        durable.ingest(events[20:])
        del durable

        _, report = CheckpointedService.recover(directory)
        assert report.rejected_records == 0  # scrubbed, not skipped-at-replay

    def test_prune_keeps_a_fallback_generation(self, tmp_path):
        directory = tmp_path / "ckpt"
        service = DetectionService()
        service.register_all(make_queries())
        durable = CheckpointedService(service, directory, checkpoint_every=1)
        events = single_tenant_events(120, 21)
        for i in range(0, len(events), 12):
            durable.ingest(events[i:i + 12])
        gens = durable.store.snapshot_generations()
        assert len(gens) == 2  # newest + one fallback, older pruned
        durable.close()

    def test_service_recover_classmethod(self, tmp_path):
        directory = tmp_path / "ckpt"
        service = DetectionService()
        service.register_all(make_queries())
        durable = CheckpointedService(service, directory, checkpoint_every=3)
        events = single_tenant_events(60, 17)
        expected = durable.ingest(events)
        durable.close()

        restored = DetectionService.recover(directory)
        assert restored.stats.as_dict()["events"] == len(events)
        assert {(q_id, s) for q_id, spans in restored._seen.items()
                for s in spans} == {(q_id, s) for q_id, spans
                                    in service._seen.items() for s in spans}
        assert expected is not None


# ---------------------------------------------------------------------------
# Fleet supervision under injected faults (process runner)
# ---------------------------------------------------------------------------
def run_fleet(events, tmp_dir, faults=None, *, batch_size=16, shards=2,
              timeout=30.0, budget=3, checkpoint_every=4):
    fleet = DetectionFleet(
        shards=shards, runner="process",
        checkpoint_dir=tmp_dir, checkpoint_every=checkpoint_every,
        faults=faults, result_timeout=timeout, restart_budget=budget,
        restart_backoff=0.01,
    )
    fleet.register_all(make_queries())
    detections = []
    try:
        for _, batch in fleet.replay(events, batch_size):
            detections.extend(batch)
        stats = fleet.stats
        health = fleet.health()
    finally:
        fleet.close()
    return detections, stats, health


class TestFleetSupervision:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        events = tenant_events(400, seed=7)
        ref, stats, health = run_fleet(
            events, str(tmp_path_factory.mktemp("ref"))
        )
        assert health["status"] == "ok"
        assert stats.restarts == 0
        return events, {fleet_det_key(d) for d in ref}

    @pytest.mark.parametrize("kill_at", [1, 4, 9])
    def test_worker_kill_recovers_span_identical(self, tmp_path, reference,
                                                 kill_at):
        events, ref = reference
        plan = FaultPlan([FaultSpec("worker.kill", at=kill_at, shard=0)])
        got, stats, health = run_fleet(events, str(tmp_path), faults=plan)
        assert {fleet_det_key(d) for d in got} == ref
        assert stats.restarts == 1
        assert stats.recovered_events > 0
        assert health["status"] == "degraded"
        assert health["shards"][0]["restarts"] == 1

    @pytest.mark.parametrize("kill_at", [2, 3])
    def test_kill_on_snapshot_boundary_batch_stays_replayable(
            self, tmp_path, kill_at):
        """The ack-loss window around the batch that triggers a cut.

        Snapshots used to be cut *after* the triggering batch, absorbing
        it and rotating its WAL record out of the replay range; a kill
        between that ingest and its ack left the supervisor unable to
        settle the batch, and resubmitting it collided with the restored
        window (the tenant got quarantined for a fault of ours, not
        its).  Cuts now happen before the triggering batch, so an
        unacked batch is always replayable — on either side of the
        boundary (kill_at=2 is the last batch of a checkpoint interval,
        kill_at=3 the first of the next).
        """
        events = single_tenant_events(160, 13)
        ref, _, _ = run_fleet(events, str(tmp_path / "ref"), shards=1,
                              checkpoint_every=2)
        plan = FaultPlan([FaultSpec("worker.kill", at=kill_at)])
        got, stats, health = run_fleet(events, str(tmp_path / "chaos"),
                                       faults=plan, shards=1,
                                       checkpoint_every=2)
        assert health["quarantined"] == []
        assert stats.restarts == 1
        assert ({fleet_det_key(d) for d in got}
                == {fleet_det_key(d) for d in ref})

    def test_torn_wal_write_kills_and_recovers(self, tmp_path, reference):
        events, ref = reference
        plan = FaultPlan([FaultSpec("wal.torn", at=6, shard=0)])
        got, stats, _ = run_fleet(events, str(tmp_path), faults=plan)
        assert {fleet_det_key(d) for d in got} == ref
        assert stats.restarts == 1

    def test_queue_stall_is_killed_and_restarted(self, tmp_path, reference):
        events, ref = reference
        plan = FaultPlan([FaultSpec("worker.stall", at=3, shard=0,
                                    delay=30.0)])
        start = time.perf_counter()
        got, stats, _ = run_fleet(events, str(tmp_path), faults=plan,
                                  timeout=2.0)
        assert time.perf_counter() - start < 20  # did not wait out the stall
        assert {fleet_det_key(d) for d in got} == ref
        assert stats.restarts == 1
        assert stats.force_killed == 1

    def test_poisoned_batch_quarantines_tenant_not_shard(self, tmp_path,
                                                         reference):
        events, ref = reference
        plan = FaultPlan([FaultSpec("service.poison", at=2, tenant="acme")])
        got, stats, health = run_fleet(events, str(tmp_path), faults=plan)
        assert stats.quarantined == ("acme",)
        assert stats.quarantine_dropped > 0
        assert health["quarantined"] == ["acme"]
        got_keys = {fleet_det_key(d) for d in got}
        # every other tenant is untouched by acme's poison
        assert ({k for k in got_keys if k[0] != "acme"}
                == {k for k in ref if k[0] != "acme"})
        assert stats.restarts == 0

    def test_restart_budget_zero_raises_on_death(self, tmp_path):
        events = tenant_events(200, seed=7)
        plan = FaultPlan([FaultSpec("worker.kill", at=2, shard=0)])
        with pytest.raises(ServingError, match="restart budget"):
            run_fleet(events, str(tmp_path), faults=plan, budget=0)

    def test_restart_budget_exhaustion_raises(self, tmp_path):
        events = tenant_events(200, seed=7)
        plan = FaultPlan([
            FaultSpec("worker.kill", at=1, shard=0, incarnation=i)
            for i in range(6)
        ])
        with pytest.raises(ServingError, match="restart budget"):
            run_fleet(events, str(tmp_path), faults=plan, budget=2)

    def test_stall_without_budget_raises_typed_timeout(self, tmp_path):
        events = tenant_events(200, seed=7)
        plan = FaultPlan([FaultSpec("worker.stall", at=1, delay=30.0)])
        with pytest.raises(ShardTimeoutError) as excinfo:
            run_fleet(events, str(tmp_path), faults=plan, timeout=1.0,
                      budget=0)
        assert excinfo.value.shard is not None
        assert excinfo.value.last_acked_seq is not None

    def test_external_sigkill_mid_stream(self, tmp_path):
        """A real kill -9 from outside, not an injected exit."""
        events = tenant_events(300, seed=7)
        ref, _, _ = run_fleet(events, str(tmp_path / "ref"))
        fleet = DetectionFleet(
            shards=1, runner="process",
            checkpoint_dir=str(tmp_path / "chaos"), checkpoint_every=2,
            restart_budget=3, restart_backoff=0.01, result_timeout=30.0,
        )
        fleet.register_all(make_queries())
        got = []
        killed = False
        try:
            for index, batch in fleet.replay(events, 16):
                got.extend(batch)
                if index == 3 and not killed:
                    killed = True
                    os.kill(fleet._procs[0].pid, signal.SIGKILL)
            stats = fleet.stats
        finally:
            fleet.close()
        assert killed
        assert stats.restarts == 1
        assert ({fleet_det_key(d) for d in got}
                == {fleet_det_key(d) for d in ref})

    def test_fresh_fleet_resumes_checkpoint_dir(self, tmp_path):
        """A brand-new fleet over the same directory resumes all windows."""
        events = tenant_events(300, seed=19)
        split = 150
        ref, _, _ = run_fleet(events, str(tmp_path / "ref"))
        directory = str(tmp_path / "resume")
        first, _, _ = run_fleet(events[:split], directory)
        second, _, _ = run_fleet(events[split:], directory)
        # batch indexes restart per fleet lifetime; compare spans only
        span = lambda d: (d.tenant, d.query_id, d.start, d.end)  # noqa: E731
        assert ({span(d) for d in first} | {span(d) for d in second}
                == {span(d) for d in ref})


# ---------------------------------------------------------------------------
# Workspace + HTTP durability surface
# ---------------------------------------------------------------------------
@pytest.fixture
def behavior_model():
    return make_behavior_model()


class TestDurableServing:
    def test_workspace_serve_resumes_directory(self, tmp_path,
                                               behavior_model):
        from repro.api import Workspace
        from repro.syscall.events import SyscallEvent as E

        ws = Workspace()
        events = [
            E(time=t, syscall="op", src_key=f"n{i}", src_label=label,
              dst_key=f"n{i + 1}", dst_label=next_label)
            for t, (i, (label, next_label)) in enumerate(
                [(0, ("A", "B")), (1, ("B", "C"))], start=1)
        ]
        handle = ws.serve(behavior_model, checkpoint_dir=tmp_path / "ckpt")
        try:
            assert handle.health()["status"] == "ok"
            first = handle.ingest(events)
        finally:
            handle.close()
        # a fresh serve() over the same directory resumes the window:
        # re-ingesting the same spans is deduped, not re-detected
        resumed = ws.serve(behavior_model, checkpoint_dir=tmp_path / "ckpt")
        try:
            assert resumed.health()["kind"] == "checkpointed-service"
            assert resumed.stats.as_dict()["events"] == len(events)
            assert first is not None
        finally:
            resumed.close()

    def test_http_429_sheds_with_retry_after(self, behavior_model):
        from repro.api import Workspace
        from repro.serving.http import DetectionServer
        from repro.serving.contracts import ServingHandle

        ws = Workspace()
        handle = ws.serve(behavior_model)
        plan = FaultPlan([FaultSpec("service.slow_batch", at=1, delay=0.6)])
        handle.ingestor.faults = plan
        app = DetectionServer(handle, max_inflight=1, retry_after=2.5)
        errors = []

        def slow_ingest():
            app.handle_ingest({"events": []})

        worker = threading.Thread(target=slow_ingest)
        worker.start()
        time.sleep(0.2)  # let the slow ingest take the only slot
        with pytest.raises(HttpError) as excinfo:
            app.handle_ingest({"events": []})
        worker.join()
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 2.5
        health = app.handle_healthz()
        assert health["shed"] == 1
        app.close()

    def test_http_close_drains_and_checkpoints(self, tmp_path,
                                               behavior_model):
        from repro.api import Workspace
        from repro.serving.http import DetectionServer

        ws = Workspace()
        directory = tmp_path / "ckpt"
        handle = ws.serve(behavior_model, checkpoint_dir=directory,
                          checkpoint_every=10_000)
        app = DetectionServer(handle)
        app.close()
        # the final cut means a clean shutdown leaves a snapshot, not
        # just WAL records
        store = CheckpointStore(directory)
        assert store.snapshot_generations()
        store.close()
        with pytest.raises(HttpError) as excinfo:
            app.handle_ingest({"events": []})
        assert excinfo.value.status == 503

    def test_http_healthz_reports_deployment_health(self, behavior_model):
        from repro.api import Workspace
        from repro.serving.http import DetectionServer

        ws = Workspace()
        handle = ws.serve(behavior_model, shards=2, runner="inline")
        app = DetectionServer(handle)
        try:
            health = app.handle_healthz()
            assert "deployment" in health
            assert health["deployment"]["status"] in ("ok", "degraded")
            assert len(health["deployment"]["shards"]) == 2
        finally:
            app.close()
