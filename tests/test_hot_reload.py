"""Pins for the hot-reload window retention property.

The guarantee: after ``reload`` swaps a new model into a live service,
detections are **span-identical** to a fresh service that had served the
new model over the entire log, compared from the same batch boundary.
The retained sliding window is what makes that possible — matches that
straddle the reload boundary (old-batch edge + new-batch edge) are still
found, while warming marks fully-pre-boundary matches as already
reported so out-of-order reinsertion cannot re-emit them.  A cold
restart (fresh empty window) provably misses the straddlers.

Timeline used throughout (explicit ``window_span=10``):

== ===== =====================================================
batch     events
== ===== =====================================================
0         t=0 a0>b0, t=1 b0>c0, t=4 a1>b1, t=5 b1>c1
1         t=7 a2>b2, t=8 x0>y0 (filler)
-- reload boundary: model A (pair A>B) -> model B (chain A>B>C)
2         t=9 b2>c2 (straddler!), t=10 a3>b3, t=11 b3>c3
3         t=3 x1>y1 (out-of-order: forces tail reinsertion)
== ===== =====================================================

Model B's post-boundary truth: the straddling chain ``(7, 9)`` and the
fully-post chain ``(10, 11)`` — and nothing from the retained
pre-boundary chains ``(0, 1)`` / ``(4, 5)``, which batch 3's reinsertion
re-enumerates and warming must suppress.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.api import Workspace
from repro.core.errors import ServingError
from repro.serving import DetectionFleet
from repro.syscall.events import SyscallEvent

from conftest import make_behavior_model

SRC = str(Path(__file__).resolve().parent.parent / "src")

WINDOW = 10
BOUNDARY = 2


def event(time, src_key, src_label, dst_key, dst_label):
    return SyscallEvent(
        time=time,
        syscall="op",
        src_key=src_key,
        src_label=src_label,
        dst_key=dst_key,
        dst_label=dst_label,
    )


def timeline():
    return [
        [
            event(0, "a0", "A", "b0", "B"),
            event(1, "b0", "B", "c0", "C"),
            event(4, "a1", "A", "b1", "B"),
            event(5, "b1", "B", "c1", "C"),
        ],
        [
            event(7, "a2", "A", "b2", "B"),
            event(8, "x0", "X", "y0", "Y"),
        ],
        [
            event(9, "b2", "B", "c2", "C"),
            event(10, "a3", "A", "b3", "B"),
            event(11, "b3", "B", "c3", "C"),
        ],
        [
            event(3, "x1", "X", "y1", "Y"),
        ],
    ]


def model_a():
    """The pre-reload model: single-edge A>B pairs."""
    return make_behavior_model(behavior="pair-ab", labels=("A", "B"), span_cap=5)


def model_b():
    """The post-reload model: the A>B>C chain."""
    return make_behavior_model()


class TestWindowRetention:
    def hot_spans(self):
        handle = Workspace().serve(model_a(), window_span=WINDOW)
        batches = timeline()
        pre = [d.span for b in batches[:BOUNDARY] for d in handle.ingest(b)]
        handle.reload(model_b(), version=2)
        post = [d.span for b in batches[BOUNDARY:] for d in handle.ingest(b)]
        return pre, post

    def reference_spans(self):
        """Model B served over the whole log; spans from batch >= BOUNDARY."""
        handle = Workspace().serve(model_b(), window_span=WINDOW)
        post = []
        for index, batch in enumerate(timeline()):
            found = handle.ingest(batch)
            if index >= BOUNDARY:
                post.extend(d.span for d in found)
        return post

    def test_pre_boundary_serves_old_model(self):
        pre, _post = self.hot_spans()
        assert sorted(pre) == [(0, 0), (4, 4), (7, 7)]

    def test_hot_reload_matches_full_replay_reference(self):
        _pre, post = self.hot_spans()
        assert sorted(post) == sorted(self.reference_spans())

    def test_straddling_match_is_found(self):
        _pre, post = self.hot_spans()
        assert (7, 9) in post
        assert (10, 11) in post

    def test_warming_suppresses_reenumerated_pre_boundary_matches(self):
        # batch 3's t=3 event reinserts the window tail; without warmed
        # dedup state the (0,1)/(4,5) chains would be re-emitted
        _pre, post = self.hot_spans()
        assert (0, 1) not in post
        assert (4, 5) not in post

    def test_cold_restart_misses_the_straddler(self):
        handle = Workspace().serve(model_b(), window_span=WINDOW)
        post = [d.span for b in timeline()[BOUNDARY:] for d in handle.ingest(b)]
        assert (7, 9) not in post
        assert (10, 11) in post

    def test_reloaded_query_wider_than_window_refused(self):
        handle = Workspace().serve(model_a(), window_span=5)
        handle.ingest(timeline()[0])
        with pytest.raises(ServingError, match="wider .*than the service window"):
            handle.reload(model_b())  # chain span cap 10 > window 5
        # the refused reload left the old slate serving
        assert [d.span for d in handle.ingest(timeline()[1])] == [(7, 7)]


class TestFleetReload:
    def test_inline_fleet_reload_keeps_tenant_windows(self):
        fleet = DetectionFleet(shards=2, window_span=WINDOW)
        fleet.register_all(model_a().queries())
        batches = timeline()
        for batch in batches[:BOUNDARY]:
            fleet.ingest(batch)
        fleet.reload(model_b().queries())
        post = [d.span for b in batches[BOUNDARY:] for d in fleet.ingest(b)]
        assert (7, 9) in post  # tenant windows survived the swap
        assert (10, 11) in post
        fleet.close()

    def test_process_fleet_reload_refused(self):
        fleet = DetectionFleet(shards=1, runner="process", window_span=WINDOW)
        fleet.register_all(model_a().queries())
        with pytest.raises(ServingError, match="inline fleets"):
            fleet.reload(model_b().queries())
        fleet.close()


class TestSubprocessEquivalence:
    """Satellite pin: the retention property holds across real processes.

    Saves both bundles and the event log to disk, then replays the
    timeline in fresh interpreters: once hot-reloading mid-stream, once
    cold with the new model over the full log, once cold-restarting at
    the boundary.  Hot and cold-full must print identical span JSON.
    """

    RUNNER = textwrap.dedent(
        """\
        import json, sys

        sys.path.insert(0, sys.argv[1])
        from repro import BehaviorModel, Workspace
        from repro.datasets.io import load_events_jsonl

        mode, bundle_a, bundle_b = sys.argv[2], sys.argv[3], sys.argv[4]
        boundary, window = int(sys.argv[5]), int(sys.argv[6])
        batches = [load_events_jsonl(path) for path in sys.argv[7:]]

        post = []
        if mode == "hot":
            handle = Workspace().serve(BehaviorModel.load(bundle_a), window_span=window)
            for batch in batches[:boundary]:
                handle.ingest(batch)
            handle.reload(BehaviorModel.load(bundle_b), version=2)
            for batch in batches[boundary:]:
                post.extend(d.span for d in handle.ingest(batch))
        elif mode == "cold-full":
            handle = Workspace().serve(BehaviorModel.load(bundle_b), window_span=window)
            for index, batch in enumerate(batches):
                found = handle.ingest(batch)
                if index >= boundary:
                    post.extend(d.span for d in found)
        elif mode == "cold-restart":
            handle = Workspace().serve(BehaviorModel.load(bundle_b), window_span=window)
            for batch in batches[boundary:]:
                post.extend(d.span for d in handle.ingest(batch))
        else:
            raise SystemExit(f"unknown mode {mode!r}")
        print(json.dumps(sorted(list(span) for span in post)))
        """
    )

    @pytest.fixture
    def artifacts(self, tmp_path):
        from repro.datasets.io import save_events_jsonl

        runner = tmp_path / "runner.py"
        runner.write_text(self.RUNNER)
        bundle_a = model_a().save(tmp_path / "a.tgm")
        bundle_b = model_b().save(tmp_path / "b.tgm")
        batch_paths = []
        for index, batch in enumerate(timeline()):
            path = tmp_path / f"batch{index}.jsonl"
            save_events_jsonl(batch, path)
            batch_paths.append(path)
        return runner, bundle_a, bundle_b, batch_paths

    def run_mode(self, artifacts, mode):
        runner, bundle_a, bundle_b, batch_paths = artifacts
        out = subprocess.run(
            [
                sys.executable,
                str(runner),
                SRC,
                mode,
                str(bundle_a),
                str(bundle_b),
                str(BOUNDARY),
                str(WINDOW),
                *map(str, batch_paths),
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        return json.loads(out.stdout)

    def test_hot_reload_identical_to_cold_restart_at_same_boundary(self, artifacts):
        hot = self.run_mode(artifacts, "hot")
        reference = self.run_mode(artifacts, "cold-full")
        assert hot == reference
        assert [7, 9] in hot and [10, 11] in hot

    def test_actually_cold_restart_is_not_equivalent(self, artifacts):
        cold = self.run_mode(artifacts, "cold-restart")
        assert [7, 9] not in cold
        assert [10, 11] in cold
