"""Edge-case unit tests for the flat-column temporal join dispatcher.

``_join_arrays`` fronts two implementations (vectorized masks, scalar
buffer walk) that must behave identically to the legacy object join in
the corners: empty candidate lists, scan windows straddling a streaming
eviction boundary, and match limits cutting a mask batch mid-iteration.
"""

import pytest

import repro.core.graph_index as graph_index
from repro.core import buffers
from repro.core.graph import TemporalGraph
from repro.core.graph_index import find_matches
from repro.core.pattern import TemporalPattern
from repro.serving.streaming import StreamingGraph
from repro.syscall.events import SyscallEvent

BACKENDS = [
    pytest.param(
        "numpy",
        marks=pytest.mark.skipif(
            not buffers.have_numpy(), reason="numpy not installed"
        ),
    ),
    "array",
]


@pytest.fixture(autouse=True)
def force_mask_paths(monkeypatch):
    """Run the vectorized branches even on tiny inputs, restore after."""
    monkeypatch.setattr(graph_index, "_VECTOR_MIN_CANDIDATES", 0)
    monkeypatch.setattr(graph_index, "_VECTOR_MIN_WINDOW", 0)
    yield
    buffers.force_backend(None)


def _burst_graph(edges=12):
    """Two hub nodes exchanging a dense burst (many overlapping matches)."""
    graph = TemporalGraph(name="burst")
    for label in ("A", "B", "A", "B"):
        graph.add_node(label)
    for t in range(edges):
        graph.add_edge(t % 2 * 2, (t % 2 * 2 + 1) % 4, t)
    return graph.freeze()


def _event(t, src, src_label, dst, dst_label):
    return SyscallEvent(
        time=t,
        syscall="op",
        src_key=src,
        src_label=src_label,
        dst_key=dst,
        dst_label=dst_label,
    )


class TestZeroCandidates:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_absent_label_pair_yields_nothing(self, backend):
        buffers.force_backend(backend)
        graph = _burst_graph()
        pattern = TemporalPattern(["A", "Z"], [(0, 1)])
        assert list(find_matches(pattern, graph)) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_start_index_past_all_candidates(self, backend):
        buffers.force_backend(backend)
        graph = _burst_graph(edges=6)
        pattern = TemporalPattern(["A", "B"], [(0, 1)])
        assert list(find_matches(pattern, graph, start_index=6)) == []
        # one below: exactly the last candidate survives the frontier
        tail = list(find_matches(pattern, graph, start_index=5))
        legacy = list(
            find_matches(pattern, graph, start_index=5, use_kernel=False)
        )
        assert tail == legacy and len(tail) == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_one_empty_pair_among_populated_ones(self, backend):
        buffers.force_backend(backend)
        graph = _burst_graph()
        # first edge has candidates, second pattern edge's pair does not
        pattern = TemporalPattern(["A", "B", "Z"], [(0, 1), (1, 2)])
        assert list(find_matches(pattern, graph)) == []


class TestEvictionBoundary:
    def _window(self):
        """A stream whose old edges were evicted and compacted away."""
        stream = StreamingGraph(window_span=4, name="w")
        for t in range(10):
            stream.ingest([_event(t, f"p{t % 3}", "A", f"f{t % 2}", "B")])
        # jump ahead: everything before t=16 slides out of the window
        stream.ingest([_event(20, "p0", "A", "f0", "B")])
        assert stream.first_live_index > 0
        return stream

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_window_straddling_eviction_matches_rebuild(self, backend):
        buffers.force_backend(backend)
        stream = self._window()
        start = stream.first_live_index
        pattern = TemporalPattern(["A", "B"], [(0, 1)])
        batch = stream.as_temporal_graph(name="rebuild")
        for max_span in (None, 2, 100):
            want = [
                tuple(batch.edges[i].time for i in m.edge_indexes)
                for m in find_matches(
                    pattern, batch, max_span=max_span, use_kernel=False
                )
            ]
            got = [
                tuple(stream.edges[i].time for i in m.edge_indexes)
                for m in find_matches(
                    pattern, stream, max_span=max_span, start_index=start
                )
            ]
            assert got == want

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stale_frontier_into_dead_prefix_raises(self, backend):
        """A candidate id below the compaction base must refuse loudly.

        The live stream prunes its pair lists eagerly, so this guard is
        only reachable through a stale caller; drive ``_join_arrays``
        directly with a fabricated dead prefix to pin the defense.
        """
        buffers.force_backend(backend)
        pattern = TemporalPattern(["A", "B"], [(0, 1)])
        base = 5
        src = buffers.int_column([0, 0, 0, 0, 0])
        dst = buffers.int_column([1, 1, 1, 1, 1])
        times = buffers.int_column([5, 6, 7, 8, 9])
        # candidate id 2 predates the compaction base of 5
        stale_candidates = [[2, 5, 7]]
        with pytest.raises(IndexError, match="compacted away"):
            list(
                graph_index._join_arrays(
                    pattern,
                    (base, src, dst, times),
                    stale_candidates,
                    None,
                    None,
                    0,
                    0,
                )
            )


class TestLimitMidBatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("limit", [1, 3, 7])
    def test_limit_cuts_mask_batch_identically(self, backend, limit):
        buffers.force_backend(backend)
        graph = _burst_graph(edges=14)
        # second edge re-binds both endpoints: its scan window is handled
        # as one mask batch, which the limit must interrupt mid-iteration
        pattern = TemporalPattern(["A", "B"], [(0, 1), (0, 1)])
        unlimited = list(find_matches(pattern, graph, use_kernel=False))
        assert len(unlimited) > limit
        legacy = list(
            find_matches(pattern, graph, limit=limit, use_kernel=False)
        )
        kernel = list(find_matches(pattern, graph, limit=limit))
        assert kernel == legacy == unlimited[:limit]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_default_match_limit_truncates_identically(
        self, backend, monkeypatch
    ):
        buffers.force_backend(backend)
        graph = _burst_graph(edges=14)
        pattern = TemporalPattern(["A", "B"], [(0, 1), (0, 1), (0, 1)])
        # stand-in for the engine-level cap: small enough to hit mid-run
        cap = 5
        legacy = list(
            find_matches(pattern, graph, limit=cap, use_kernel=False)
        )
        kernel = list(find_matches(pattern, graph, limit=cap))
        assert len(legacy) == cap
        assert kernel == legacy
