"""Tests for the public serving contract: Ingestor, stats schema, handle.

The contract (``repro.api`` is the canonical import path; definitions
live in ``repro.serving.contracts``) is what every deployment agrees on:
both stats implementations emit the same versioned ``as_dict()`` schema,
``stats_from_dict`` round-trips either byte-for-byte, and
``Workspace.serve`` returns a :class:`ServingHandle` that satisfies the
:class:`Ingestor` protocol by delegation.
"""

import pytest

import repro
from repro.api import (
    STATS_SCHEMA_KEYS,
    STATS_SCHEMA_VERSION,
    Ingestor,
    ServingHandle,
    StatsView,
    stats_from_dict,
)
from repro.core.errors import ServingError
from repro.serving import DetectionFleet, DetectionService
from repro.syscall.events import SyscallEvent

from conftest import make_behavior_model


def event(time, src_key, src_label, dst_key, dst_label):
    return SyscallEvent(
        time=time,
        syscall="op",
        src_key=src_key,
        src_label=src_label,
        dst_key=dst_key,
        dst_label=dst_label,
    )


def chain_events(base, i):
    """One instance of the conftest model's A->B->C chain at ``base``."""
    return [
        event(base, f"a{i}", "A", f"b{i}", "B"),
        event(base + 1, f"b{i}", "B", f"c{i}", "C"),
    ]


@pytest.fixture
def model():
    return make_behavior_model()


class TestStatsSchema:
    def test_schema_version_is_first_key(self):
        assert STATS_SCHEMA_KEYS[0] == "schema_version"

    def test_service_payload_carries_schema(self, model):
        service = DetectionService()
        service.register_all(model.queries())
        service.ingest(chain_events(0, 0))
        payload = service.stats.as_dict()
        assert payload["schema_version"] == STATS_SCHEMA_VERSION
        assert payload["kind"] == "service"
        for key in STATS_SCHEMA_KEYS:
            assert key in payload

    def test_fleet_payload_carries_schema(self, model):
        fleet = DetectionFleet(shards=2)
        fleet.register_all(model.queries())
        fleet.ingest(chain_events(0, 0))
        payload = fleet.stats.as_dict()
        assert payload["schema_version"] == STATS_SCHEMA_VERSION
        assert payload["kind"] == "fleet"
        for key in STATS_SCHEMA_KEYS:
            assert key in payload
        fleet.close()

    def test_service_round_trip_exact(self, model):
        service = DetectionService()
        service.register_all(model.queries())
        service.ingest(chain_events(0, 0))
        payload = service.stats.as_dict()
        view = stats_from_dict(payload)
        assert isinstance(view, StatsView)
        assert view.as_dict() == payload
        assert view.events == payload["events"]
        assert view.detections == 1
        assert not view.is_fleet

    def test_fleet_round_trip_exact(self, model):
        fleet = DetectionFleet(shards=2)
        fleet.register_all(model.queries())
        fleet.ingest(chain_events(0, 0))
        payload = fleet.stats.as_dict()
        view = stats_from_dict(payload)
        assert view.as_dict() == payload
        assert view.is_fleet
        shard_views = view.per_shard
        assert len(shard_views) == payload["shards"]
        for shard in shard_views:
            assert shard.kind == "service"
        fleet.close()

    def test_unknown_attribute_raises(self, model):
        view = stats_from_dict(DetectionService().stats.as_dict())
        with pytest.raises(AttributeError, match="no key"):
            view.nonexistent_counter


class TestStatsValidation:
    def base(self):
        return DetectionService().stats.as_dict()

    def test_non_dict_rejected(self):
        with pytest.raises(ServingError, match="must be a dict"):
            stats_from_dict([1, 2, 3])

    def test_missing_key_rejected(self):
        payload = self.base()
        del payload["detections"]
        with pytest.raises(ServingError, match="missing schema keys: detections"):
            stats_from_dict(payload)

    def test_newer_schema_version_rejected(self):
        payload = self.base()
        payload["schema_version"] = STATS_SCHEMA_VERSION + 1
        with pytest.raises(ServingError, match="newer than this library"):
            stats_from_dict(payload)

    def test_invalid_schema_version_rejected(self):
        payload = self.base()
        payload["schema_version"] = "one"
        with pytest.raises(ServingError, match="invalid stats schema_version"):
            stats_from_dict(payload)

    def test_unknown_kind_rejected(self):
        payload = self.base()
        payload["kind"] = "mystery"
        with pytest.raises(ServingError, match="unknown stats kind"):
            stats_from_dict(payload)

    def test_fleet_extras_required(self):
        payload = self.base()
        payload["kind"] = "fleet"
        with pytest.raises(ServingError, match="missing 'shards'"):
            stats_from_dict(payload)


class TestServingHandle:
    def test_serve_returns_protocol_conformant_handle(self, model):
        handle = repro.Workspace().serve(model)
        assert isinstance(handle, ServingHandle)
        assert isinstance(handle, Ingestor)
        assert handle.model is model
        assert handle.registry is None
        assert handle.window_span == 10

    def test_handle_delegates_ingest_and_replay(self, model):
        handle = repro.Workspace().serve(model)
        detections = handle.ingest(chain_events(0, 0))
        assert [d.span for d in detections] == [(0, 1)]
        replayed = []
        for _batch, found in handle.replay(chain_events(5, 1), batch_size=2):
            replayed.extend(found)
        assert [d.span for d in replayed] == [(5, 6)]
        assert handle.stats.as_dict()["detections"] == 2

    def test_handle_is_context_manager(self, model):
        with repro.Workspace().serve(model) as handle:
            assert handle.ingest(chain_events(0, 0))

    def test_handle_reload_swaps_model_and_version(self, model):
        handle = repro.Workspace().serve(model)
        handle.ingest(chain_events(0, 0))
        replacement = make_behavior_model(behavior="chain-xyz")
        handle.reload(replacement, version=7)
        assert handle.model is replacement
        assert handle.version == 7
        detections = handle.ingest(chain_events(20, 1))
        assert [d.query for d in detections] == ["chain-xyz#1"]

    def test_reload_without_support_raises(self, model):
        class Bare:
            stats = None

            def register_all(self, queries):
                return []

            def ingest(self, events):
                return []

            def replay(self, events, batch_size):
                return iter(())

            def close(self):
                pass

        handle = ServingHandle(Bare())
        with pytest.raises(ServingError, match="does not support hot reload"):
            handle.reload(model)

    def test_serve_with_shards_wraps_fleet(self, model):
        handle = repro.Workspace().serve(model, shards=2)
        assert isinstance(handle, ServingHandle)
        assert isinstance(handle.ingestor, DetectionFleet)
        assert handle.ingest(chain_events(0, 0))
        handle.close()

    def test_serve_fleet_warns_and_delegates(self, model):
        with pytest.warns(DeprecationWarning, match="serve_fleet.*deprecated"):
            handle = repro.Workspace().serve_fleet(model, shards=2)
        assert isinstance(handle, ServingHandle)
        assert isinstance(handle.ingestor, DetectionFleet)
        handle.close()


class TestPublicExports:
    def test_repro_all_exports_serving_surface(self):
        for name in (
            "Ingestor",
            "ServingHandle",
            "StatsView",
            "stats_from_dict",
            "ModelRegistry",
            "RegistryEntry",
            "RegistryError",
            "HttpError",
            "serve_http",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_api_is_canonical_import_path(self):
        import repro.api as api
        import repro.serving.contracts as contracts

        assert api.Ingestor is contracts.Ingestor
        assert api.ServingHandle is contracts.ServingHandle
        assert api.stats_from_dict is contracts.stats_from_dict
        assert api.STATS_SCHEMA_KEYS is contracts.STATS_SCHEMA_KEYS
