"""Tests for the disk-backed corpus store (:mod:`repro.datasets.store`).

The load-bearing property throughout: everything read back from disk —
graphs, windows, events, mined models, detection spans — is identical to
what the in-memory path produces.  Mined-model comparisons use content
identity (every field except the wall-clock ``elapsed_seconds`` and the
recorded worker counts), the same standard ``mining_fingerprint`` sets
for parallel mining.
"""

import random
import sqlite3

import pytest

from repro.api import Workspace
from repro.core.errors import DatasetError, MiningError
from repro.core.graph import TemporalGraph
from repro.core.miner import MinerConfig
from repro.datasets.store import (
    BACKGROUND_PARTITION,
    STORE_SCHEMA_VERSION,
    CorpusStore,
)
from repro.experiments.harness import mine_all_behaviors_from_store
from repro.syscall import SyscallEvent

from conftest import build_graph, random_temporal_graph

FAST = MinerConfig(max_edges=3, max_seconds=20)


def graph_facts(graph):
    """Everything that identifies a graph's content."""
    return (
        graph.name,
        tuple(graph.labels),
        [(e.src, e.dst, e.time) for e in graph.edges],
    )


def model_content(model):
    """A model's content minus wall-clock noise and run-shape facts."""
    records = {
        name: (
            r.behavior,
            r.span_cap,
            r.patterns,
            r.co_optimal,
            r.patterns_explored,
            r.subgraph_tests,
            r.index_prefilter_skips,
            r.timed_out,
        )
        for name, r in model.records.items()
    }
    provenance = {
        k: v
        for k, v in model.provenance.items()
        if k not in ("workers", "seed_workers")
    }
    return model.labels, provenance, records


@pytest.fixture(scope="module")
def train():
    return Workspace(seed=13).generate(
        instances_per_behavior=3, background_graphs=6
    )


@pytest.fixture(scope="module")
def store(train, tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "corpus.store"
    with CorpusStore.create(path) as builder:
        builder.add_training_data(train)
    opened = CorpusStore.open(path)
    yield opened
    opened.close()


class TestRoundTrip:
    def test_graph_roundtrip(self, tmp_path):
        g = build_graph(
            [(0, 1, 3), (1, 2, 7), (2, 0, 9)], labels=["A", "B", "A"], name="g1"
        )
        with CorpusStore.create(tmp_path / "s.store") as s:
            s.add_graph("p", g)
            (back,) = s.load_graphs("p")
        assert graph_facts(back) == graph_facts(g)

    @pytest.mark.parametrize("page_edges", [1, 3, 7])
    def test_multipage_roundtrip(self, tmp_path, page_edges):
        rng = random.Random(5)
        graphs = [random_temporal_graph(rng, n_edges=20) for _ in range(4)]
        path = tmp_path / "s.store"
        with CorpusStore.create(path, page_edges=page_edges) as s:
            for g in graphs:
                s.add_graph("p", g)
        with CorpusStore.open(path) as s:
            back = s.load_graphs("p")
        assert [graph_facts(g) for g in back] == [graph_facts(g) for g in graphs]

    def test_empty_graph_roundtrip(self, tmp_path):
        g = TemporalGraph(name="empty")
        g.add_node("A")
        g.freeze()
        with CorpusStore.create(tmp_path / "s.store") as s:
            s.add_graph("p", g)
            assert s.max_span("p") == 0
            (back,) = s.load_graphs("p")
        assert back.num_edges == 0 and list(back.labels) == ["A"]

    def test_load_training_data_matches_source(self, train, store):
        back = store.load_training_data()
        assert list(back.behaviors) == list(train.behaviors)
        for name in train.behaviors:
            assert [graph_facts(g) for g in back.behavior(name)] == [
                graph_facts(g) for g in train.behavior(name)
            ]
        assert [graph_facts(g) for g in back.background] == [
            graph_facts(g) for g in train.background
        ]
        assert back.config.instances_per_behavior == 3
        assert back.config.background_graphs == 6

    def test_labels_interned_once(self, tmp_path):
        g1 = build_graph([(0, 1, 0)], labels=["A", "B"], name="x")
        g2 = build_graph([(0, 1, 0)], labels=["B", "A"], name="y")
        with CorpusStore.create(tmp_path / "s.store") as s:
            s.add_graph("p", g1)
            s.add_graph("p", g2)
            assert s.info()["labels"] == 2

    def test_iter_graph_labels_skips_edge_pages(self, train, store):
        name = train.config.behaviors[0]
        assert list(store.iter_graph_labels(name)) == [
            list(g.labels) for g in train.behavior(name)
        ]

    def test_catalog_counters(self, train, store):
        assert store.behaviors() == list(train.config.behaviors)
        assert store.graph_count(BACKGROUND_PARTITION, "background") == 6
        name = train.config.behaviors[0]
        graphs = train.behavior(name)
        t_min = min(g.edges[0].time for g in graphs)
        t_max = max(g.edges[-1].time for g in graphs)
        assert store.extent(name) == (t_min, t_max)
        assert store.max_span(name) == max(
            g.edges[-1].time - g.edges[0].time for g in graphs
        )


class TestWindows:
    @pytest.mark.parametrize("page_edges", [2, 5, 4096])
    def test_window_matches_graph_window(self, tmp_path, page_edges):
        rng = random.Random(page_edges)
        g = random_temporal_graph(rng, n_nodes=8, n_edges=40, alphabet="ABCD")
        path = tmp_path / "s.store"
        with CorpusStore.create(path, page_edges=page_edges) as s:
            s.add_graph("mon", g, kind="log")
        with CorpusStore.open(path) as s:
            for _ in range(25):
                a = rng.randrange(-5, 45)
                b = a + rng.randrange(0, 20)
                assert graph_facts(s.window("mon", a, b)) == graph_facts(
                    g.window(a, b)
                )

    def test_window_requires_single_graph_partition(self, store):
        name = store.behaviors()[0]
        with pytest.raises(DatasetError, match="single-graph"):
            store.window(name, 0, 10)
        with pytest.raises(DatasetError, match="no partition"):
            store.window("nope", 0, 10)

    def test_iter_windows_sweep(self, tmp_path):
        g = build_graph(
            [(0, 1, t) for t in range(20)], labels=["A", "B"], name="mon"
        )
        with CorpusStore.create(tmp_path / "s.store") as s:
            s.add_graph("mon", g, kind="log")
            starts = []
            union = set()
            for t, window in s.iter_windows("mon", width=6, overlap=2):
                starts.append(t)
                union.update(e.time for e in window.edges)
            assert starts == [0, 4, 8, 12, 16]
            assert union == set(range(20))

    def test_iter_windows_validation(self, store):
        name = store.behaviors()[0]
        with pytest.raises(DatasetError, match="width"):
            next(store.iter_windows(name, width=0))
        with pytest.raises(DatasetError, match="overlap"):
            next(store.iter_windows(name, width=4, overlap=4))


class TestEvents:
    EVENTS = [
        SyscallEvent(0, "open", "p1", "proc", "f1", "file"),
        SyscallEvent(2, "read", "p1", "proc", "f1", "file"),
        SyscallEvent(5, "connect", "p1", "proc", "s1", "sock"),
        SyscallEvent(7, "open", "p2", "proc", "f2", "file"),
        SyscallEvent(9, "close", "p2", "proc", "f2", "file"),
    ]

    def test_event_roundtrip_and_range(self, tmp_path):
        path = tmp_path / "s.store"
        with CorpusStore.create(path, page_edges=2) as s:
            s.add_events("mon", self.EVENTS)
        with CorpusStore.open(path) as s:
            assert list(s.iter_events("mon")) == self.EVENTS
            assert list(s.iter_events("mon", start=2, end=7)) == [
                e for e in self.EVENTS if 2 <= e.time <= 7
            ]
            assert s.event_count("mon") == 5

    def test_event_batches_rechunk(self, tmp_path):
        path = tmp_path / "s.store"
        with CorpusStore.create(path, page_edges=3) as s:
            s.add_events("mon", self.EVENTS)
            batches = list(s.iter_event_batches("mon", 2))
        assert [len(b) for b in batches] == [2, 2, 1]
        assert [e for b in batches for e in b] == self.EVENTS
        with CorpusStore.open(path) as s:
            with pytest.raises(DatasetError, match="batch_size"):
                next(s.iter_event_batches("mon", 0))

    def test_append_continues_pages(self, tmp_path):
        with CorpusStore.create(tmp_path / "s.store", page_edges=2) as s:
            s.add_events("mon", self.EVENTS[:3])
            s.add_events("mon", self.EVENTS[3:])
            assert list(s.iter_events("mon")) == self.EVENTS

    def test_missing_log_raises(self, store):
        with pytest.raises(DatasetError, match="no event log"):
            next(store.iter_events("nope"))


class TestPairIndex:
    def test_pair_labels_matches_edges(self, train, store):
        name = train.config.behaviors[0]
        expected = {
            (g.label(e.src), g.label(e.dst))
            for g in train.behavior(name)
            for e in g.edges
        }
        assert store.pair_labels(name) == expected

    def test_graphs_with_pair_counts(self, train, store):
        g = train.background[0]
        edge = g.edges[0]
        pair = (g.label(edge.src), g.label(edge.dst))
        hits = store.graphs_with_pair(*pair)
        row = next(
            (p, n, c)
            for p, n, c in hits
            if p == BACKGROUND_PARTITION and n == g.name
        )
        brute = sum(
            1
            for e in g.edges
            if (g.label(e.src), g.label(e.dst)) == pair
        )
        assert row[2] == brute

    def test_absent_pair_is_empty(self, store):
        assert store.graphs_with_pair("no-such-label", "proc:sshd") == []


class TestMiningIdentity:
    BEHAVIOR = "gzip-decompress"

    @pytest.fixture(scope="class")
    def reference(self, store):
        ws = Workspace()
        train = store.load_training_data([self.BEHAVIOR])
        return ws.mine(train, behaviors=[self.BEHAVIOR], config=FAST, top_k=3)

    def test_store_mining_matches_in_memory(self, store, reference):
        mined = Workspace().mine(
            store=store, behaviors=[self.BEHAVIOR], config=FAST, top_k=3
        )
        assert model_content(mined) == model_content(reference)

    def test_store_mining_by_path(self, store, reference):
        mined = Workspace().mine(
            store=str(store.path),
            behaviors=[self.BEHAVIOR],
            config=FAST,
            top_k=3,
            memory_budget_mb=64,
        )
        assert model_content(mined) == model_content(reference)

    def test_store_mining_worker_counts(self, store, reference):
        # store-vs-memory identity must hold per worker configuration;
        # exploration counters legitimately differ across seed shard
        # counts (the parallel contract is mining_fingerprint, which
        # covers patterns and scores), so sharded runs are compared
        # against an in-memory run at the same setting.
        fanned = Workspace().mine(
            store=store,
            behaviors=[self.BEHAVIOR],
            config=FAST,
            top_k=3,
            workers=2,
        )
        assert model_content(fanned) == model_content(reference)
        train = store.load_training_data([self.BEHAVIOR])
        for seed_workers in (2, 3):
            sharded = Workspace().mine(
                store=store,
                behaviors=[self.BEHAVIOR],
                config=FAST,
                top_k=3,
                seed_workers=seed_workers,
            )
            in_memory = Workspace().mine(
                train,
                behaviors=[self.BEHAVIOR],
                config=FAST,
                top_k=3,
                seed_workers=seed_workers,
            )
            assert model_content(sharded) == model_content(in_memory)
            assert sharded.record(self.BEHAVIOR).patterns == reference.record(
                self.BEHAVIOR
            ).patterns

    def test_worker_modes_do_not_compose(self, store):
        with pytest.raises(MiningError):
            mine_all_behaviors_from_store(
                store,
                behaviors=[self.BEHAVIOR],
                config=FAST,
                workers=2,
                seed_workers=2,
            )

    def test_mine_needs_exactly_one_source(self, store):
        ws = Workspace()
        with pytest.raises(DatasetError, match="exactly one"):
            ws.mine()
        with pytest.raises(DatasetError, match="exactly one"):
            ws.mine(store.load_training_data([self.BEHAVIOR]), store=store)

    def test_missing_behavior_partition(self, store):
        with pytest.raises(DatasetError, match="missing"):
            store.load_training_data(["nope"])


class TestQueryIdentity:
    @pytest.fixture(scope="class")
    def setup(self, store, tmp_path_factory):
        ws = Workspace()
        model = ws.mine(
            store=store, behaviors=["sshd-login"], config=FAST, top_k=2
        )
        test = ws.generate_test(instances=12, seed=3)
        path = tmp_path_factory.mktemp("qstore") / "mon.store"
        with CorpusStore.create(path, page_edges=64) as builder:
            builder.add_log("monitor", graph=test.graph, events=test.events)
        return ws, model, test, path

    def test_store_query_matches_batch(self, setup):
        ws, model, test, path = setup
        batch = ws.query(model, test.graph)
        stored = ws.query(model, store=path, log="monitor")
        for name in batch.behaviors:
            assert stored.behaviors[name].spans == batch.behaviors[name].spans

    def test_store_query_without_prefilter_matches(self, setup):
        ws, model, test, path = setup
        batch = ws.query(model, test.graph, use_index=False)
        stored = ws.query(
            model, store=path, log="monitor", use_index=False
        )
        for name in batch.behaviors:
            assert stored.behaviors[name].spans == batch.behaviors[name].spans

    def test_narrow_scan_width_rejected(self, setup):
        ws, model, _test, path = setup
        cap = max(q.max_span for q in model.queries(["sshd-login"]))
        with pytest.raises(DatasetError, match="scan_width"):
            ws.query(model, store=path, log="monitor", scan_width=cap)

    def test_query_needs_exactly_one_source(self, setup):
        ws, model, test, path = setup
        with pytest.raises(DatasetError, match="exactly one"):
            ws.query(model)
        with pytest.raises(DatasetError, match="exactly one"):
            ws.query(model, test.graph, store=path, log="monitor")
        with pytest.raises(DatasetError, match="log="):
            ws.query(model, store=path)


class TestIntegrity:
    def test_verify_clean_store(self, store):
        counts = store.verify()
        assert counts["graphs"] == store.info()["graphs"]

    def test_verify_detects_flipped_page(self, tmp_path):
        path = tmp_path / "s.store"
        g = build_graph([(0, 1, 0), (1, 0, 4)], labels=["A", "B"], name="g")
        with CorpusStore.create(path) as s:
            s.add_graph("p", g)
        conn = sqlite3.connect(path)
        blob = conn.execute("SELECT src FROM edge_pages").fetchone()[0]
        tampered = bytes([blob[0] ^ 1]) + blob[1:]
        with conn:
            conn.execute("UPDATE edge_pages SET src = ?", (tampered,))
        conn.close()
        with CorpusStore.open(path) as s:
            with pytest.raises(DatasetError, match="checksum"):
                s.verify()

    def test_verify_detects_tampered_events(self, tmp_path):
        path = tmp_path / "s.store"
        with CorpusStore.create(path) as s:
            s.add_events("mon", TestEvents.EVENTS)
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("UPDATE event_pages SET checksum = 'bogus'")
        conn.close()
        with CorpusStore.open(path) as s:
            with pytest.raises(DatasetError, match="checksum"):
                s.verify()


class TestErrors:
    def test_open_missing(self, tmp_path):
        with pytest.raises(DatasetError, match="missing"):
            CorpusStore.open(tmp_path / "nope.store")

    def test_open_not_a_store(self, tmp_path):
        path = tmp_path / "junk.store"
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("CREATE TABLE t (x)")
        conn.close()
        with pytest.raises(DatasetError):
            CorpusStore.open(path)
        path2 = tmp_path / "text.store"
        path2.write_text("not sqlite at all")
        with pytest.raises(DatasetError):
            CorpusStore.open(path2)

    def test_future_schema_rejected(self, tmp_path):
        path = tmp_path / "s.store"
        CorpusStore.create(path).close()
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(STORE_SCHEMA_VERSION + 1),),
            )
        conn.close()
        with pytest.raises(DatasetError, match="newer than"):
            CorpusStore.open(path)

    def test_create_refuses_existing(self, tmp_path):
        path = tmp_path / "s.store"
        CorpusStore.create(path).close()
        with pytest.raises(DatasetError, match="already exists"):
            CorpusStore.create(path)
        CorpusStore.create(path, overwrite=True).close()

    def test_create_validates_page_edges(self, tmp_path):
        with pytest.raises(DatasetError, match="page_edges"):
            CorpusStore.create(tmp_path / "s.store", page_edges=0)

    def test_read_only_rejects_writes(self, store):
        g = build_graph([(0, 1, 0)], labels=["A", "B"])
        with pytest.raises(DatasetError, match="read-only"):
            store.add_graph("p", g)
        with pytest.raises(DatasetError, match="read-only"):
            store.add_events("mon", TestEvents.EVENTS)

    def test_reserved_partition_name(self, tmp_path):
        g = build_graph([(0, 1, 0)], labels=["A", "B"])
        with CorpusStore.create(tmp_path / "s.store") as s:
            with pytest.raises(DatasetError, match="reserved"):
                s.add_graph(BACKGROUND_PARTITION, g, kind="behavior")
            with pytest.raises(DatasetError, match="kind"):
                s.add_graph("p", g, kind="mystery")

    def test_missing_partition_probes(self, store):
        with pytest.raises(DatasetError, match="no partition"):
            store.max_span("nope")
        with pytest.raises(DatasetError):
            store.extent("nope")
