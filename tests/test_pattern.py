"""Unit tests for :mod:`repro.core.pattern`."""

import pytest

from repro.core.errors import PatternError
from repro.core.pattern import TemporalPattern

from conftest import build_graph


class TestConstruction:
    def test_single_edge(self):
        p = TemporalPattern.single_edge("A", "B")
        assert p.num_nodes == 2
        assert p.num_edges == 1
        assert p.edges == ((0, 1),)
        assert p.labels == ("A", "B")

    def test_single_edge_same_labels_two_nodes(self):
        p = TemporalPattern.single_edge("A", "A")
        assert p.num_nodes == 2

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternError):
            TemporalPattern((), ())

    def test_self_loop_rejected(self):
        with pytest.raises(PatternError):
            TemporalPattern(("A",), ((0, 0),))

    def test_non_first_visit_order_rejected(self):
        # second node appears before first is ever visited
        with pytest.raises(PatternError):
            TemporalPattern(("A", "B", "C"), ((1, 2), (0, 1)))

    def test_disconnected_edge_rejected(self):
        with pytest.raises(PatternError):
            TemporalPattern(("A", "B", "C", "D"), ((0, 1), (2, 3)))

    def test_isolated_node_rejected(self):
        with pytest.raises(PatternError):
            TemporalPattern(("A", "B", "C"), ((0, 1),))

    def test_unknown_node_rejected(self):
        with pytest.raises(PatternError):
            TemporalPattern(("A", "B"), ((0, 7),))


class TestGrowth:
    def test_forward_growth(self):
        p = TemporalPattern.single_edge("A", "B").grow_forward(1, "C")
        assert p.edges == ((0, 1), (1, 2))
        assert p.labels == ("A", "B", "C")

    def test_backward_growth(self):
        p = TemporalPattern.single_edge("A", "B").grow_backward("C", 0)
        assert p.edges == ((0, 1), (2, 0))
        assert p.labels == ("A", "B", "C")

    def test_inward_growth_allows_multi_edges(self):
        p = TemporalPattern.single_edge("A", "B").grow_inward(0, 1)
        assert p.edges == ((0, 1), (0, 1))
        assert p.num_nodes == 2

    def test_inward_growth_reverse_direction(self):
        p = TemporalPattern.single_edge("A", "B").grow_inward(1, 0)
        assert p.edges == ((0, 1), (1, 0))

    def test_inward_self_loop_rejected(self):
        p = TemporalPattern.single_edge("A", "B")
        with pytest.raises(PatternError):
            p.grow_inward(1, 1)

    def test_growth_from_unknown_node_rejected(self):
        p = TemporalPattern.single_edge("A", "B")
        with pytest.raises(PatternError):
            p.grow_forward(5, "C")
        with pytest.raises(PatternError):
            p.grow_backward("C", 5)

    def test_growth_produces_new_objects(self):
        p = TemporalPattern.single_edge("A", "B")
        q = p.grow_forward(0, "C")
        assert p.num_edges == 1
        assert q is not p

    def test_figure4_consecutive_growth(self):
        # Figure 4: g1 (A->B) grows into g4 step by step.
        g1 = TemporalPattern.single_edge("A", "B")
        g2 = g1.grow_forward(0, "C")
        g3 = g2.grow_inward(0, 1)
        g4 = g3.grow_inward(2, 1)
        assert g4.num_edges == 4
        assert g4.edges == ((0, 1), (0, 2), (0, 1), (2, 1))


class TestPrefix:
    def test_prefix_is_growth_ancestor(self):
        p = (
            TemporalPattern.single_edge("A", "B")
            .grow_forward(1, "C")
            .grow_backward("D", 0)
        )
        assert p.prefix(1) == TemporalPattern.single_edge("A", "B")
        assert p.prefix(2) == TemporalPattern.single_edge("A", "B").grow_forward(1, "C")
        assert p.prefix(3) == p

    def test_prefix_out_of_range(self):
        p = TemporalPattern.single_edge("A", "B")
        with pytest.raises(PatternError):
            p.prefix(0)
        with pytest.raises(PatternError):
            p.prefix(2)


class TestIdentity:
    def test_equality_and_hash(self):
        p = TemporalPattern(("A", "B", "C"), ((0, 1), (1, 2)))
        q = TemporalPattern(("A", "B", "C"), ((0, 1), (1, 2)))
        assert p == q
        assert hash(p) == hash(q)
        assert p.key() == q.key()

    def test_order_matters(self):
        p = TemporalPattern(("A", "B", "C"), ((0, 1), (0, 2)))
        q = TemporalPattern(("A", "C", "B"), ((0, 1), (0, 2)))
        assert p != q

    def test_not_equal_to_other_types(self):
        p = TemporalPattern.single_edge("A", "B")
        assert p != "A->B"


class TestFromGraph:
    def test_from_graph_normalizes(self, figure3_graph):
        p = TemporalPattern.from_graph(figure3_graph)
        assert p.num_edges == 6
        assert p.labels == ("A", "B", "C", "E")
        # timestamps implicit: edge order matches graph's temporal order
        assert p.edges[0] == (0, 1)

    def test_from_graph_renumbers_first_visit(self):
        g = build_graph([(2, 0, 0), (0, 1, 1)], labels=["X", "Y", "Z"])
        p = TemporalPattern.from_graph(g)
        # first visited: node2 (Z), then node0 (X), then node1 (Y)
        assert p.labels == ("Z", "X", "Y")
        assert p.edges == ((0, 1), (1, 2))

    def test_from_graph_rejects_non_t_connected(self):
        g = build_graph([(0, 1, 0), (2, 3, 1), (1, 2, 2)])
        with pytest.raises(PatternError):
            TemporalPattern.from_graph(g)


class TestViews:
    def test_degrees(self):
        p = TemporalPattern(("A", "B", "C"), ((0, 1), (0, 2), (0, 1)))
        assert p.out_degrees == (3, 0, 0)
        assert p.in_degrees == (0, 2, 1)

    def test_iter_timed_edges(self):
        p = TemporalPattern.single_edge("A", "B").grow_forward(1, "C")
        assert list(p.iter_timed_edges()) == [(0, 1, 1), (1, 2, 2)]

    def test_as_temporal_graph_roundtrip(self):
        p = TemporalPattern(("A", "B", "C"), ((0, 1), (1, 2), (0, 2)))
        g = p.as_temporal_graph()
        assert TemporalPattern.from_graph(g) == p

    def test_describe_mentions_edges(self):
        p = TemporalPattern.single_edge("A", "B")
        text = p.describe()
        assert "t=1" in text and "A" in text and "B" in text

    def test_label_set(self):
        p = TemporalPattern(("A", "B", "A"), ((0, 1), (1, 2)))
        assert p.label_set() == {"A", "B"}
