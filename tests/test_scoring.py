"""Tests for discriminative score functions, including the partial
(anti-)monotonicity required by Problem 1 (property-based)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.scoring import GTest, InformationGain, LogRatio, resolve_score

FUNCTIONS = [
    pytest.param(LogRatio(), id="log-ratio"),
    pytest.param(GTest(n_pos=20), id="g-test"),
    pytest.param(InformationGain(n_pos=20, n_neg=20), id="info-gain"),
]

freqs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestPartialMonotonicity:
    """F(x, y): larger x (fixed y) and smaller y (fixed x) never hurt."""

    @pytest.mark.parametrize("fn", FUNCTIONS)
    @given(x=freqs, y1=freqs, y2=freqs)
    def test_anti_monotone_in_negative_freq(self, fn, x, y1, y2):
        lo, hi = sorted((y1, y2))
        # monotonicity holds on the discriminative region x >= y
        if x >= hi:
            assert fn.score(x, lo) >= fn.score(x, hi) - 1e-9

    @pytest.mark.parametrize("fn", FUNCTIONS)
    @given(x1=freqs, x2=freqs, y=freqs)
    def test_monotone_in_positive_freq(self, fn, x1, x2, y):
        lo, hi = sorted((x1, x2))
        if lo >= y:
            assert fn.score(hi, y) >= fn.score(lo, y) - 1e-9

    @pytest.mark.parametrize("fn", FUNCTIONS)
    @given(x=freqs, y=freqs)
    def test_upper_bound_dominates(self, fn, x, y):
        if x >= y:
            assert fn.upper_bound(x) >= fn.score(x, y) - 1e-9


class TestLogRatio:
    def test_known_value(self):
        fn = LogRatio(epsilon=1e-6)
        assert fn.score(1.0, 0.0) == pytest.approx(math.log(1.0 / 1e-6))

    def test_zero_positive_is_minus_inf(self):
        assert LogRatio().score(0.0, 0.5) == float("-inf")

    def test_callable_protocol(self):
        fn = LogRatio()
        assert fn(0.5, 0.1) == fn.score(0.5, 0.1)


class TestGTest:
    def test_sign_flips_for_negative_skew(self):
        fn = GTest(n_pos=10)
        assert fn.score(0.9, 0.1) > 0
        assert fn.score(0.1, 0.9) < 0

    def test_scales_with_n_pos(self):
        assert GTest(n_pos=20).score(0.9, 0.1) == pytest.approx(
            2 * GTest(n_pos=10).score(0.9, 0.1)
        )


class TestInformationGain:
    def test_perfect_separator_maximizes(self):
        fn = InformationGain(n_pos=10, n_neg=10)
        perfect = fn.score(1.0, 0.0)
        partial = fn.score(0.8, 0.2)
        assert perfect > partial > 0

    def test_uninformative_pattern_scores_zero(self):
        fn = InformationGain(n_pos=10, n_neg=10)
        assert fn.score(1.0, 1.0) == pytest.approx(0.0)
        assert fn.score(0.0, 0.0) == pytest.approx(0.0)


class TestResolve:
    def test_resolve_names(self):
        assert isinstance(resolve_score("log-ratio"), LogRatio)
        assert isinstance(resolve_score("gtest", n_pos=5), GTest)
        assert isinstance(resolve_score("info_gain", 5, 7), InformationGain)

    def test_resolve_instance_passthrough(self):
        fn = LogRatio(epsilon=1e-3)
        assert resolve_score(fn) is fn

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError):
            resolve_score("chi-squared")

    def test_resolve_sets_sizes(self):
        fn = resolve_score("g-test", n_pos=42)
        assert fn.n_pos == 42
