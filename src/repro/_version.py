"""Single-source library version.

The canonical version lives in ``pyproject.toml``; installed copies read
it back through :mod:`importlib.metadata`.  Source-tree use
(``PYTHONPATH=src`` without an install) has no distribution metadata, so
a fallback constant — kept in lockstep with ``pyproject.toml`` — covers
that case.  Everything else (``repro.__version__``, the CLI ``--version``
flag, model-bundle provenance) imports from here.
"""

from __future__ import annotations

from importlib.metadata import PackageNotFoundError, version as _dist_version

#: Fallback for source-tree runs; must match ``project.version`` in
#: ``pyproject.toml``.
_FALLBACK_VERSION = "1.0.0"

try:
    __version__ = _dist_version("repro")
except PackageNotFoundError:  # not installed — running from the source tree
    __version__ = _FALLBACK_VERSION
