"""Command-line interface: generate data, mine queries, search logs, serve.

Usage (after install)::

    python -m repro generate --out data/ --instances 10 --background 30
    python -m repro mine --train data/ --behavior sshd-login --max-edges 6 \\
        --save-queries queries.jsonl
    python -m repro experiment --train data/ -j 4
    python -m repro detect --queries queries.jsonl --instances 24 \\
        --batch-size 256
    python -m repro behaviors

The CLI wraps the same pipeline the benchmarks use: datasets are stored
as jsonl graph files (one directory per corpus), mined queries print as
human-readable pattern listings.  ``mine --index/--no-index`` toggles the
graph-index candidate prefilter (identical results, different speed);
``mine --workers/-j N`` shards the seed search across N processes via
:class:`~repro.core.parallel.ParallelMiner` (identical results again),
and ``experiment`` mines every behavior of a corpus with behavior-level
fan-out.  ``detect`` replays a recorded (or synthesized) syscall log as a
stream into the :class:`~repro.serving.service.DetectionService` and
reports per-batch latency and sustained events/sec throughput.  Both
``mine`` and ``detect`` accept ``--profile``, which wraps the run in
``cProfile`` and appends the top-20 cumulative hot spots to the report —
perf PRs should start from that data.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.miner import MinerConfig, TGMiner
from repro.core.parallel import ParallelMiner
from repro.core.ranking import InterestModel, rank_patterns
from repro.datasets.io import load_graphs_jsonl, save_graphs_jsonl
from repro.syscall import BEHAVIOR_NAMES, SIZE_CLASSES, build_training_data

__all__ = ["main", "build_parser"]


def _worker_count(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError("worker count must be >= 0")
    return count


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TGMiner behavior-query discovery (Zong et al., VLDB 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a training corpus as jsonl files")
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--instances", type=int, default=10, help="runs per behavior")
    gen.add_argument("--background", type=int, default=30, help="background graphs")
    gen.add_argument("--seed", type=int, default=7)

    mine = sub.add_parser("mine", help="mine behavior queries for one behavior")
    mine.add_argument("--train", required=True, help="corpus directory from `generate`")
    mine.add_argument("--behavior", required=True, choices=sorted(BEHAVIOR_NAMES))
    mine.add_argument("--max-edges", type=int, default=6)
    mine.add_argument("--min-support", type=float, default=0.7)
    mine.add_argument("--top-k", type=int, default=5)
    mine.add_argument("--max-seconds", type=float, default=None)
    mine.add_argument(
        "--index",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="use the graph-index candidate prefilter (--no-index disables; "
        "mined patterns are identical either way; the five paper-baseline "
        "--variant values always run unfiltered)",
    )
    mine.add_argument(
        "--variant",
        default="TGMiner",
        choices=[
            "TGMiner",
            "SubPrune",
            "SupPrune",
            "PruneGI",
            "PruneVF2",
            "LinearScan",
        ],
    )
    mine.add_argument(
        "--workers",
        "-j",
        type=_worker_count,
        default=1,
        help="shard the seed search across N processes; 0 = one per CPU "
        "(mined patterns are byte-identical to the serial run for any "
        "N, unless a --max-seconds cap cut either search short)",
    )
    mine.add_argument(
        "--save-queries",
        default=None,
        metavar="PATH",
        help="also save the top-k ranked patterns as a behavior-query "
        "jsonl file consumable by `detect --queries`",
    )
    mine.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top-20 cumulative hot "
        "spots after the normal output (perf-work reconnaissance)",
    )

    exp = sub.add_parser(
        "experiment",
        help="mine every behavior in a corpus, optionally fanning out workers",
    )
    exp.add_argument("--train", required=True, help="corpus directory from `generate`")
    exp.add_argument(
        "--behaviors",
        nargs="*",
        default=None,
        choices=sorted(BEHAVIOR_NAMES),
        help="behaviors to mine (default: every behavior file in the corpus)",
    )
    exp.add_argument("--max-edges", type=int, default=6)
    exp.add_argument("--min-support", type=float, default=0.7)
    exp.add_argument("--max-seconds", type=float, default=None)
    exp.add_argument(
        "--workers",
        "-j",
        type=_worker_count,
        default=1,
        help="mine up to N behaviors concurrently (0 = one per CPU)",
    )
    exp.add_argument("--json", dest="json_out", default=None, help="write results JSON")

    det = sub.add_parser(
        "detect",
        aliases=["serve"],
        help="replay a syscall log as a stream and detect behavior instances",
    )
    det.add_argument(
        "--queries",
        required=True,
        help="behavior-query jsonl from `mine --save-queries`",
    )
    source = det.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--log", help="event-log jsonl to replay (datasets.io.save_events_jsonl)"
    )
    source.add_argument(
        "--instances",
        type=int,
        help="synthesize a busy-host test log with N behavior instances",
    )
    det.add_argument("--seed", type=int, default=11, help="synthesized-log seed")
    det.add_argument(
        "--save-log", default=None, help="also write the replayed log as jsonl"
    )
    det.add_argument(
        "--batch-size", type=int, default=256, help="events per ingest batch"
    )
    det.add_argument(
        "--window",
        type=int,
        default=None,
        help="eviction window on the event-time axis "
        "(default: the widest registered query span)",
    )
    det.add_argument(
        "--index",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="use the registry's shared signature prefilter "
        "(--no-index disables; detections are identical either way)",
    )
    det.add_argument("--json", dest="json_out", default=None, help="write summary JSON")
    det.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top-20 cumulative hot "
        "spots after the normal output (perf-work reconnaissance)",
    )

    sub.add_parser("behaviors", help="list the 12 behaviors and size classes")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    data = build_training_data(
        instances_per_behavior=args.instances,
        background_graphs=args.background,
        seed=args.seed,
    )
    total = 0
    for name in BEHAVIOR_NAMES:
        total += save_graphs_jsonl(data.behavior(name), out / f"{name}.jsonl")
    total += save_graphs_jsonl(data.background, out / "background.jsonl")
    print(f"wrote {total} graphs to {out}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    from repro.core.miner import miner_variant

    root = Path(args.train)
    pos_path = root / f"{args.behavior}.jsonl"
    bg_path = root / "background.jsonl"
    if not pos_path.exists() or not bg_path.exists():
        print(f"error: corpus files missing under {root}", file=sys.stderr)
        return 2
    positives = load_graphs_jsonl(pos_path)
    background = load_graphs_jsonl(bg_path)
    config = miner_variant(
        args.variant,
        MinerConfig(
            max_edges=args.max_edges,
            min_pos_support=args.min_support,
            max_seconds=args.max_seconds,
            index_prefilter=args.index,
        ),
    )
    if args.workers != 1:
        # 0 = one worker per CPU, matching `experiment -j 0`
        miner = ParallelMiner(config, workers=args.workers or None)
        workers = miner.workers
    else:
        miner = TGMiner(config)
        workers = 1
    result = miner.mine(positives, background)
    print(
        f"explored {result.stats.patterns_explored} patterns in "
        f"{result.stats.elapsed_seconds:.2f}s; best score {result.best_score:.3f}"
        + (f" ({workers} workers)" if workers > 1 else "")
    )
    if config.index_prefilter:
        print(
            f"index prefilter: {result.stats.index_prefilter_skips} of "
            f"{result.stats.subgraph_tests} candidate subgraph tests "
            "answered by signature alone"
        )
    corpus = positives + background
    model = InterestModel.fit(corpus)
    ranked = rank_patterns(result.best, model)[: args.top_k]
    for rank, mined in enumerate(ranked, 1):
        print(
            f"\n#{rank} (score {mined.score:.3f}, pos {mined.pos_freq:.2f}, "
            f"neg {mined.neg_freq:.2f})"
        )
        print(mined.pattern.describe())
    if args.save_queries:
        from repro.experiments.harness import span_cap_for_graphs
        from repro.serving.registry import BehaviorQuery, save_queries_jsonl

        cap = span_cap_for_graphs(positives)
        count = save_queries_jsonl(
            [
                BehaviorQuery(
                    name=f"{args.behavior}#{rank}",
                    pattern=mined.pattern,
                    max_span=cap,
                )
                for rank, mined in enumerate(ranked, 1)
            ],
            args.save_queries,
        )
        print(f"\nwrote {count} behavior queries to {args.save_queries}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.harness import mine_all_behaviors
    from repro.syscall.collector import TrainingConfig, TrainingData

    root = Path(args.train)
    bg_path = root / "background.jsonl"
    if not bg_path.exists():
        print(f"error: corpus files missing under {root}", file=sys.stderr)
        return 2
    if args.behaviors:
        names = list(args.behaviors)
    else:
        names = sorted(
            path.stem
            for path in root.glob("*.jsonl")
            if path.stem in BEHAVIOR_NAMES
        )
    if not names:
        print(f"error: no behavior files under {root}", file=sys.stderr)
        return 2
    missing = [n for n in names if not (root / f"{n}.jsonl").exists()]
    if missing:
        print(f"error: behavior files missing: {', '.join(missing)}", file=sys.stderr)
        return 2
    train = TrainingData(
        config=TrainingConfig(behaviors=tuple(names)),
        behaviors={n: load_graphs_jsonl(root / f"{n}.jsonl") for n in names},
        background=load_graphs_jsonl(bg_path),
    )
    config = MinerConfig(
        max_edges=args.max_edges,
        min_pos_support=args.min_support,
        max_seconds=args.max_seconds,
    )
    workers = args.workers if args.workers != 0 else None
    started = time.perf_counter()
    results = mine_all_behaviors(train, names, config, workers=workers)
    wall = time.perf_counter() - started
    print(f"{'behavior':22s} {'best':>8s} {'patterns':>9s} {'seconds':>8s}")
    for name, result in results.items():
        print(
            f"{name:22s} {result.best_score:8.3f} "
            f"{result.stats.patterns_explored:9d} "
            f"{result.stats.elapsed_seconds:8.2f}"
        )
    print(f"mined {len(results)} behaviors in {wall:.2f}s wall-clock")
    if args.json_out:
        payload = {
            "workers": args.workers,
            "wall_seconds": wall,
            "behaviors": {
                name: {
                    # -inf (nothing mined) is not valid JSON; emit null
                    "best_score": (
                        result.best_score
                        if result.best_score != float("-inf")
                        else None
                    ),
                    "patterns_explored": result.stats.patterns_explored,
                    "elapsed_seconds": result.stats.elapsed_seconds,
                    "timed_out": result.stats.timed_out,
                    "co_optimal_patterns": len(result.best),
                }
                for name, result in results.items()
            },
        }
        Path(args.json_out).write_text(json.dumps(payload, indent=2))
        print(f"wrote {args.json_out}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.core.errors import ReproError
    from repro.datasets.io import load_events_jsonl, save_events_jsonl
    from repro.serving.registry import load_queries_jsonl
    from repro.serving.service import DetectionService
    from repro.syscall.collector import build_test_data

    queries_path = Path(args.queries)
    if not queries_path.exists():
        print(f"error: query file missing: {queries_path}", file=sys.stderr)
        return 2
    queries = load_queries_jsonl(queries_path)
    if not queries:
        print(f"error: no queries in {queries_path}", file=sys.stderr)
        return 2
    if args.log:
        log_path = Path(args.log)
        if not log_path.exists():
            print(f"error: event log missing: {log_path}", file=sys.stderr)
            return 2
        events = load_events_jsonl(log_path)
    else:
        if args.instances < 1:
            print("error: --instances must be >= 1", file=sys.stderr)
            return 2
        events = build_test_data(instances=args.instances, seed=args.seed).events
    if args.save_log:
        save_events_jsonl(events, args.save_log)
        print(f"wrote {len(events)} events to {args.save_log}")

    service = DetectionService(window_span=args.window, use_prefilter=args.index)
    try:
        for query in queries:
            service.register(query)
        per_query: dict[str, int] = {q.name: 0 for q in queries}
        for _batch, detections in service.replay(events, args.batch_size):
            for detection in detections:
                per_query[detection.query] += 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    stats = service.stats
    p50 = stats.latency_percentile(0.5)
    p95 = stats.latency_percentile(0.95)
    late = service.graph.stats.late_dropped
    print(
        f"replayed {stats.events} events in {stats.batches} batches "
        f"({args.batch_size}/batch), window span "
        f"{service.window_span}, {len(queries)} registered queries"
        + (f"; {late} events arrived too late and were DROPPED" if late else "")
    )
    print(
        f"throughput {stats.events_per_second:,.0f} events/s; per-batch "
        f"latency p50 {p50 * 1000:.2f}ms p95 {p95 * 1000:.2f}ms "
        f"max {max(stats.batch_seconds, default=0.0) * 1000:.2f}ms"
    )
    print(
        f"prefilter answered {stats.queries_prefiltered} of "
        f"{stats.queries_prefiltered + stats.queries_evaluated} query-batch "
        "evaluations by signature alone"
    )
    print(f"\n{stats.detections} detections:")
    for name, count in per_query.items():
        print(f"  {name:30s} {count:6d}")
    if args.json_out:
        payload = {
            "events": stats.events,
            "batches": stats.batches,
            "batch_size": args.batch_size,
            "window_span": service.window_span,
            "queries": len(queries),
            "detections": stats.detections,
            "per_query": per_query,
            "events_per_second": stats.events_per_second,
            "latency_p50_ms": p50 * 1000,
            "latency_p95_ms": p95 * 1000,
            "queries_prefiltered": stats.queries_prefiltered,
            "queries_evaluated": stats.queries_evaluated,
            "evicted": service.graph.stats.evicted,
            "late_dropped": late,
        }
        Path(args.json_out).write_text(json.dumps(payload, indent=2))
        print(f"wrote {args.json_out}")
    return 0


def _cmd_behaviors(_args: argparse.Namespace) -> int:
    for cls, names in SIZE_CLASSES.items():
        print(f"{cls}:")
        for name in names:
            print(f"  {name}")
    return 0


def _run_profiled(handler, args: argparse.Namespace) -> int:
    """Run a command under cProfile, then print the top cumulative costs.

    The profile prints *after* the command's normal output so scripts
    reading the report from stdout keep working; future perf PRs start
    from this data instead of guessing at hot spots.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    code = profiler.runcall(handler, args)
    print("\n--- cProfile: top 20 by cumulative time ---")
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    return code


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "mine": _cmd_mine,
        "experiment": _cmd_experiment,
        "detect": _cmd_detect,
        "serve": _cmd_detect,
        "behaviors": _cmd_behaviors,
    }
    handler = handlers[args.command]
    if getattr(args, "profile", False):
        return _run_profiled(handler, args)
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
