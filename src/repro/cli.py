"""Command-line interface: generate data, mine queries, search logs.

Usage (after install)::

    python -m repro generate --out data/ --instances 10 --background 30
    python -m repro mine --train data/ --behavior sshd-login --max-edges 6
    python -m repro behaviors

The CLI wraps the same pipeline the benchmarks use: datasets are stored
as jsonl graph files (one directory per corpus), mined queries print as
human-readable pattern listings.  ``mine --index/--no-index`` toggles the
graph-index candidate prefilter (identical results, different speed).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.miner import MinerConfig, TGMiner
from repro.core.ranking import InterestModel, rank_patterns
from repro.datasets.io import load_graphs_jsonl, save_graphs_jsonl
from repro.syscall import BEHAVIOR_NAMES, SIZE_CLASSES, build_training_data

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TGMiner behavior-query discovery (Zong et al., VLDB 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a training corpus as jsonl files")
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--instances", type=int, default=10, help="runs per behavior")
    gen.add_argument("--background", type=int, default=30, help="background graphs")
    gen.add_argument("--seed", type=int, default=7)

    mine = sub.add_parser("mine", help="mine behavior queries for one behavior")
    mine.add_argument("--train", required=True, help="corpus directory from `generate`")
    mine.add_argument("--behavior", required=True, choices=sorted(BEHAVIOR_NAMES))
    mine.add_argument("--max-edges", type=int, default=6)
    mine.add_argument("--min-support", type=float, default=0.7)
    mine.add_argument("--top-k", type=int, default=5)
    mine.add_argument("--max-seconds", type=float, default=None)
    mine.add_argument(
        "--index",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="use the graph-index candidate prefilter (--no-index disables; "
        "mined patterns are identical either way; the five paper-baseline "
        "--variant values always run unfiltered)",
    )
    mine.add_argument(
        "--variant",
        default="TGMiner",
        choices=["TGMiner", "SubPrune", "SupPrune", "PruneGI", "PruneVF2", "LinearScan"],
    )

    sub.add_parser("behaviors", help="list the 12 behaviors and size classes")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    data = build_training_data(
        instances_per_behavior=args.instances,
        background_graphs=args.background,
        seed=args.seed,
    )
    total = 0
    for name in BEHAVIOR_NAMES:
        total += save_graphs_jsonl(data.behavior(name), out / f"{name}.jsonl")
    total += save_graphs_jsonl(data.background, out / "background.jsonl")
    print(f"wrote {total} graphs to {out}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    from repro.core.miner import miner_variant

    root = Path(args.train)
    pos_path = root / f"{args.behavior}.jsonl"
    bg_path = root / "background.jsonl"
    if not pos_path.exists() or not bg_path.exists():
        print(f"error: corpus files missing under {root}", file=sys.stderr)
        return 2
    positives = load_graphs_jsonl(pos_path)
    background = load_graphs_jsonl(bg_path)
    config = miner_variant(
        args.variant,
        MinerConfig(
            max_edges=args.max_edges,
            min_pos_support=args.min_support,
            max_seconds=args.max_seconds,
            index_prefilter=args.index,
        ),
    )
    result = TGMiner(config).mine(positives, background)
    print(
        f"explored {result.stats.patterns_explored} patterns in "
        f"{result.stats.elapsed_seconds:.2f}s; best score {result.best_score:.3f}"
    )
    if config.index_prefilter:
        print(
            f"index prefilter: {result.stats.index_prefilter_skips} of "
            f"{result.stats.subgraph_tests} candidate subgraph tests "
            "answered by signature alone"
        )
    corpus = positives + background
    model = InterestModel.fit(corpus)
    for rank, mined in enumerate(rank_patterns(result.best, model)[: args.top_k], 1):
        print(f"\n#{rank} (score {mined.score:.3f}, pos {mined.pos_freq:.2f}, "
              f"neg {mined.neg_freq:.2f})")
        print(mined.pattern.describe())
    return 0


def _cmd_behaviors(_args: argparse.Namespace) -> int:
    for cls, names in SIZE_CLASSES.items():
        print(f"{cls}:")
        for name in names:
            print(f"  {name}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "mine": _cmd_mine,
        "behaviors": _cmd_behaviors,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
