"""Command-line interface: thin argument parsing over the ``repro.api`` SDK.

Usage (after install)::

    python -m repro generate --out data/ --instances 10 --background 30
    python -m repro mine --train data/ --behavior sshd-login --max-edges 6 \\
        --save-model sshd.tgm
    python -m repro experiment --train data/ -j 4 --save-model all.tgm
    python -m repro inspect sshd.tgm
    python -m repro pack sshd.tgm sshd-bundle/
    python -m repro detect --model sshd.tgm --instances 24 --batch-size 256
    python -m repro serve --http 127.0.0.1:8750 --model sshd.tgm \\
        --registry registry/
    python -m repro behaviors
    python -m repro --version

Every subcommand is a thin wrapper over :class:`repro.api.Workspace` and
:class:`repro.api.BehaviorModel` — the CLI parses arguments and formats
reports, the SDK does the work.  ``mine --save-model`` / ``experiment
--save-model`` persist the run as one versioned model bundle;
``detect --model`` serves a bundle mined in any other process
(``--queries`` still accepts the bare jsonl format; ``mine
--save-queries`` keeps writing it but is deprecated in favor of the
bundle).  ``pack`` re-packs a bundle between its directory and ``.tgm``
zip forms, ``inspect`` prints a bundle's manifest summary.  Both
``mine`` and ``detect`` accept ``--profile``, which wraps the run in
``cProfile`` and appends the top-20 cumulative hot spots to the report —
perf PRs should start from that data.

``serve`` (formerly an alias of ``detect``) is the long-running
deployment command: it binds a model — given directly or taken from a
model registry's active version — to an HTTP address and serves the
``/v1/*`` JSON protocol (ingest, stats, model publish, canary,
promotion with hot reload; see :mod:`repro.serving.http`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro._version import __version__
from repro.api import BehaviorModel, Workspace
from repro.core.errors import ReproError
from repro.core.miner import MinerConfig, miner_variant
from repro.core.parallel import default_workers
from repro.datasets.io import load_events_jsonl, save_events_jsonl
from repro.serving.checkpoint import DEFAULT_CHECKPOINT_EVERY, CheckpointedService
from repro.serving.fleet import (
    DEFAULT_QUEUE_DEPTH,
    TENANT_SEPARATOR,
    DetectionFleet,
    simulate_tenant_streams,
    tenant_key_for_separator,
)
from repro.serving.registry import load_queries_jsonl, save_queries_jsonl
from repro.serving.service import DetectionService
from repro.syscall import BEHAVIOR_NAMES, SIZE_CLASSES

__all__ = ["main", "build_parser"]


def _worker_count(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError("worker count must be >= 0")
    return count


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TGMiner behavior-query discovery (Zong et al., VLDB 2015)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a training corpus as jsonl files")
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--instances", type=int, default=10, help="runs per behavior")
    gen.add_argument("--background", type=int, default=30, help="background graphs")
    gen.add_argument("--seed", type=int, default=7)

    corpus = sub.add_parser(
        "corpus",
        help="build, inspect, or export a disk-backed corpus store "
        "(one indexed SQLite file; mine/detect stream from it)",
    )
    csub = corpus.add_subparsers(dest="corpus_command", required=True)
    cb = csub.add_parser(
        "build", help="convert jsonl corpora and event logs into one store file"
    )
    cb.add_argument("--out", required=True, help="store file to create")
    cb.add_argument(
        "--train", default=None, help="corpus directory from `generate`"
    )
    cb.add_argument(
        "--log",
        action="append",
        default=[],
        metavar="JSONL",
        help="event-log jsonl to store under its file stem (repeatable); "
        "stored as a replayable event stream plus, when timestamps are "
        "strictly ordered, a windowed-query graph",
    )
    cb.add_argument(
        "--page-edges",
        type=int,
        default=None,
        metavar="N",
        help="edges per on-disk page blob (default 4096)",
    )
    cb.add_argument(
        "--overwrite", action="store_true", help="replace an existing store file"
    )
    ci = csub.add_parser("info", help="print a store's catalog summary")
    ci.add_argument("store", help="store file from `corpus build`")
    ci.add_argument(
        "--verify",
        action="store_true",
        help="also recompute every stored checksum (integrity check)",
    )
    ci.add_argument("--json", dest="json_out", default=None, help="write summary JSON")
    ce = csub.add_parser(
        "export", help="export a store back to a jsonl corpus directory"
    )
    ce.add_argument("store", help="store file from `corpus build`")
    ce.add_argument(
        "--out",
        required=True,
        help="corpus directory to write (event logs land under <out>/logs/)",
    )

    mine = sub.add_parser("mine", help="mine behavior queries for one behavior")
    mine.add_argument(
        "--train", default=None, help="corpus directory from `generate`"
    )
    mine.add_argument(
        "--corpus",
        default=None,
        metavar="STORE",
        help="mine streaming from a disk-backed corpus store instead of "
        "--train (byte-identical patterns; peak memory stays bounded by "
        "one behavior partition)",
    )
    mine.add_argument("--behavior", required=True, choices=sorted(BEHAVIOR_NAMES))
    mine.add_argument("--max-edges", type=int, default=6)
    mine.add_argument("--min-support", type=float, default=0.7)
    mine.add_argument("--top-k", type=int, default=5)
    mine.add_argument("--max-seconds", type=float, default=None)
    mine.add_argument(
        "--index",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="use the graph-index candidate prefilter (--no-index disables; "
        "mined patterns are identical either way; the five paper-baseline "
        "--variant values always run unfiltered)",
    )
    mine.add_argument(
        "--variant",
        default="TGMiner",
        choices=[
            "TGMiner",
            "SubPrune",
            "SupPrune",
            "PruneGI",
            "PruneVF2",
            "LinearScan",
        ],
    )
    mine.add_argument(
        "--workers",
        "-j",
        type=_worker_count,
        default=1,
        help="shard the seed search across N processes; 0 = one per CPU "
        "(mined patterns are byte-identical to the serial run for any "
        "N, unless a --max-seconds cap cut either search short)",
    )
    mine.add_argument(
        "--save-model",
        default=None,
        metavar="PATH",
        help="save the run as a versioned model bundle (directory, or a "
        ".tgm zip) consumable by `detect --model` and `inspect`",
    )
    mine.add_argument(
        "--save-queries",
        default=None,
        metavar="PATH",
        help="(deprecated — prefer --save-model) also save the top-k "
        "ranked patterns as a bare behavior-query jsonl file "
        "consumable by `detect --queries`",
    )
    mine.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top-20 cumulative hot "
        "spots after the normal output (perf-work reconnaissance)",
    )

    exp = sub.add_parser(
        "experiment",
        help="mine every behavior in a corpus, optionally fanning out workers",
    )
    exp.add_argument("--train", required=True, help="corpus directory from `generate`")
    exp.add_argument(
        "--behaviors",
        nargs="*",
        default=None,
        choices=sorted(BEHAVIOR_NAMES),
        help="behaviors to mine (default: every behavior file in the corpus)",
    )
    exp.add_argument("--max-edges", type=int, default=6)
    exp.add_argument("--min-support", type=float, default=0.7)
    exp.add_argument("--top-k", type=int, default=5)
    exp.add_argument("--max-seconds", type=float, default=None)
    exp.add_argument(
        "--workers",
        "-j",
        type=_worker_count,
        default=1,
        help="mine up to N behaviors concurrently (0 = one per CPU)",
    )
    exp.add_argument(
        "--save-model",
        default=None,
        metavar="PATH",
        help="save the whole run as one versioned model bundle",
    )
    exp.add_argument("--json", dest="json_out", default=None, help="write results JSON")

    det = sub.add_parser(
        "detect",
        help="replay a syscall log as a stream and detect behavior instances",
    )
    queries = det.add_mutually_exclusive_group(required=True)
    queries.add_argument(
        "--model",
        help="model bundle from `mine --save-model` (directory or .tgm)",
    )
    queries.add_argument(
        "--queries",
        help="bare behavior-query jsonl from `mine --save-queries`",
    )
    source = det.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--log", help="event-log jsonl to replay (datasets.io.save_events_jsonl)"
    )
    source.add_argument(
        "--store",
        metavar="STORE",
        help="corpus store from `corpus build`: replay a stored event log "
        "by indexed range scan without loading it whole",
    )
    source.add_argument(
        "--instances",
        type=int,
        help="synthesize a busy-host test log with N behavior instances",
    )
    det.add_argument(
        "--log-name",
        default=None,
        metavar="NAME",
        help="with --store: the event log to replay (default: the only one)",
    )
    det.add_argument(
        "--start",
        type=int,
        default=None,
        metavar="T",
        help="with --store: replay only events with time >= T",
    )
    det.add_argument(
        "--end",
        type=int,
        default=None,
        metavar="T",
        help="with --store: replay only events with time <= T",
    )
    det.add_argument("--seed", type=int, default=11, help="synthesized-log seed")
    det.add_argument(
        "--save-log", default=None, help="also write the replayed log as jsonl"
    )
    det.add_argument(
        "--batch-size", type=int, default=256, help="events per ingest batch"
    )
    det.add_argument(
        "--window",
        type=int,
        default=None,
        help="eviction window on the event-time axis "
        "(default: the widest registered query span)",
    )
    det.add_argument(
        "--index",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="use the registry's shared signature prefilter "
        "(--no-index disables; detections are identical either way)",
    )
    det.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="serve a multi-tenant fleet: route events by tenant key "
        "across N independent detection shards (default: one plain "
        "single-window service)",
    )
    det.add_argument(
        "--tenants",
        type=int,
        default=None,
        metavar="N",
        help="with --instances: synthesize N tagged tenant streams "
        "(tenant-000|..., one busy-host log each) and interleave them",
    )
    det.add_argument(
        "--tenant-key",
        default=TENANT_SEPARATOR,
        metavar="SEP",
        help="separator splitting the tenant id off each entity key "
        f"(default {TENANT_SEPARATOR!r}; untagged events route to one "
        "default tenant)",
    )
    det.add_argument(
        "--runner",
        choices=("inline", "process"),
        default="inline",
        help="fleet shard runner: in-process shards, or one worker "
        "process per shard with bounded queues and backpressure",
    )
    det.add_argument(
        "--queue-depth",
        type=int,
        default=DEFAULT_QUEUE_DEPTH,
        metavar="BATCHES",
        help="bounded per-shard input queue for --runner process "
        f"(default {DEFAULT_QUEUE_DEPTH})",
    )
    det.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="make the deployment durable: WAL every batch and snapshot "
        "under DIR (per shard/tenant with --shards); rerunning against "
        "the same DIR resumes the previous window",
    )
    det.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="BATCHES",
        help="batches between snapshot cuts with --checkpoint-dir "
        f"(default {DEFAULT_CHECKPOINT_EVERY})",
    )
    det.add_argument("--json", dest="json_out", default=None, help="write summary JSON")
    det.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top-20 cumulative hot "
        "spots after the normal output (perf-work reconnaissance)",
    )

    srv = sub.add_parser(
        "serve",
        help="serve a model over HTTP: ingest, stats, registry, canary promote",
    )
    srv.add_argument(
        "--http",
        required=True,
        metavar="HOST:PORT",
        help="bind address (PORT 0 picks an ephemeral port, printed on start)",
    )
    srv.add_argument(
        "--model",
        default=None,
        help="model bundle to serve (directory or .tgm); with --registry it "
        "is published there first (idempotent)",
    )
    srv.add_argument(
        "--registry",
        default=None,
        metavar="DIR",
        help="model registry directory (created if absent); enables the "
        "/v1/models endpoints — publish, canary, promote with hot reload. "
        "Without --model, the registry's active version is served",
    )
    srv.add_argument(
        "--canary-batches",
        type=int,
        default=None,
        metavar="N",
        help="default live batches a canary observes before completion "
        "(per-request 'batches' overrides)",
    )
    srv.add_argument(
        "--window",
        type=int,
        default=None,
        help="eviction window on the event-time axis "
        "(default: the widest served query span)",
    )
    srv.add_argument(
        "--index",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="use the registry's shared signature prefilter "
        "(--no-index disables; detections are identical either way)",
    )
    srv.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="durable serving: WAL every ingest and snapshot under DIR; "
        "restarting the server against the same DIR resumes the live "
        "window, and a graceful shutdown cuts a final snapshot",
    )
    srv.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="BATCHES",
        help="batches between snapshot cuts with --checkpoint-dir "
        f"(default {DEFAULT_CHECKPOINT_EVERY})",
    )

    pack = sub.add_parser(
        "pack",
        help="re-pack a model bundle (directory <-> .tgm zip)",
    )
    pack.add_argument("src", help="bundle to read (directory or .tgm)")
    pack.add_argument("dst", help="bundle to write (directory, or .tgm to zip)")

    ins = sub.add_parser("inspect", help="print a model bundle's manifest summary")
    ins.add_argument("model", help="bundle to inspect (directory or .tgm)")

    sub.add_parser("behaviors", help="list the 12 behaviors and size classes")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    ws = Workspace(seed=args.seed)
    train = ws.generate(
        instances_per_behavior=args.instances,
        background_graphs=args.background,
    )
    total = ws.save_corpus(train, args.out)
    print(f"wrote {total} graphs to {args.out}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    ws = Workspace()
    if (args.train is None) == (args.corpus is None):
        print("error: mine needs exactly one of --train or --corpus", file=sys.stderr)
        return 2
    config = miner_variant(
        args.variant,
        MinerConfig(
            max_edges=args.max_edges,
            min_pos_support=args.min_support,
            max_seconds=args.max_seconds,
            index_prefilter=args.index,
        ),
    )
    # 0 = one worker per CPU, matching `experiment -j 0`
    seed_workers = args.workers if args.workers != 0 else default_workers()
    if args.corpus is not None:
        model = ws.mine(
            store=args.corpus,
            behaviors=[args.behavior],
            config=config,
            seed_workers=seed_workers,
            top_k=args.top_k,
        )
    else:
        train = ws.load_corpus(args.train, behaviors=[args.behavior])
        model = ws.mine(
            train,
            behaviors=[args.behavior],
            config=config,
            seed_workers=seed_workers,
            top_k=args.top_k,
        )
    record = model.record(args.behavior)
    best = record.best_score if record.best_score is not None else float("-inf")
    print(
        f"explored {record.patterns_explored} patterns in "
        f"{record.elapsed_seconds:.2f}s; best score {best:.3f}"
        + (f" ({seed_workers} workers)" if seed_workers > 1 else "")
    )
    if config.index_prefilter:
        print(
            f"index prefilter: {record.index_prefilter_skips} of "
            f"{record.subgraph_tests} candidate subgraph tests "
            "answered by signature alone"
        )
    for rank, mined in enumerate(record.patterns, 1):
        print(
            f"\n#{rank} (score {mined.score:.3f}, pos {mined.pos_freq:.2f}, "
            f"neg {mined.neg_freq:.2f})"
        )
        print(mined.pattern.describe())
    if args.save_model:
        path = model.save(args.save_model)
        print(f"\nwrote model bundle to {path}")
    if args.save_queries:
        count = save_queries_jsonl(model.queries(), args.save_queries)
        print(
            f"\nwrote {count} behavior queries to {args.save_queries} "
            "(deprecated format — prefer `--save-model`)"
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    ws = Workspace()
    if args.behaviors:
        names = list(args.behaviors)
    else:
        from repro.datasets.io import corpus_behaviors

        names = [n for n in corpus_behaviors(args.train) if n in BEHAVIOR_NAMES]
    train = ws.load_corpus(args.train, behaviors=names)
    config = MinerConfig(
        max_edges=args.max_edges,
        min_pos_support=args.min_support,
        max_seconds=args.max_seconds,
    )
    started = time.perf_counter()
    model = ws.mine(
        train,
        behaviors=names,
        config=config,
        workers=args.workers,
        top_k=args.top_k,
    )
    wall = time.perf_counter() - started
    print(f"{'behavior':22s} {'best':>8s} {'patterns':>9s} {'seconds':>8s}")
    for record in model.records.values():
        best = record.best_score if record.best_score is not None else float("-inf")
        print(
            f"{record.behavior:22s} {best:8.3f} "
            f"{record.patterns_explored:9d} "
            f"{record.elapsed_seconds:8.2f}"
        )
    print(f"mined {len(model.records)} behaviors in {wall:.2f}s wall-clock")
    if args.save_model:
        path = model.save(args.save_model)
        print(f"wrote model bundle to {path}")
    if args.json_out:
        payload = {
            "workers": args.workers,
            "wall_seconds": wall,
            "behaviors": {
                record.behavior: {
                    "best_score": record.best_score,
                    "patterns_explored": record.patterns_explored,
                    "elapsed_seconds": record.elapsed_seconds,
                    "timed_out": record.timed_out,
                    "co_optimal_patterns": record.co_optimal,
                }
                for record in model.records.values()
            },
        }
        Path(args.json_out).write_text(json.dumps(payload, indent=2))
        print(f"wrote {args.json_out}")
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    ws = Workspace()
    if args.model:
        model = BehaviorModel.load(args.model)
        queries = model.queries()
        if not queries:
            print(f"error: no queries in model bundle {args.model}", file=sys.stderr)
            return 2
    else:
        queries_path = Path(args.queries)
        if not queries_path.exists():
            print(f"error: query file missing: {queries_path}", file=sys.stderr)
            return 2
        queries = load_queries_jsonl(queries_path)
        if not queries:
            print(f"error: no queries in {queries_path}", file=sys.stderr)
            return 2

    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        print("error: --checkpoint-every must be >= 1", file=sys.stderr)
        return 2
    every = (
        DEFAULT_CHECKPOINT_EVERY
        if args.checkpoint_every is None
        else args.checkpoint_every
    )
    fleet_mode = args.shards is not None or args.tenants is not None
    if fleet_mode:
        shards = args.shards if args.shards is not None else 1
        if shards < 1:
            print("error: --shards must be >= 1", file=sys.stderr)
            return 2
        ingestor = DetectionFleet(
            shards=shards,
            tenant_key=tenant_key_for_separator(args.tenant_key),
            window_span=args.window,
            use_prefilter=args.index,
            runner=args.runner,
            queue_depth=args.queue_depth,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=every,
        )
        ingestor.register_all(queries)
    elif args.checkpoint_dir is not None:
        from repro.serving.checkpoint import CheckpointStore

        store = CheckpointStore(args.checkpoint_dir)
        if store.fresh:
            service = DetectionService(
                window_span=args.window, use_prefilter=args.index
            )
            service.register_all(queries)
            ingestor = CheckpointedService(
                service, args.checkpoint_dir, checkpoint_every=every, store=store
            )
        else:
            store.close()
            ingestor, recovered = CheckpointedService.recover(
                args.checkpoint_dir,
                window_span=args.window,
                use_prefilter=args.index,
                checkpoint_every=every,
            )
            ingestor.reload(queries)
            print(
                f"recovered checkpoint generation {recovered.generation} "
                f"(+{recovered.recovered_events} WAL events replayed) from "
                f"{args.checkpoint_dir}"
            )
    else:
        ingestor = DetectionService(window_span=args.window, use_prefilter=args.index)
        ingestor.register_all(queries)

    if args.store is None and (
        args.log_name is not None or args.start is not None or args.end is not None
    ):
        print(
            "error: --log-name/--start/--end are only valid with --store",
            file=sys.stderr,
        )
        return 2
    corpus_store = None
    batches = None
    events = None
    if args.log:
        log_path = Path(args.log)
        if not log_path.exists():
            print(f"error: event log missing: {log_path}", file=sys.stderr)
            return 2
        events = load_events_jsonl(log_path)
    elif args.store:
        from repro.datasets.store import CorpusStore

        corpus_store = CorpusStore.open(args.store)
        event_logs = [
            name for name in corpus_store.logs() if corpus_store.event_count(name)
        ]
        if args.log_name is not None:
            if args.log_name not in event_logs:
                print(
                    f"error: no event log {args.log_name!r} in {args.store} "
                    f"(has: {', '.join(event_logs) or 'none'})",
                    file=sys.stderr,
                )
                corpus_store.close()
                return 2
            log_name = args.log_name
        elif len(event_logs) == 1:
            log_name = event_logs[0]
        elif not event_logs:
            print(f"error: no event logs in {args.store}", file=sys.stderr)
            corpus_store.close()
            return 2
        else:
            print(
                f"error: {args.store} holds {len(event_logs)} event logs; "
                "pick one with --log-name",
                file=sys.stderr,
            )
            corpus_store.close()
            return 2
        if args.save_log:
            count = save_events_jsonl(
                corpus_store.iter_events(log_name, start=args.start, end=args.end),
                args.save_log,
            )
            print(f"wrote {count} events to {args.save_log}")
        batches = corpus_store.iter_event_batches(
            log_name, args.batch_size, start=args.start, end=args.end
        )
    else:
        if args.instances < 1:
            print("error: --instances must be >= 1", file=sys.stderr)
            return 2
        if args.tenants is not None:
            if args.tenants < 1:
                print("error: --tenants must be >= 1", file=sys.stderr)
                return 2
            events = simulate_tenant_streams(
                tenants=args.tenants, instances=args.instances, seed=args.seed
            )
        else:
            events = ws.generate_test(instances=args.instances, seed=args.seed).events
    if args.save_log and events is not None:
        save_events_jsonl(events, args.save_log)
        print(f"wrote {len(events)} events to {args.save_log}")

    per_query: dict[str, int] = {q.name: 0 for q in queries}
    try:
        if fleet_mode:
            ingestor.start()
        if batches is not None:
            # store replay: batches stream off disk one page range at a
            # time — the whole log is never resident
            for batch in batches:
                for detection in ingestor.ingest(batch):
                    per_query[detection.query] += 1
        else:
            for _batch, detections in ingestor.replay(events, args.batch_size):
                for detection in detections:
                    per_query[detection.query] += 1
        info = ingestor.stats.as_dict()
    finally:
        ingestor.close()
        if corpus_store is not None:
            corpus_store.close()

    late = info["late_dropped"]
    latency = info["latency_ms"]
    print(
        f"replayed {info['events']} events in {info['batches']} batches "
        f"({args.batch_size}/batch), window span "
        f"{ingestor.window_span}, {len(queries)} registered queries"
        + (f"; {late} events arrived too late and were DROPPED" if late else "")
    )
    if fleet_mode:
        print(
            f"fleet: {info['shards']} shard(s) [{args.runner}], "
            f"{info['tenants']} tenant(s), {info['routed_batches']} routed "
            f"batches, {info['backpressure_waits']} backpressure waits"
        )
    print(
        f"throughput {info['events_per_second']:,.0f} events/s; per-batch "
        f"latency p50 {latency['p50']:.2f}ms p95 {latency['p95']:.2f}ms "
        f"max {latency['max']:.2f}ms"
    )
    print(
        f"prefilter answered {info['queries_prefiltered']} of "
        f"{info['queries_prefiltered'] + info['queries_evaluated']} query-batch "
        "evaluations by signature alone"
    )
    print(f"\n{info['detections']} detections:")
    for name, count in per_query.items():
        print(f"  {name:30s} {count:6d}")
    if args.json_out:
        payload = {
            "kind": info["kind"],
            "batch_size": args.batch_size,
            "window_span": ingestor.window_span,
            "queries": len(queries),
            "per_query": per_query,
            "stats": info,
        }
        Path(args.json_out).write_text(json.dumps(payload, indent=2))
        print(f"wrote {args.json_out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    host, _, port_text = args.http.rpartition(":")
    if not host or not port_text.isdigit():
        print(
            f"error: --http expects HOST:PORT, got {args.http!r}", file=sys.stderr
        )
        return 2
    if args.model is None and args.registry is None:
        print("error: serve needs --model and/or --registry", file=sys.stderr)
        return 2

    from repro.serving.model_registry import ModelRegistry

    registry = ModelRegistry(args.registry) if args.registry is not None else None
    if args.model is not None:
        model = BehaviorModel.load(args.model)
        version = registry.publish(model).version if registry is not None else None
    else:
        version = registry.active_version
        if version is None:
            print(
                f"error: registry {args.registry} is empty; publish a model "
                "first or pass --model",
                file=sys.stderr,
            )
            return 2
        model = registry.load(version)

    ws = Workspace()
    options = (
        {} if args.canary_batches is None else {"canary_batches": args.canary_batches}
    )
    server = ws.serve_http(
        model,
        host=host,
        port=int(port_text),
        registry=registry,
        window_span=args.window,
        use_prefilter=args.index,
        version=version,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        **options,
    )
    bound_host, bound_port = server.address
    served = f"v{version}" if version is not None else args.model
    print(
        f"serving {served} ({len(model.queries())} queries) on "
        f"http://{bound_host}:{bound_port} — POST /v1/ingest, GET /v1/stats"
        + (f"; registry {args.registry}" if registry is not None else ""),
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    handlers = {
        "build": _cmd_corpus_build,
        "info": _cmd_corpus_info,
        "export": _cmd_corpus_export,
    }
    return handlers[args.corpus_command](args)


def _cmd_corpus_build(args: argparse.Namespace) -> int:
    from repro.core.errors import TimestampOrderError
    from repro.core.graph import TemporalGraph
    from repro.datasets.io import iter_corpus
    from repro.datasets.store import (
        BACKGROUND_PARTITION,
        DEFAULT_PAGE_EDGES,
        CorpusStore,
    )

    if not args.train and not args.log:
        print("error: corpus build needs --train and/or --log", file=sys.stderr)
        return 2
    page_edges = DEFAULT_PAGE_EDGES if args.page_edges is None else args.page_edges
    store = CorpusStore.create(
        args.out, page_edges=page_edges, overwrite=args.overwrite
    )
    graphs = events = 0
    try:
        if args.train:
            # one decoded graph live at a time: iter_corpus streams the
            # jsonl directory, the store pages it straight to disk
            for partition, graph in iter_corpus(args.train):
                kind = (
                    "background"
                    if partition == BACKGROUND_PARTITION
                    else "behavior"
                )
                store.add_graph(partition, graph, kind=kind)
                graphs += 1
        for log_path in args.log:
            name = Path(log_path).stem
            log_events = load_events_jsonl(log_path)
            graph = None
            try:
                node_keys: dict[str, str] = {}
                for event in log_events:
                    node_keys.setdefault(event.src_key, event.src_label)
                    node_keys.setdefault(event.dst_key, event.dst_label)
                graph = TemporalGraph.from_events(
                    (
                        (event.src_key, event.dst_key, event.time)
                        for event in log_events
                    ),
                    name=name,
                    node_keys=node_keys,
                )
            except TimestampOrderError:
                print(
                    f"note: {log_path} has concurrent timestamps; stored the "
                    "event stream only (sequentialize to enable windowed query)"
                )
            wrote_graphs, wrote_events = store.add_log(
                name, graph=graph, events=log_events
            )
            graphs += wrote_graphs
            events += wrote_events
    finally:
        store.close()
    size = Path(args.out).stat().st_size
    print(
        f"wrote {graphs} graphs and {events} events to {args.out} "
        f"({size / 1e6:.1f} MB, {page_edges} edges/page)"
    )
    return 0


def _cmd_corpus_info(args: argparse.Namespace) -> int:
    from repro.datasets.store import CorpusStore

    with CorpusStore.open(args.store) as store:
        info = store.info()
        if args.verify:
            verified = store.verify()
            info["verified"] = verified
    print(
        f"{info['path']}: schema v{info['schema_version']}, "
        f"{info['graphs']} graphs / {info['edges']} edges, "
        f"{info['labels']} interned labels, {info['page_edges']} edges/page, "
        f"{info['file_bytes'] / 1e6:.1f} MB"
    )
    for name, count in info["behaviors"].items():
        print(f"  behavior {name:22s} {count:6d} graphs")
    print(f"  background {'':20s} {info['background_graphs']:6d} graphs")
    for name, count in info["logs"].items():
        print(f"  log {name:27s} {count:6d} events")
    if args.verify:
        print(
            f"verified {info['verified']['graphs']} graph checksums and "
            f"{info['verified']['event_pages']} event-page checksums: OK"
        )
    if args.json_out:
        Path(args.json_out).write_text(json.dumps(info, indent=2))
        print(f"wrote {args.json_out}")
    return 0


def _cmd_corpus_export(args: argparse.Namespace) -> int:
    from repro.core.errors import DatasetError
    from repro.datasets.io import (
        BACKGROUND_FILE,
        save_graphs_jsonl,
    )
    from repro.datasets.store import BACKGROUND_PARTITION, CorpusStore

    out = Path(args.out)
    try:
        out.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise DatasetError(f"cannot create {out}: {exc}") from exc
    graphs = events = 0
    with CorpusStore.open(args.store) as store:
        for name in store.behaviors():
            graphs += save_graphs_jsonl(
                store.iter_graphs(name, kind="behavior"), out / f"{name}.jsonl"
            )
        graphs += save_graphs_jsonl(
            store.iter_graphs(BACKGROUND_PARTITION, kind="background"),
            out / BACKGROUND_FILE,
        )
        event_logs = [n for n in store.logs() if store.event_count(n)]
        if event_logs:
            try:
                (out / "logs").mkdir(exist_ok=True)
            except OSError as exc:
                raise DatasetError(f"cannot create {out / 'logs'}: {exc}") from exc
            for name in event_logs:
                events += save_events_jsonl(
                    store.iter_events(name), out / "logs" / f"{name}.jsonl"
                )
    print(f"exported {graphs} graphs and {events} events to {out}")
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    model = BehaviorModel.load(args.src)
    path = model.save(args.dst)
    kind = "zipped bundle" if path.suffix == ".tgm" else "bundle directory"
    print(
        f"re-packed {args.src} -> {path} ({kind}; {len(model.records)} "
        f"behaviors, {sum(len(r.patterns) for r in model.records.values())} "
        "queries)"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    print(BehaviorModel.load(args.model).describe())
    return 0


def _cmd_behaviors(_args: argparse.Namespace) -> int:
    for cls, names in SIZE_CLASSES.items():
        print(f"{cls}:")
        for name in names:
            print(f"  {name}")
    return 0


def _run_profiled(handler, args: argparse.Namespace) -> int:
    """Run a command under cProfile, then print the top cumulative costs.

    The profile prints *after* the command's normal output so scripts
    reading the report from stdout keep working; future perf PRs start
    from this data instead of guessing at hot spots.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    code = profiler.runcall(handler, args)
    print("\n--- cProfile: top 20 by cumulative time ---")
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    return code


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "corpus": _cmd_corpus,
        "mine": _cmd_mine,
        "experiment": _cmd_experiment,
        "detect": _cmd_detect,
        "serve": _cmd_serve,
        "pack": _cmd_pack,
        "inspect": _cmd_inspect,
        "behaviors": _cmd_behaviors,
    }
    handler = handlers[args.command]
    try:
        if getattr(args, "profile", False):
            return _run_profiled(handler, args)
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
