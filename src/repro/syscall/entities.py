"""System entity model for the syscall simulator.

Syscall logs describe interactions among *system entities* — processes,
files, sockets, and pipes (paper Section 1).  The simulator distinguishes
three identity scopes:

* **persistent** entities exist once per machine (``/etc/passwd``,
  ``libc``): every occurrence in a log maps to the same graph node;
* **fresh** entities are created per behavior instance (a spawned ``ssh``
  process): each instance gets its own node, but the *label* is stable so
  patterns generalize across instances;
* **pooled** entities carry randomized labels drawn from a pool (a user's
  document, an ephemeral port): they model the long tail of labels that
  makes keyword queries noisy (Table 1 reports 9065 distinct labels in
  the background data alone).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

__all__ = ["EntityKind", "Ref", "persistent", "fresh", "pooled", "LabelPools"]


class EntityKind(enum.Enum):
    """Kinds of system entities appearing in syscall logs."""

    PROCESS = "proc"
    FILE = "file"
    SOCKET = "sock"
    PIPE = "pipe"


@dataclass(frozen=True)
class Ref:
    """A reference to an entity inside a behavior template.

    Attributes
    ----------
    name:
        Identity within one behavior instance; two steps using the same
        name touch the same node.
    label:
        Fixed node label, or ``None`` when the label comes from ``pool``.
    pool:
        Name of a label pool in :class:`LabelPools` for randomized labels.
    is_persistent:
        Whether the entity is machine-global (one node for the whole log).
    """

    name: str
    label: str | None = None
    pool: str | None = None
    is_persistent: bool = False


def persistent(label: str) -> Ref:
    """A machine-global entity whose key is its label."""
    return Ref(name=label, label=label, is_persistent=True)


def fresh(name: str, label: str) -> Ref:
    """A per-instance entity with a stable label."""
    return Ref(name=name, label=label)


def pooled(name: str, pool: str) -> Ref:
    """A per-instance entity with a randomized label from ``pool``."""
    return Ref(name=name, pool=pool)


class LabelPools:
    """Label generators for pooled entities.

    Each pool is a function of the RNG; pools are intentionally wide so
    that per-graph label sets differ while structural patterns repeat.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def draw(self, pool: str) -> str:
        """Draw one label from the named pool."""
        rng = self._rng
        if pool == "user_file":
            return f"file:/home/u{rng.randrange(40)}/doc{rng.randrange(500)}"
        if pool == "tmp_file":
            return f"file:/tmp/tmp{rng.randrange(3000)}"
        if pool == "src_file":
            return f"file:/home/u{rng.randrange(40)}/src{rng.randrange(300)}.c"
        if pool == "obj_file":
            return f"file:/home/u{rng.randrange(40)}/obj{rng.randrange(300)}.o"
        if pool == "archive":
            return f"file:/home/u{rng.randrange(40)}/pkg{rng.randrange(200)}.tar"
        if pool == "download":
            return f"file:/home/u{rng.randrange(40)}/dl{rng.randrange(400)}"
        if pool == "remote_host":
            return f"sock:198.51.{rng.randrange(100)}.{rng.randrange(250)}"
        if pool == "ephemeral_port":
            return f"sock:local:{30000 + rng.randrange(20000)}"
        if pool == "log_file":
            return f"file:/var/log/app{rng.randrange(60)}.log"
        if pool == "proc_misc":
            return f"proc:job{rng.randrange(120)}"
        if pool == "deb_package":
            return f"file:/var/cache/apt/pkg{rng.randrange(250)}.deb"
        raise KeyError(f"unknown label pool {pool!r}")
