"""Syscall-activity simulator: the paper's data-collection substrate.

The paper trains on syscall logs from instrumented Ubuntu servers; this
package generates behavior-faithful synthetic equivalents (see DESIGN.md
for the substitution argument).  Public entry points:

* :func:`build_training_data` — per-behavior positive sets + background;
* :func:`build_test_data` — one long test graph with ground truth;
* :data:`BEHAVIORS` / :data:`BEHAVIOR_NAMES` / :data:`SIZE_CLASSES` — the
  12 behavior templates of Table 1.
"""

from repro.syscall.behaviors import (
    BEHAVIOR_NAMES,
    BEHAVIORS,
    CATEGORIES,
    SIZE_CLASSES,
    BehaviorTemplate,
    Step,
    get_behavior,
)
from repro.syscall.collector import (
    GroundTruthInstance,
    TestConfig,
    TestData,
    TrainingConfig,
    TrainingData,
    build_test_data,
    build_training_data,
    iter_event_batches,
)
from repro.syscall.events import SyscallEvent, events_to_graph, merge_streams
from repro.syscall.simulator import ClosedEnvironment

__all__ = [
    "BEHAVIORS",
    "BEHAVIOR_NAMES",
    "CATEGORIES",
    "SIZE_CLASSES",
    "BehaviorTemplate",
    "Step",
    "get_behavior",
    "SyscallEvent",
    "events_to_graph",
    "merge_streams",
    "ClosedEnvironment",
    "TrainingConfig",
    "TrainingData",
    "build_training_data",
    "TestConfig",
    "TestData",
    "build_test_data",
    "GroundTruthInstance",
    "iter_event_batches",
]
