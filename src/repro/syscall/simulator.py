"""Closed-environment syscall collection (paper Section 2, Appendix L).

The paper collects each behavior's training data by running it repeatedly
in a *closed environment* — a server with minimal other activity — so
each run yields one relatively clean temporal graph.
:class:`ClosedEnvironment` reproduces that protocol: every :meth:`run`
instantiates a behavior template once (template-internal noise models the
residual default-application activity) and converts the log to a graph.
"""

from __future__ import annotations

import random

from repro.core.graph import TemporalGraph
from repro.syscall.background import generate_background_events
from repro.syscall.behaviors import BehaviorTemplate, get_behavior
from repro.syscall.events import events_to_graph

__all__ = ["ClosedEnvironment"]


class ClosedEnvironment:
    """A controlled collection server for one seeded campaign.

    Parameters
    ----------
    seed:
        Seed of the campaign RNG; identical seeds reproduce identical
        datasets bit for bit.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._run_counter = 0

    def run(
        self,
        behavior: str | BehaviorTemplate,
        force_complete: bool | None = None,
    ) -> TemporalGraph:
        """Execute one behavior instance and return its temporal graph."""
        template = (
            behavior
            if isinstance(behavior, BehaviorTemplate)
            else get_behavior(behavior)
        )
        self._run_counter += 1
        instance_id = f"run{self._run_counter}"
        events = template.instantiate(self._rng, instance_id, force_complete)
        return events_to_graph(events, name=f"{template.name}/{instance_id}")

    def collect(
        self,
        behavior: str | BehaviorTemplate,
        runs: int,
        force_complete: bool | None = None,
    ) -> list[TemporalGraph]:
        """Run a behavior ``runs`` times (paper: 100 independent executions)."""
        return [self.run(behavior, force_complete) for _ in range(runs)]

    def collect_background(
        self,
        graphs: int,
        events_range: tuple[int, int],
    ) -> list[TemporalGraph]:
        """Sample background temporal graphs (paper: 10,000 samples over 7 days)."""
        out: list[TemporalGraph] = []
        for _ in range(graphs):
            self._run_counter += 1
            count = self._rng.randint(*events_range)
            events = generate_background_events(
                self._rng, count, f"bgrun{self._run_counter}"
            )
            out.append(events_to_graph(events, name=f"background/{self._run_counter}"))
        return out
