"""Syscall event records and their conversion to temporal graphs.

A syscall log is a time-ordered sequence of events, each describing which
interaction happened between which two system entities at what time
(paper Figure 1a).  The temporal-graph view keeps entities as labeled
nodes and events as timestamped directed edges; the syscall name itself
is retained on the event record for log realism but — matching the
paper's model of node-labeled graphs — dropped during graph conversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.graph import TemporalGraph

__all__ = ["SyscallEvent", "events_to_graph", "merge_streams"]


@dataclass(frozen=True)
class SyscallEvent:
    """One log line: ``src`` performed ``syscall`` on/with ``dst``.

    ``src_key``/``dst_key`` identify entities (node identity); the labels
    are what pattern mining sees.
    """

    time: int
    syscall: str
    src_key: str
    src_label: str
    dst_key: str
    dst_label: str


def events_to_graph(events: Sequence[SyscallEvent], name: str = "") -> TemporalGraph:
    """Convert a time-ordered event sequence into a temporal graph.

    Entity keys map 1:1 to nodes; timestamps are taken from the events
    and must be strictly increasing (the collector sequentializes logs
    before conversion — see :mod:`repro.core.concurrent`).
    """
    graph = TemporalGraph(name=name)
    ids: dict[str, int] = {}

    def node_for(key: str, label: str) -> int:
        if key not in ids:
            ids[key] = graph.add_node(label)
        return ids[key]

    for event in events:
        src = node_for(event.src_key, event.src_label)
        dst = node_for(event.dst_key, event.dst_label)
        graph.add_edge(src, dst, event.time)
    return graph.freeze()


def merge_streams(
    streams: Iterable[Sequence[SyscallEvent]],
    rng,
    start_time: int = 0,
) -> list[SyscallEvent]:
    """Randomly interleave event streams, re-assigning dense timestamps.

    Within each stream the relative order is preserved (a behavior's
    events never reorder); across streams the interleaving is random.
    The result carries strictly increasing timestamps starting at
    ``start_time``, as the paper's total-order model requires.
    """
    cursors = [list(stream) for stream in streams if stream]
    merged: list[SyscallEvent] = []
    time = start_time
    while cursors:
        weights = [len(c) for c in cursors]
        pick = rng.choices(range(len(cursors)), weights=weights, k=1)[0]
        event = cursors[pick].pop(0)
        merged.append(
            SyscallEvent(
                time=time,
                syscall=event.syscall,
                src_key=event.src_key,
                src_label=event.src_label,
                dst_key=event.dst_key,
                dst_label=event.dst_label,
            )
        )
        time += 1
        if not cursors[pick]:
            cursors.pop(pick)
    return merged
