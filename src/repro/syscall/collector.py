"""Training/test dataset builders (paper Section 6.1 + Appendix L).

``build_training_data`` reproduces the paper's training corpus at a
configurable scale: ``instances_per_behavior`` runs of each of the 12
behaviors in a closed environment, plus background graphs sampled from a
behavior-free server (paper: 100 runs x 12 behaviors + 10,000 background
graphs; the defaults here scale that down for laptop-speed mining while
keeping the statistics' shape).

``build_test_data`` reproduces the 7-day test collection of Appendix L: a
single long temporal graph in which one randomly chosen behavior executes
"every minute" amid continuous desktop background load, with the
ground-truth execution interval of every instance recorded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.errors import DatasetError
from repro.core.graph import TemporalGraph
from repro.syscall.background import generate_background_events
from repro.syscall.behaviors import BEHAVIOR_NAMES, get_behavior
from repro.syscall.events import events_to_graph
from repro.syscall.simulator import ClosedEnvironment

__all__ = [
    "TrainingConfig",
    "TrainingData",
    "build_training_data",
    "GroundTruthInstance",
    "TestConfig",
    "TestData",
    "build_test_data",
    "iter_event_batches",
]


@dataclass(frozen=True)
class TrainingConfig:
    """Scale knobs for the training corpus."""

    instances_per_behavior: int = 20
    background_graphs: int = 60
    background_events: tuple[int, int] = (60, 140)
    behaviors: tuple[str, ...] = BEHAVIOR_NAMES
    seed: int = 7

    def validate(self) -> None:
        """Raise :class:`DatasetError` on invalid settings."""
        if self.instances_per_behavior < 1:
            raise DatasetError("instances_per_behavior must be >= 1")
        if self.background_graphs < 0:
            raise DatasetError("background_graphs must be >= 0")


@dataclass
class TrainingData:
    """The training corpus: per-behavior positive sets plus background."""

    config: TrainingConfig
    behaviors: dict[str, list[TemporalGraph]]
    background: list[TemporalGraph]

    def behavior(self, name: str) -> list[TemporalGraph]:
        """Positive graph set of one behavior."""
        if name not in self.behaviors:
            raise DatasetError(f"behavior {name!r} not in this training corpus")
        return self.behaviors[name]

    def all_graphs(self) -> list[TemporalGraph]:
        """Every training graph (behaviors + background)."""
        out: list[TemporalGraph] = []
        for name in self.config.behaviors:
            out.extend(self.behaviors[name])
        out.extend(self.background)
        return out

    def subset(self, fraction: float) -> "TrainingData":
        """First ``fraction`` of every graph set (Figure 12/15 sweeps).

        The paper varies "the amount of used training data" from 0.01 to
        1.0; graphs were collected i.i.d., so a prefix is an unbiased
        subsample.  At least one graph per set is always retained.
        """
        if not (0.0 < fraction <= 1.0):
            raise DatasetError("fraction must be in (0, 1]")

        def take(graphs: list[TemporalGraph]) -> list[TemporalGraph]:
            count = max(1, int(round(len(graphs) * fraction)))
            return graphs[:count]

        return TrainingData(
            config=self.config,
            behaviors={name: take(gs) for name, gs in self.behaviors.items()},
            background=take(self.background),
        )

    def max_lifetime(self, name: str) -> int:
        """Longest observed lifetime (edge-time span) of a behavior."""
        spans = []
        for graph in self.behavior(name):
            if graph.num_edges:
                first, last = graph.span()
                spans.append(last - first)
        return max(spans) if spans else 0


def build_training_data(
    config: TrainingConfig | None = None, **overrides
) -> TrainingData:
    """Build the training corpus (optionally overriding config fields)."""
    if config is None:
        config = TrainingConfig(**overrides)
    elif overrides:
        raise DatasetError("pass either a config object or keyword overrides, not both")
    config.validate()
    env = ClosedEnvironment(seed=config.seed)
    behaviors = {
        name: env.collect(name, config.instances_per_behavior)
        for name in config.behaviors
    }
    background = env.collect_background(
        config.background_graphs, config.background_events
    )
    return TrainingData(config=config, behaviors=behaviors, background=background)


@dataclass(frozen=True)
class GroundTruthInstance:
    """A behavior execution recorded in the test log."""

    behavior: str
    start: int
    end: int

    def contains(self, start: int, end: int) -> bool:
        """Whether ``[start, end]`` lies fully inside this execution."""
        return self.start <= start and end <= self.end


@dataclass(frozen=True)
class TestConfig:
    """Scale knobs for the 7-day test log."""

    instances: int = 120
    behaviors: tuple[str, ...] = BEHAVIOR_NAMES
    #: background events interleaved into each instance window, as a
    #: fraction of the instance's own event count
    background_mix: float = 0.35
    #: background-only events between consecutive instances
    gap_events: tuple[int, int] = (30, 80)
    seed: int = 11


@dataclass
class TestData:
    """One long test graph plus its ground-truth instance intervals.

    ``events`` retains the raw syscall log the graph was converted from,
    so the same collection replays as a stream into the serving layer
    (collector → StreamingGraph → QueryRegistry → detections).
    """

    config: TestConfig
    graph: TemporalGraph
    instances: list[GroundTruthInstance] = field(default_factory=list)
    events: list = field(default_factory=list)

    def instances_of(self, behavior: str) -> list[GroundTruthInstance]:
        """Ground-truth instances of one behavior."""
        return [gt for gt in self.instances if gt.behavior == behavior]


def iter_event_batches(events, batch_size: int):
    """Yield consecutive event batches of a recorded log (replay feed).

    This is the collector-side producer for the streaming detection
    service: ``DetectionService.replay`` and the ``detect`` CLI consume
    one batch per ingest call.
    """
    if batch_size < 1:
        raise DatasetError("batch_size must be >= 1")
    for start in range(0, len(events), batch_size):
        yield list(events[start : start + batch_size])


def build_test_data(config: TestConfig | None = None, **overrides) -> TestData:
    """Build the test log: interleaved behavior instances + background.

    Instances are spread evenly over the behaviors (shuffled), mirroring
    the paper's "select one behavior at random every minute" protocol
    while guaranteeing every behavior has test instances at small scales.
    """
    if config is None:
        config = TestConfig(**overrides)
    elif overrides:
        raise DatasetError("pass either a config object or keyword overrides, not both")
    rng = random.Random(config.seed)
    schedule: list[str] = []
    while len(schedule) < config.instances:
        block = list(config.behaviors)
        rng.shuffle(block)
        schedule.extend(block)
    schedule = schedule[: config.instances]

    all_events = []
    instances: list[GroundTruthInstance] = []
    time = 0
    for i, name in enumerate(schedule):
        template = get_behavior(name)
        instance_events = template.instantiate(rng, f"test{i}")
        bg_count = max(1, int(len(instance_events) * config.background_mix))
        bg_events = generate_background_events(rng, bg_count, f"mix{i}")
        merged, origins = _merge_tagged(rng, [instance_events, bg_events], time)
        behavior_times = [e.time for e, o in zip(merged, origins) if o == 0]
        start, end = behavior_times[0], behavior_times[-1]
        instances.append(GroundTruthInstance(name, start, end))
        all_events.extend(merged)
        time = merged[-1].time + 1 if merged else time
        gap = rng.randint(*config.gap_events)
        gap_events = generate_background_events(rng, gap, f"gap{i}")
        for event in gap_events:
            all_events.append(
                type(event)(
                    time=time,
                    syscall=event.syscall,
                    src_key=event.src_key,
                    src_label=event.src_label,
                    dst_key=event.dst_key,
                    dst_label=event.dst_label,
                )
            )
            time += 1
    graph = events_to_graph(all_events, name="test-log")
    return TestData(
        config=config, graph=graph, instances=instances, events=all_events
    )


def _merge_tagged(rng, streams, start_time: int):
    """Like :func:`merge_streams` but also reports each event's stream.

    Returns ``(merged_events, origins)`` where ``origins[k]`` is the index
    of the stream the ``k``-th merged event came from — needed to recover
    a behavior instance's exact execution window for the ground truth.
    """
    from repro.syscall.events import SyscallEvent

    cursors = [(idx, list(stream)) for idx, stream in enumerate(streams) if stream]
    merged = []
    origins: list[int] = []
    time = start_time
    while cursors:
        weights = [len(c) for _idx, c in cursors]
        pick = rng.choices(range(len(cursors)), weights=weights, k=1)[0]
        origin, queue = cursors[pick]
        event = queue.pop(0)
        merged.append(
            SyscallEvent(
                time=time,
                syscall=event.syscall,
                src_key=event.src_key,
                src_label=event.src_label,
                dst_key=event.dst_key,
                dst_label=event.dst_label,
            )
        )
        origins.append(origin)
        time += 1
        if not queue:
            cursors.pop(pick)
    return merged, origins
