"""Behavior templates for the 12 target behaviors (paper Appendix L).

Each template scripts the syscall activity of one security-relevant
behavior as a sequence of :class:`Step` records over entity references.
Instantiating a template plays the script with controlled randomness:

* **core** steps form the behavior's discriminative temporal footprint
  and always execute in order (unless the instance *aborts* — see below);
* non-core steps execute with their per-step probability and random
  repeat counts, producing the size variability of real logs;
* **noise** events (common library/locale/tmp activity shared with every
  other behavior and with the background) are interleaved at random
  positions;
* with probability ``abort_prob`` the instance aborts partway through its
  core — the behavior ran but left an incomplete footprint, which is the
  mechanism behind the sub-100% recall in the paper's Table 2.

Family structure — the key to reproducing the accuracy gaps of Table 2 —
is encoded deliberately:

* the **ssh family** (``ssh-login``, ``scp-download``, ``sshd-login``)
  shares the client-handshake labels; ``scp-download`` performs the same
  handshake *in a different temporal order* and has **no scp-specific
  process label** (scp really runs ``ssh`` underneath), so keyword and
  non-temporal queries confuse the family members while temporal patterns
  separate them;
* the **login family** (``sshd-login``, ``ftpd-login``) shares the PAM
  authentication labels (``/etc/shadow``, ``auth.log``, ``wtmp``) with
  different orders/directions;
* the **compile family** (``gcc``, ``g++``) shares assembler/linker
  stages and differs in one compiler-proper label;
* the **apt family** shares the package-list refresh fragment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import DatasetError
from repro.syscall.entities import LabelPools, Ref, fresh, persistent, pooled
from repro.syscall.events import SyscallEvent

__all__ = [
    "Step",
    "BehaviorTemplate",
    "BEHAVIORS",
    "BEHAVIOR_NAMES",
    "SIZE_CLASSES",
    "CATEGORIES",
    "get_behavior",
]


@dataclass(frozen=True)
class Step:
    """One scripted interaction: ``src`` performs ``syscall`` on ``dst``."""

    src: Ref
    dst: Ref
    syscall: str = "op"
    prob: float = 1.0
    repeat: tuple[int, int] = (1, 1)
    core: bool = False


# ----------------------------------------------------------------------
# shared (persistent) entities — the common vocabulary every behavior and
# the background touch, making them useless for discrimination
# ----------------------------------------------------------------------
BASH = persistent("proc:bash")
CRON = persistent("proc:cron")
RSYSLOG = persistent("proc:rsyslog")
LIBC = persistent("file:/lib/libc.so.6")
LDSO = persistent("file:/lib/ld-linux.so")
LOCALE = persistent("file:/usr/lib/locale")
PASSWD = persistent("file:/etc/passwd")
NSSWITCH = persistent("file:/etc/nsswitch.conf")
RESOLV = persistent("file:/etc/resolv.conf")
HOSTS = persistent("file:/etc/hosts")
PROC_STAT = persistent("file:/proc/stat")
SYSLOG = persistent("file:/var/log/syslog")
CRONTAB = persistent("file:/etc/crontab")

# ssh family
SSH_CFG = persistent("file:/etc/ssh/ssh_config")
KNOWN_HOSTS = persistent("file:/home/.ssh/known_hosts")
SSHD_CFG = persistent("file:/etc/ssh/sshd_config")
PAM_SSHD = persistent("file:/etc/pam.d/sshd")
PAM_FTPD = persistent("file:/etc/pam.d/ftpd")
FTPUSERS = persistent("file:/etc/ftpusers")
SHADOW = persistent("file:/etc/shadow")
AUTH_LOG = persistent("file:/var/log/auth.log")
WTMP = persistent("file:/var/log/wtmp")
MOTD = persistent("file:/etc/motd")
DEV_PTS = persistent("file:/dev/pts")

# binaries / libraries — each behavior maps its own binary and a
# characteristic library; family members share libraries on purpose
MAGIC = persistent("file:/usr/share/misc/magic")
BIN_BZIP2 = persistent("file:/usr/bin/bzip2")
LIBBZ2 = persistent("file:/lib/libbz2.so.1")
BIN_GZIP = persistent("file:/usr/bin/gzip")
LIBZ = persistent("file:/lib/libz.so.1")
BIN_WGET = persistent("file:/usr/bin/wget")
WGETRC = persistent("file:/etc/wgetrc")
BIN_FTP = persistent("file:/usr/bin/ftp")
BIN_SSH = persistent("file:/usr/bin/ssh")
LIBCRYPTO = persistent("file:/lib/libcrypto.so.3")
BIN_SSHD = persistent("file:/usr/sbin/sshd")
BIN_FTPD = persistent("file:/usr/sbin/ftpd")
BIN_GCC = persistent("file:/usr/bin/gcc")
BIN_GPP = persistent("file:/usr/bin/g++")
BIN_APT = persistent("file:/usr/bin/apt-get")

# download / compile / apt
SSL_CERTS = persistent("file:/etc/ssl/certs")
NETRC = persistent("file:/home/.netrc")
WGET_HSTS = persistent("file:/home/.wget-hsts")
CRT1 = persistent("file:/usr/lib/crt1.o")
LIBC_A = persistent("file:/usr/lib/libc.a")
LIBSTDCPP = persistent("file:/usr/lib/libstdc++.a")
USR_INCLUDE = persistent("file:/usr/include/stdio.h")
CPP_INCLUDE = persistent("file:/usr/include/c++/iostream")
SOURCES_LIST = persistent("file:/etc/apt/sources.list")
APT_LISTS = persistent("file:/var/lib/apt/lists")
APT_LOCK = persistent("file:/var/lib/apt/lock")
DPKG_STATUS = persistent("file:/var/lib/dpkg/status")
LD_CACHE = persistent("file:/etc/ld.so.cache")


def _prologue(proc: Ref) -> list[Step]:
    """Process startup shared by every behavior: exec + loader activity."""
    return [
        Step(BASH, proc, "execve"),
        Step(proc, LDSO, "open"),
        Step(proc, LIBC, "open"),
        Step(proc, LOCALE, "open", prob=0.7),
    ]


def _ssh_handshake(proc: Ref, sock: Ref, order: str) -> list[Step]:
    """The shared ssh client handshake; ``order`` permutes the prefix.

    ``"client"`` (ssh-login) reads config before known_hosts; ``"scp"``
    reads them in the opposite order — the same edge set, so non-temporal
    miners cannot tell the two behaviors apart, while the temporal order
    separates them cleanly.
    """
    cfg = Step(proc, SSH_CFG, "open", core=True)
    known = Step(proc, KNOWN_HOSTS, "open", core=True)
    prefix = [cfg, known] if order == "client" else [known, cfg]
    return prefix + [
        Step(proc, sock, "connect", core=True),
        Step(sock, proc, "recvmsg", core=True),
        Step(proc, sock, "sendmsg", core=True),
        Step(sock, proc, "recvmsg", core=True),
    ]


@dataclass(frozen=True)
class BehaviorTemplate:
    """A scripted behavior: steps, noise budget, and abort model."""

    name: str
    category: str
    size_class: str
    main: Ref
    steps: tuple[Step, ...]
    noise_range: tuple[int, int] = (2, 5)
    abort_prob: float = 0.0
    # Fraction of the core (by position) surviving an abort, sampled
    # uniformly from this range.
    abort_keep: tuple[float, float] = (0.25, 0.6)

    def instantiate(
        self,
        rng: random.Random,
        instance_id: str,
        force_complete: bool | None = None,
    ) -> list[SyscallEvent]:
        """Play the script once; returns relative-time-ordered events.

        ``force_complete=True`` disables the abort path (used by tests);
        ``None`` samples it from ``abort_prob``.
        """
        pools = LabelPools(rng)
        resolved: dict[str, tuple[str, str]] = {}

        def resolve(ref: Ref) -> tuple[str, str]:
            if ref.name not in resolved:
                if ref.is_persistent:
                    resolved[ref.name] = (ref.label, ref.label)
                else:
                    label = ref.label if ref.label is not None else pools.draw(ref.pool)
                    resolved[ref.name] = (f"{ref.name}#{instance_id}", label)
            return resolved[ref.name]

        steps = list(self.steps)
        aborted = (
            rng.random() < self.abort_prob
            if force_complete is None
            else not force_complete
        )
        if aborted:
            core_positions = [i for i, s in enumerate(steps) if s.core]
            if len(core_positions) >= 2:
                keep_frac = rng.uniform(*self.abort_keep)
                keep_count = max(1, int(len(core_positions) * keep_frac))
                cut_at = core_positions[min(keep_count, len(core_positions) - 1)]
                steps = steps[:cut_at]

        behavior_events: list[SyscallEvent] = []
        for step in steps:
            if not step.core and rng.random() > step.prob:
                continue
            count = rng.randint(*step.repeat)
            src_key, src_label = resolve(step.src)
            dst_key, dst_label = resolve(step.dst)
            for _ in range(count):
                behavior_events.append(
                    SyscallEvent(
                        0, step.syscall, src_key, src_label, dst_key, dst_label
                    )
                )

        noise_events = self._noise(rng, resolve, instance_id)
        merged = _interleave(rng, behavior_events, noise_events)
        return [
            SyscallEvent(i, e.syscall, e.src_key, e.src_label, e.dst_key, e.dst_label)
            for i, e in enumerate(merged)
        ]

    def _noise(self, rng, resolve, instance_id: str) -> list[SyscallEvent]:
        """Common-activity noise interleaved into every instance."""
        pools = LabelPools(rng)
        main_key, main_label = resolve(self.main)
        count = rng.randint(*self.noise_range)
        events: list[SyscallEvent] = []
        for i in range(count):
            choice = rng.random()
            if choice < 0.30:
                label = pools.draw("tmp_file")
                events.append(
                    SyscallEvent(
                        0, "open", main_key, main_label, f"n{i}#{instance_id}", label
                    )
                )
            elif choice < 0.45:
                target = rng.choice((LOCALE, PASSWD, NSSWITCH, PROC_STAT, LD_CACHE))
                events.append(
                    SyscallEvent(
                        0, "open", main_key, main_label, target.label, target.label
                    )
                )
            elif choice < 0.60:
                label = pools.draw("user_file")
                events.append(
                    SyscallEvent(
                        0, "read", main_key, main_label, f"n{i}#{instance_id}", label
                    )
                )
            elif choice < 0.80:
                job = pools.draw("proc_misc")
                tmp = pools.draw("log_file")
                events.append(
                    SyscallEvent(
                        0,
                        "write",
                        f"j{i}#{instance_id}",
                        job,
                        f"l{i}#{instance_id}",
                        tmp,
                    )
                )
            else:
                events.append(
                    SyscallEvent(
                        0,
                        "write",
                        RSYSLOG.label,
                        RSYSLOG.label,
                        SYSLOG.label,
                        SYSLOG.label,
                    )
                )
        return events


def _interleave(rng, primary: list[SyscallEvent], noise: list[SyscallEvent]) -> list:
    """Random interleave preserving each stream's internal order."""
    merged: list[SyscallEvent] = []
    i = j = 0
    while i < len(primary) or j < len(noise):
        remaining_primary = len(primary) - i
        remaining_noise = len(noise) - j
        take_primary = rng.random() < remaining_primary / (
            remaining_primary + remaining_noise
        )
        if take_primary:
            merged.append(primary[i])
            i += 1
        else:
            merged.append(noise[j])
            j += 1
    return merged


# ----------------------------------------------------------------------
# the twelve behaviors
# ----------------------------------------------------------------------
def _bzip2_decompress() -> BehaviorTemplate:
    proc = fresh("bzip2", "proc:bzip2")
    arc = fresh("arc", "file:/home/backup.bz2")
    out = fresh("out", "file:/home/backup")
    steps = _prologue(proc) + [
        Step(proc, BIN_BZIP2, "mmap"),
        Step(proc, LIBBZ2, "open"),
        Step(proc, MAGIC, "open"),
        Step(proc, arc, "open", core=True),
        Step(arc, proc, "read", core=True, repeat=(1, 2)),
        Step(proc, out, "write", core=True, repeat=(1, 2)),
        Step(proc, arc, "unlink", prob=0.6),
    ]
    return BehaviorTemplate(
        name="bzip2-decompress",
        category="file-compression",
        size_class="small",
        main=proc,
        steps=tuple(steps),
        noise_range=(1, 3),
        abort_prob=0.0,
    )


def _gzip_decompress() -> BehaviorTemplate:
    proc = fresh("gzip", "proc:gzip")
    arc = fresh("arc", "file:/home/archive.gz")
    out = fresh("out", "file:/home/archive")
    steps = _prologue(proc) + [
        Step(proc, BIN_GZIP, "mmap"),
        Step(proc, LIBZ, "open"),
        Step(proc, MAGIC, "open"),
        Step(proc, arc, "open", core=True),
        Step(arc, proc, "read", core=True, repeat=(1, 3)),
        Step(proc, out, "write", core=True, repeat=(1, 2)),
        Step(proc, arc, "unlink", prob=0.7),
    ]
    return BehaviorTemplate(
        name="gzip-decompress",
        category="file-compression",
        size_class="small",
        main=proc,
        steps=tuple(steps),
        noise_range=(1, 3),
        abort_prob=0.0,
    )


def _wget_download() -> BehaviorTemplate:
    proc = fresh("wget", "proc:wget")
    dns = fresh("dns", "sock:dns:53")
    http = fresh("http", "sock:remote:80")
    out = pooled("out", "download")
    steps = _prologue(proc) + [
        Step(proc, BIN_WGET, "mmap"),
        Step(proc, WGETRC, "open"),
        Step(proc, RESOLV, "open", core=True),
        Step(proc, dns, "sendto", core=True),
        Step(dns, proc, "recvfrom", core=True),
        Step(proc, WGET_HSTS, "open", core=True),
        Step(proc, http, "connect", core=True),
        Step(http, proc, "recvmsg", core=True, repeat=(2, 5)),
        Step(proc, out, "write", core=True, repeat=(1, 3)),
        Step(proc, SSL_CERTS, "open", prob=0.5),
        Step(proc, HOSTS, "open", prob=0.6),
    ]
    return BehaviorTemplate(
        name="wget-download",
        category="file-download",
        size_class="small",
        main=proc,
        steps=tuple(steps),
        noise_range=(6, 14),
        abort_prob=0.06,
    )


def _ftp_download() -> BehaviorTemplate:
    proc = fresh("ftp", "proc:ftp")
    dns = fresh("dns", "sock:dns:53")
    ctl = fresh("ctl", "sock:remote:21")
    data = fresh("data", "sock:remote:20")
    out = pooled("out", "download")
    steps = _prologue(proc) + [
        Step(proc, BIN_FTP, "mmap"),
        Step(proc, RESOLV, "open", core=True),
        Step(proc, dns, "sendto", core=True),
        Step(dns, proc, "recvfrom", core=True),
        Step(proc, NETRC, "open", core=True),
        Step(proc, ctl, "connect", core=True),
        Step(ctl, proc, "recvmsg", core=True, repeat=(2, 4)),
        Step(proc, data, "connect", core=True),
        Step(data, proc, "recvmsg", core=True, repeat=(4, 10)),
        Step(proc, out, "write", core=True, repeat=(2, 6)),
        Step(proc, ctl, "sendmsg", prob=0.8, repeat=(1, 4)),
    ]
    return BehaviorTemplate(
        name="ftp-download",
        category="file-download",
        size_class="small",
        main=proc,
        steps=tuple(steps),
        noise_range=(8, 16),
        abort_prob=0.04,
    )


def _scp_download() -> BehaviorTemplate:
    # scp runs the ssh client underneath and has NO scp-specific process
    # label: node for node its structure equals ssh-login's (same labels,
    # same adjacent edges), so keyword and order-free queries cannot tell
    # the two behaviors apart.  Only the temporal order differs: scp
    # forks its transfer helper *before* the handshake and reads
    # known_hosts before ssh_config, while ssh-login does the opposite.
    driver = fresh("driver", "proc:ssh")
    helper = fresh("helper", "proc:ssh")
    sock = fresh("sock", "sock:remote:22")
    out = pooled("out", "download")
    steps = _prologue(driver) + [
        Step(driver, BIN_SSH, "mmap"),
        Step(driver, LIBCRYPTO, "open"),
        Step(driver, helper, "fork", core=True),
        *_ssh_handshake(driver, sock, order="scp"),
        Step(sock, driver, "recvmsg", core=True, repeat=(3, 8)),
        Step(driver, out, "write", core=True, repeat=(2, 6)),
        Step(driver, HOSTS, "open", prob=0.5),
    ]
    return BehaviorTemplate(
        name="scp-download",
        category="file-download",
        size_class="medium",
        main=driver,
        steps=tuple(steps),
        noise_range=(14, 26),
        abort_prob=0.08,
    )


def _gcc_compile(plus: bool = False) -> BehaviorTemplate:
    driver_label = "proc:g++" if plus else "proc:gcc"
    cc_label = "proc:cc1plus" if plus else "proc:cc1"
    driver = fresh("driver", driver_label)
    cc = fresh("cc", cc_label)
    asm = fresh("as", "proc:as")
    collect = fresh("collect2", "proc:collect2")
    linker = fresh("ld", "proc:ld")
    src = pooled("src", "src_file")
    tmps = fresh("tmps", "file:/tmp/cc.s")
    tmpo = fresh("tmpo", "file:/tmp/cc.o")
    aout = fresh("aout", "file:/home/a.out")
    include = CPP_INCLUDE if plus else USR_INCLUDE
    steps = _prologue(driver) + [
        Step(driver, BIN_GPP if plus else BIN_GCC, "mmap"),
        Step(driver, src, "open", core=True),
        Step(driver, cc, "fork", core=True),
        Step(cc, src, "read", core=True),
        Step(cc, include, "open", core=True, repeat=(3, 8)),
        Step(cc, tmps, "write", core=True, repeat=(1, 3)),
        Step(driver, asm, "fork", core=True),
        Step(asm, tmps, "read", core=True),
        Step(asm, tmpo, "write", core=True),
        Step(driver, collect, "fork", core=True),
        Step(collect, linker, "fork", core=True),
        Step(linker, tmpo, "read", core=True),
        Step(linker, CRT1, "open", core=True),
        Step(linker, LIBC_A, "open", core=True),
        *([Step(linker, LIBSTDCPP, "open", core=True)] if plus else []),
        Step(linker, aout, "write", core=True),
        Step(driver, LD_CACHE, "open", prob=0.7),
    ]
    return BehaviorTemplate(
        name="g++-compile" if plus else "gcc-compile",
        category="code-compilation",
        size_class="medium",
        main=driver,
        steps=tuple(steps),
        noise_range=(18, 34),
        abort_prob=0.12 if plus else 0.11,
    )


def _ftpd_login() -> BehaviorTemplate:
    # Server side of an ftp login.  Shares the PAM labels with sshd-login
    # (shadow / auth.log / wtmp) but reads them in a different order and
    # direction, so only order-aware queries separate the two.
    daemon = fresh("ftpd", "proc:ftpd")
    sock = fresh("sock", "sock:local:21")
    shell = fresh("shell", "proc:bash")
    steps = _prologue(daemon) + [
        Step(daemon, BIN_FTPD, "mmap"),
        Step(daemon, FTPUSERS, "open", core=True),
        Step(sock, daemon, "accept", core=True),
        Step(daemon, PAM_FTPD, "open", core=True),
        Step(daemon, SHADOW, "open", core=True),
        Step(daemon, WTMP, "write", core=True),
        Step(daemon, AUTH_LOG, "write", core=True),
        Step(daemon, sock, "sendmsg", core=True, repeat=(1, 3)),
        Step(daemon, shell, "fork", core=True),
        Step(shell, PASSWD, "open", prob=0.8),
        Step(daemon, sock, "sendmsg", prob=0.7, repeat=(2, 8)),
    ]
    return BehaviorTemplate(
        name="ftpd-login",
        category="remote-login",
        size_class="medium",
        main=daemon,
        steps=tuple(steps),
        noise_range=(16, 30),
        abort_prob=0.12,
    )


def _ssh_login() -> BehaviorTemplate:
    proc = fresh("ssh", "proc:ssh")
    mux = fresh("mux", "proc:ssh")
    sock = fresh("sock", "sock:remote:22")
    steps = _prologue(proc) + [
        Step(proc, BIN_SSH, "mmap"),
        Step(proc, LIBCRYPTO, "open"),
        *_ssh_handshake(proc, sock, order="client"),
        Step(proc, DEV_PTS, "ioctl", prob=0.9),
        Step(sock, proc, "recvmsg", core=True, repeat=(2, 6)),
        # Control-master mux process spawned once the session is up: the
        # same ssh->ssh fork edge scp performs *before* its handshake, so
        # non-temporal queries cannot tell the two behaviors apart.
        Step(proc, mux, "fork", core=True),
        Step(proc, sock, "sendmsg", prob=0.8, repeat=(2, 6)),
        Step(proc, LOCALE, "open", prob=0.6),
        Step(proc, HOSTS, "open", prob=0.5),
    ]
    return BehaviorTemplate(
        name="ssh-login",
        category="remote-login",
        size_class="medium",
        main=proc,
        steps=tuple(steps),
        noise_range=(20, 36),
        abort_prob=0.13,
    )


def _sshd_login() -> BehaviorTemplate:
    # Server side.  The discriminative footprint involves PAM files, the
    # login records, and the spawned shell — note there is no node whose
    # label would be found by the keyword "sshd" alone being rare, since
    # ftpd-login touches the same record files (Figure 10's observation).
    daemon = fresh("sshd", "proc:sshd")
    net = fresh("net", "proc:sshd")
    sock = fresh("sock", "sock:local:22")
    shell = fresh("shell", "proc:bash")
    steps = _prologue(daemon) + [
        Step(daemon, BIN_SSHD, "mmap"),
        Step(daemon, LIBCRYPTO, "open"),
        Step(daemon, SSHD_CFG, "open", core=True),
        Step(sock, daemon, "accept", core=True),
        Step(daemon, net, "fork", core=True),
        Step(net, sock, "recvmsg", core=True, repeat=(1, 3)),
        Step(net, PAM_SSHD, "open", core=True),
        Step(SHADOW, net, "read", core=True),
        Step(net, AUTH_LOG, "write", core=True),
        Step(net, WTMP, "write", core=True),
        Step(net, MOTD, "open", core=True),
        Step(net, DEV_PTS, "ioctl", core=True),
        Step(net, shell, "fork", core=True),
        Step(shell, PASSWD, "open", core=True),
        Step(shell, LOCALE, "open", prob=0.7),
        Step(net, sock, "sendmsg", prob=0.8, repeat=(3, 10)),
        Step(sock, net, "recvmsg", prob=0.8, repeat=(3, 10)),
    ]
    return BehaviorTemplate(
        name="sshd-login",
        category="remote-login",
        size_class="large",
        main=daemon,
        steps=tuple(steps),
        noise_range=(40, 70),
        abort_prob=0.001,
    )


def _apt_get_update() -> BehaviorTemplate:
    apt = fresh("apt", "proc:apt-get")
    http = fresh("http", "proc:apt-http")
    sock = fresh("sock", "sock:remote:80")
    steps = _prologue(apt) + [
        Step(apt, BIN_APT, "mmap"),
        Step(apt, APT_LOCK, "open", core=True),
        Step(apt, SOURCES_LIST, "open", core=True),
        Step(apt, http, "fork", core=True),
        Step(http, RESOLV, "open", core=True),
        Step(http, sock, "connect", core=True),
        Step(sock, http, "recvmsg", core=True, repeat=(4, 12)),
        Step(http, apt, "pipe", core=True, repeat=(2, 6)),
        Step(apt, APT_LISTS, "write", core=True, repeat=(3, 9)),
        Step(apt, APT_LOCK, "unlink", core=True),
        Step(apt, PROC_STAT, "open", prob=0.5),
    ]
    return BehaviorTemplate(
        name="apt-get-update",
        category="software-management",
        size_class="large",
        main=apt,
        steps=tuple(steps),
        noise_range=(45, 80),
        abort_prob=0.16,
    )


def _apt_get_install() -> BehaviorTemplate:
    apt = fresh("apt", "proc:apt-get")
    http = fresh("http", "proc:apt-http")
    sock = fresh("sock", "sock:remote:80")
    dpkg = fresh("dpkg", "proc:dpkg")
    ldconfig = fresh("ldconfig", "proc:ldconfig")
    deb = pooled("deb", "deb_package")
    steps = _prologue(apt) + [
        Step(apt, BIN_APT, "mmap"),
        Step(apt, APT_LOCK, "open", core=True),
        Step(apt, SOURCES_LIST, "open", core=True),
        Step(apt, DPKG_STATUS, "open", core=True),
        Step(apt, http, "fork", core=True),
        Step(http, sock, "connect", core=True),
        Step(sock, http, "recvmsg", core=True, repeat=(6, 14)),
        Step(http, deb, "write", core=True, repeat=(2, 5)),
        Step(apt, dpkg, "fork", core=True),
        Step(dpkg, deb, "read", core=True, repeat=(2, 5)),
        Step(dpkg, DPKG_STATUS, "write", core=True, repeat=(2, 4)),
        Step(dpkg, ldconfig, "fork", core=True),
        Step(ldconfig, LD_CACHE, "write", core=True),
        Step(apt, APT_LOCK, "unlink", core=True),
        Step(dpkg, SYSLOG, "write", prob=0.6, repeat=(1, 3)),
    ]
    return BehaviorTemplate(
        name="apt-get-install",
        category="software-management",
        size_class="large",
        main=apt,
        steps=tuple(steps),
        noise_range=(60, 100),
        abort_prob=0.15,
    )


def _build_registry() -> dict[str, BehaviorTemplate]:
    templates = [
        _bzip2_decompress(),
        _gzip_decompress(),
        _wget_download(),
        _ftp_download(),
        _scp_download(),
        _gcc_compile(plus=False),
        _gcc_compile(plus=True),
        _ftpd_login(),
        _ssh_login(),
        _sshd_login(),
        _apt_get_update(),
        _apt_get_install(),
    ]
    return {t.name: t for t in templates}


#: Registry of the 12 behavior templates, keyed by behavior name.
BEHAVIORS: dict[str, BehaviorTemplate] = _build_registry()

#: Behavior names in the paper's Table 1 order.
BEHAVIOR_NAMES: tuple[str, ...] = (
    "bzip2-decompress",
    "gzip-decompress",
    "wget-download",
    "ftp-download",
    "scp-download",
    "gcc-compile",
    "g++-compile",
    "ftpd-login",
    "ssh-login",
    "sshd-login",
    "apt-get-update",
    "apt-get-install",
)

#: Size classes used by the Figure 13 grouping.
SIZE_CLASSES: dict[str, tuple[str, ...]] = {
    "small": ("bzip2-decompress", "gzip-decompress", "wget-download", "ftp-download"),
    "medium": ("scp-download", "gcc-compile", "g++-compile", "ftpd-login", "ssh-login"),
    "large": ("sshd-login", "apt-get-update", "apt-get-install"),
}

#: The five behavior categories of Appendix L.
CATEGORIES: tuple[str, ...] = (
    "file-compression",
    "code-compilation",
    "file-download",
    "remote-login",
    "software-management",
)


def get_behavior(name: str) -> BehaviorTemplate:
    """Look up a behavior template by name."""
    try:
        return BEHAVIORS[name]
    except KeyError:
        raise DatasetError(
            f"unknown behavior {name!r}; known: {', '.join(BEHAVIOR_NAMES)}"
        ) from None
