"""Background system activity (paper Appendix L, "background" row of Table 1).

Background logs come from a server running only default applications —
cron jobs, logging daemons, shell housekeeping — with none of the target
behaviors.  The generator deliberately touches the *common* label
vocabulary the behaviors also touch (libc, locale, resolv.conf, password
database, tmp files, and a long tail of pooled labels) so that common
structure is non-discriminative, while never emitting any behavior's core
footprint.
"""

from __future__ import annotations

import random

from repro.syscall import behaviors as B
from repro.syscall.entities import LabelPools
from repro.syscall.events import SyscallEvent

__all__ = ["generate_background_events", "BackgroundGenerator"]

#: Persistent entities background activity may touch.
_COMMON_TARGETS = (
    B.LIBC,
    B.LDSO,
    B.LOCALE,
    B.PASSWD,
    B.NSSWITCH,
    B.RESOLV,
    B.HOSTS,
    B.PROC_STAT,
    B.SSL_CERTS,
    B.LD_CACHE,
)


def generate_background_events(
    rng: random.Random, count: int, stream_id: str
) -> list[SyscallEvent]:
    """Produce ``count`` background events with relative timestamps 0..n-1.

    ``stream_id`` namespaces per-stream fresh entities so that separately
    generated streams never share transient nodes.
    """
    pools = LabelPools(rng)
    events: list[SyscallEvent] = []
    # A handful of transient jobs active during this stream.
    jobs = [
        (f"job{j}#{stream_id}", pools.draw("proc_misc"))
        for j in range(max(2, count // 25))
    ]
    # Brute-force ssh login attempts are constant Internet background
    # noise (paper cites the "10 year old attack that still persists"):
    # a failed attempt touches the PAM/sshd vocabulary without the login
    # completion tail, degrading keyword and order-free queries while
    # leaving full-login temporal footprints unique.
    if count >= 40 and rng.random() < 0.5:
        attacker = f"sshd{stream_id}"
        sock_key = f"asock{stream_id}"
        for step, (src, dst) in enumerate(
            (
                (sock_key, attacker),
                (attacker, B.PAM_SSHD.label),
                (B.SHADOW.label, attacker),
                (attacker, B.AUTH_LOG.label),
            )
        ):
            src_label = "sock:local:22" if src == sock_key else (
                "proc:sshd" if src == attacker else src
            )
            dst_label = "proc:sshd" if dst == attacker else dst
            events.append(
                SyscallEvent(0, "auth", src, src_label, dst, dst_label)
            )
    for i in range(count):
        roll = rng.random()
        if roll < 0.18:
            # cron wakes up and spawns a job
            job_key, job_label = rng.choice(jobs)
            events.append(
                SyscallEvent(i, "fork", B.CRON.label, B.CRON.label, job_key, job_label)
            )
        elif roll < 0.30:
            target = rng.choice(_COMMON_TARGETS)
            job_key, job_label = rng.choice(jobs)
            events.append(
                SyscallEvent(i, "open", job_key, job_label, target.label, target.label)
            )
        elif roll < 0.45:
            job_key, job_label = rng.choice(jobs)
            label = pools.draw("tmp_file")
            events.append(
                SyscallEvent(i, "write", job_key, job_label, f"t{i}#{stream_id}", label)
            )
        elif roll < 0.58:
            job_key, job_label = rng.choice(jobs)
            label = pools.draw("user_file")
            events.append(
                SyscallEvent(i, "read", job_key, job_label, f"u{i}#{stream_id}", label)
            )
        elif roll < 0.70:
            job_key, job_label = rng.choice(jobs)
            label = pools.draw("log_file")
            events.append(
                SyscallEvent(i, "write", job_key, job_label, f"l{i}#{stream_id}", label)
            )
        elif roll < 0.80:
            events.append(
                SyscallEvent(
                    i,
                    "write",
                    B.RSYSLOG.label,
                    B.RSYSLOG.label,
                    B.SYSLOG.label,
                    B.SYSLOG.label,
                )
            )
        elif roll < 0.88:
            events.append(
                SyscallEvent(
                    i,
                    "open",
                    B.CRON.label,
                    B.CRON.label,
                    B.CRONTAB.label,
                    B.CRONTAB.label,
                )
            )
        else:
            # bash housekeeping: spawn short-lived helper touching a file
            helper_key = f"h{i}#{stream_id}"
            helper_label = pools.draw("proc_misc")
            events.append(
                SyscallEvent(
                    i, "fork", B.BASH.label, B.BASH.label, helper_key, helper_label
                )
            )
    # Renumber: the injected fragment above used placeholder times, so
    # assign dense strictly-increasing timestamps over the final order.
    return [
        SyscallEvent(t, e.syscall, e.src_key, e.src_label, e.dst_key, e.dst_label)
        for t, e in enumerate(events)
    ]


class BackgroundGenerator:
    """Stateful generator producing numbered background streams."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._counter = 0

    def stream(self, count: int) -> list[SyscallEvent]:
        """Generate the next background stream of ``count`` events."""
        self._counter += 1
        return generate_background_events(self._rng, count, f"bg{self._counter}")
