"""The :class:`Workspace` facade — one stable entry point for the pipeline.

The paper's deployment story is *train offline, serve online*:
formulate behavior queries from closed-environment training runs, then
run them continuously against monitoring data.  :class:`Workspace` is
the SDK surface for that whole loop — the CLI, the examples, and the
tests all go through it::

    from repro.api import Workspace

    ws = Workspace(seed=7)
    train = ws.generate(instances_per_behavior=10, background_graphs=30)
    model = ws.mine(train, behaviors=["sshd-login"], top_k=3)
    model.save("sshd.tgm")                       # one deployable artifact

    # ... later, in a different process ...
    model = BehaviorModel.load("sshd.tgm")
    report = ws.query(model, ws.generate_test(instances=24))   # batch
    service = ws.serve(model)                                  # streaming
    detections = service.ingest(event_batch)

Batch and streaming share one matching core, so ``query`` over a frozen
log and ``serve`` over the same log replayed as a stream report
span-identical detections (asserted by ``tests/test_api.py``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.api.model import BehaviorModel, BehaviorRecord
from repro.core.errors import DatasetError
from repro.core.graph import TemporalGraph
from repro.core.kernel import LabelInterner
from repro.core.miner import MinerConfig
from repro.core.ranking import InterestModel, rank_patterns
from repro.datasets.io import load_corpus, save_corpus
from repro.datasets.store import BACKGROUND_PARTITION, CorpusStore
from repro.experiments.harness import (
    DEFAULT_SPAN_SLACK,
    mine_all_behaviors,
    mine_all_behaviors_from_store,
    span_cap,
)
from repro.query.engine import QueryEngine
from repro.query.evaluation import PrecisionRecall, evaluate_spans, pool_spans
from repro.serving import DetectionFleet, Ingestor, ServingHandle
from repro.serving.checkpoint import DEFAULT_CHECKPOINT_EVERY, CheckpointedService
from repro.serving.http import HttpServingHandle, serve_http
from repro.serving.model_registry import ModelRegistry, RegistryEntry
from repro.serving.service import DetectionService
from repro.syscall.collector import (
    TestData,
    TrainingData,
    build_test_data,
    build_training_data,
)
from repro.syscall.events import SyscallEvent

__all__ = ["Workspace", "EvaluationReport", "BehaviorEvaluation"]

Span = tuple[int, int]

#: Windowed-scan width as a multiple of the model's largest span cap
#: (the overlap between consecutive windows is one cap, so a width of
#: N caps re-scans 1/N of every window — 8 keeps that tax near 12%).
DEFAULT_SCAN_WIDTH_CAPS = 8


@dataclass(frozen=True)
class BehaviorEvaluation:
    """One behavior's batch-query outcome: pooled spans (+ accuracy)."""

    behavior: str
    spans: tuple[Span, ...]
    accuracy: PrecisionRecall | None

    def as_dict(self) -> dict:
        """JSON-compatible form."""
        return {
            "behavior": self.behavior,
            "spans": [list(span) for span in self.spans],
            "accuracy": self.accuracy.as_dict() if self.accuracy else None,
        }


@dataclass(frozen=True)
class EvaluationReport:
    """Outcome of :meth:`Workspace.query` over every requested behavior."""

    behaviors: dict[str, BehaviorEvaluation]

    @property
    def identified(self) -> int:
        """Total identified instances (distinct spans) across behaviors."""
        return sum(len(ev.spans) for ev in self.behaviors.values())

    def describe(self) -> str:
        """Human-readable per-behavior table."""
        lines = []
        for ev in self.behaviors.values():
            if ev.accuracy is not None:
                lines.append(ev.accuracy.as_row())
            else:
                lines.append(f"{ev.behavior:20s} identified={len(ev.spans)}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-compatible form."""
        return {name: ev.as_dict() for name, ev in self.behaviors.items()}


class Workspace:
    """Facade over generate → mine → query → serve (see module doc).

    Parameters
    ----------
    seed:
        Default RNG seed for :meth:`generate` / :meth:`generate_test`.
    workers:
        Default behavior-level fan-out for :meth:`mine`.
    """

    def __init__(self, seed: int = 7, workers: int = 1) -> None:
        self.seed = seed
        self.workers = workers

    # ------------------------------------------------------------------
    # data
    # ------------------------------------------------------------------
    def generate(
        self,
        instances_per_behavior: int = 10,
        background_graphs: int = 30,
        behaviors: Sequence[str] | None = None,
        seed: int | None = None,
    ) -> TrainingData:
        """Build a closed-environment training corpus (paper Section 6.1)."""
        overrides: dict = {
            "instances_per_behavior": instances_per_behavior,
            "background_graphs": background_graphs,
            "seed": self.seed if seed is None else seed,
        }
        if behaviors is not None:
            overrides["behaviors"] = tuple(behaviors)
        return build_training_data(**overrides)

    def generate_test(
        self,
        instances: int = 24,
        behaviors: Sequence[str] | None = None,
        seed: int | None = None,
    ) -> TestData:
        """Build a busy-host test log with ground-truth intervals."""
        overrides: dict = {
            "instances": instances,
            "seed": self.seed if seed is None else seed,
        }
        if behaviors is not None:
            overrides["behaviors"] = tuple(behaviors)
        return build_test_data(**overrides)

    def save_corpus(self, train: TrainingData, root: str | Path) -> int:
        """Persist a corpus as a jsonl directory; returns graphs written."""
        return save_corpus(train, root)

    def load_corpus(
        self, root: str | Path, behaviors: Sequence[str] | None = None
    ) -> TrainingData:
        """Load a corpus directory (optionally one behavior subset)."""
        return load_corpus(root, behaviors)

    # ------------------------------------------------------------------
    # offline: mining a model
    # ------------------------------------------------------------------
    def mine(
        self,
        train: TrainingData | None = None,
        behaviors: Sequence[str] | None = None,
        config: MinerConfig | None = None,
        workers: int | None = None,
        seed_workers: int = 1,
        top_k: int = 5,
        slack: float = DEFAULT_SPAN_SLACK,
        store: CorpusStore | str | Path | None = None,
        memory_budget_mb: float | None = None,
    ) -> BehaviorModel:
        """Mine behavior queries into one versioned :class:`BehaviorModel`.

        Delegates to
        :func:`~repro.experiments.harness.mine_all_behaviors`:
        ``workers`` fans whole behaviors out across processes,
        ``seed_workers`` shards each behavior's seed search via
        :class:`~repro.core.parallel.ParallelMiner` (both byte-identical
        to the serial miner; they do not compose).  Each behavior's
        co-optimal patterns are ranked by the Appendix-M interest model
        and the top ``top_k`` become the behavior's queries, capped at
        the behavior's observed lifetime dilated by ``slack``.

        With ``store=`` (a :class:`~repro.datasets.store.CorpusStore` or
        a path to one) instead of ``train=``, the corpus streams from
        disk: one behavior partition is decoded at a time (pool workers
        attach to the store read-only), the interest model and label
        interner fit from the graph catalog without touching edge pages,
        and peak memory stays bounded by the largest partition plus
        ``memory_budget_mb`` — the resulting model is byte-identical to
        mining ``store.load_training_data(behaviors)`` in memory.
        """
        if (train is None) == (store is None):
            raise DatasetError("mine() needs exactly one of train= or store=")
        if store is not None:
            return self._mine_from_store(
                store,
                behaviors=behaviors,
                config=config,
                workers=workers,
                seed_workers=seed_workers,
                top_k=top_k,
                slack=slack,
                memory_budget_mb=memory_budget_mb,
            )
        names = (
            list(behaviors) if behaviors is not None else list(train.config.behaviors)
        )
        config = config or MinerConfig()
        effective_workers = self.workers if workers is None else workers
        results = mine_all_behaviors(
            train,
            names,
            config,
            workers=effective_workers,
            seed_workers=seed_workers,
        )
        interest = InterestModel.fit(train.all_graphs())
        records: dict[str, BehaviorRecord] = {}
        for name, result in results.items():
            ranked = rank_patterns(result.best, interest)[:top_k]
            records[name] = BehaviorRecord(
                behavior=name,
                span_cap=span_cap(train, name, slack),
                patterns=tuple(ranked),
                co_optimal=len(result.best),
                patterns_explored=result.stats.patterns_explored,
                subgraph_tests=result.stats.subgraph_tests,
                index_prefilter_skips=result.stats.index_prefilter_skips,
                elapsed_seconds=result.stats.elapsed_seconds,
                timed_out=result.stats.timed_out,
            )
        interner = LabelInterner()
        for graph in train.all_graphs():
            for label in graph.labels:
                interner.intern(label)
        return BehaviorModel(
            config=config,
            records=records,
            labels=interner.snapshot(),
            provenance={
                # corpora loaded from disk carry seed=-1 (unknown)
                "seed": train.config.seed if train.config.seed >= 0 else None,
                "instances_per_behavior": train.config.instances_per_behavior,
                "background_graphs": train.config.background_graphs,
                "workers": effective_workers,
                "seed_workers": seed_workers,
                "top_k": top_k,
                "slack": slack,
            },
        )

    def _mine_from_store(
        self,
        store: CorpusStore | str | Path,
        *,
        behaviors: Sequence[str] | None,
        config: MinerConfig | None,
        workers: int | None,
        seed_workers: int,
        top_k: int,
        slack: float,
        memory_budget_mb: float | None,
    ) -> BehaviorModel:
        """:meth:`mine` streaming from a disk-backed corpus store."""
        opened_here = not isinstance(store, CorpusStore)
        if opened_here:
            store = CorpusStore.open(store, memory_budget_mb=memory_budget_mb)
        try:
            names = list(behaviors) if behaviors is not None else store.behaviors()
            if not names:
                raise DatasetError(
                    f"no behavior partitions in store {store.path}"
                )
            config = config or MinerConfig()
            effective_workers = self.workers if workers is None else workers
            results = mine_all_behaviors_from_store(
                store,
                names,
                config,
                workers=effective_workers,
                seed_workers=seed_workers,
                memory_budget_mb=memory_budget_mb,
            )
            # one streaming pass over the node-label catalog, in the
            # exact all_graphs() order (selected behaviors, then
            # background), feeding the interner and the interest model
            # together without decoding any edge pages
            interner = LabelInterner()

            def label_sets():
                for name in names:
                    yield from store.iter_graph_labels(name, kind="behavior")
                yield from store.iter_graph_labels(
                    BACKGROUND_PARTITION, kind="background"
                )

            def intern_and_collect():
                for labels in label_sets():
                    for label in labels:
                        interner.intern(label)
                    yield frozenset(labels)

            interest = InterestModel.fit_label_sets(intern_and_collect())
            records: dict[str, BehaviorRecord] = {}
            for name, result in results.items():
                ranked = rank_patterns(result.best, interest)[:top_k]
                records[name] = BehaviorRecord(
                    behavior=name,
                    span_cap=int(store.max_span(name) * slack),
                    patterns=tuple(ranked),
                    co_optimal=len(result.best),
                    patterns_explored=result.stats.patterns_explored,
                    subgraph_tests=result.stats.subgraph_tests,
                    index_prefilter_skips=result.stats.index_prefilter_skips,
                    elapsed_seconds=result.stats.elapsed_seconds,
                    timed_out=result.stats.timed_out,
                )
            return BehaviorModel(
                config=config,
                records=records,
                labels=interner.snapshot(),
                provenance={
                    # a store, like a corpus directory, does not record
                    # its generation seed
                    "seed": None,
                    "instances_per_behavior": max(
                        1,
                        min(
                            store.graph_count(name, kind="behavior")
                            for name in names
                        ),
                    ),
                    "background_graphs": store.graph_count(
                        BACKGROUND_PARTITION, kind="background"
                    ),
                    "workers": effective_workers,
                    "seed_workers": seed_workers,
                    "top_k": top_k,
                    "slack": slack,
                },
            )
        finally:
            if opened_here:
                store.close()

    # ------------------------------------------------------------------
    # online: batch query + streaming serve
    # ------------------------------------------------------------------
    def query(
        self,
        model: BehaviorModel,
        test: TestData | TemporalGraph | None = None,
        behaviors: Sequence[str] | None = None,
        use_index: bool = True,
        store: CorpusStore | str | Path | None = None,
        log: str | None = None,
        scan_width: int | None = None,
        memory_budget_mb: float | None = None,
    ) -> EvaluationReport:
        """Run a model's queries against a monitoring graph (batch).

        ``test`` may be a bare :class:`TemporalGraph` (spans only) or a
        :class:`TestData` with ground truth, in which case each
        behavior's pooled spans are also scored for precision/recall
        (paper Section 6.2 semantics).

        With ``store=`` and ``log=`` instead of ``test=``, the
        monitoring graph replays from a disk-backed corpus store as a
        sweep of overlapping time windows (each an indexed range scan;
        ``scan_width`` overrides the window width).  Queries whose
        pattern contains a label pair absent from the log's stored
        one-edge index are skipped without decoding a page, and window
        overlap equals the model's largest span cap, so pooled spans are
        identical to querying the materialized graph.
        """
        if (test is None) == (store is None):
            raise DatasetError("query() needs exactly one of test= or store=")
        if store is not None:
            if log is None:
                raise DatasetError("query(store=...) needs log= (the log name)")
            return self._query_from_store(
                model,
                store,
                log,
                behaviors=behaviors,
                use_index=use_index,
                scan_width=scan_width,
                memory_budget_mb=memory_budget_mb,
            )
        if isinstance(test, TestData):
            graph, truth = test.graph, test.instances
        else:
            graph, truth = test, None
        engine = QueryEngine(graph, use_index=use_index)
        names = list(behaviors) if behaviors is not None else list(model.behaviors)
        evaluations: dict[str, BehaviorEvaluation] = {}
        for name in names:
            spans = pool_spans(
                engine.search_query(query) for query in model.record(name).queries()
            )
            evaluations[name] = BehaviorEvaluation(
                behavior=name,
                spans=tuple(spans),
                accuracy=(
                    evaluate_spans(name, spans, truth) if truth is not None else None
                ),
            )
        return EvaluationReport(behaviors=evaluations)

    def _query_from_store(
        self,
        model: BehaviorModel,
        store: CorpusStore | str | Path,
        log: str,
        *,
        behaviors: Sequence[str] | None,
        use_index: bool,
        scan_width: int | None,
        memory_budget_mb: float | None,
    ) -> EvaluationReport:
        """:meth:`query` as a windowed sweep over a stored log graph."""
        opened_here = not isinstance(store, CorpusStore)
        if opened_here:
            store = CorpusStore.open(store, memory_budget_mb=memory_budget_mb)
        try:
            names = (
                list(behaviors) if behaviors is not None else list(model.behaviors)
            )
            # sound prefilter via the stored one-edge index: a pattern
            # edge whose label pair never occurs in the log cannot match
            # anywhere, so the whole query is skipped unscanned
            present = store.pair_labels(log)
            active: dict[str, list] = {}
            for name in names:
                active[name] = [
                    query
                    for query in model.record(name).queries()
                    if all(
                        (query.pattern.label(u), query.pattern.label(v)) in present
                        for u, v in query.pattern.edges
                    )
                ]
            cap = max(
                (query.max_span for queries in active.values() for query in queries),
                default=0,
            )
            width = scan_width or max(DEFAULT_SCAN_WIDTH_CAPS * cap, cap + 1)
            if width <= cap:
                raise DatasetError(
                    f"scan_width {width} must exceed the largest span cap {cap}"
                )
            spans_by_behavior: dict[str, set[Span]] = {name: set() for name in names}
            if any(active.values()):
                # overlap >= cap: every match (span <= its query's cap)
                # falls entirely inside at least one window, and the
                # span set dedupes matches seen in two windows
                for _start, window in store.iter_windows(log, width, overlap=cap):
                    if not window.num_edges:
                        continue
                    engine = QueryEngine(window, use_index=use_index)
                    for name in names:
                        for query in active[name]:
                            spans_by_behavior[name].update(
                                engine.search_query(query)
                            )
            return EvaluationReport(
                behaviors={
                    name: BehaviorEvaluation(
                        behavior=name,
                        spans=tuple(sorted(spans_by_behavior[name])),
                        accuracy=None,
                    )
                    for name in names
                }
            )
        finally:
            if opened_here:
                store.close()

    def serve(
        self,
        model: BehaviorModel,
        window_span: int | None = None,
        behaviors: Sequence[str] | None = None,
        use_prefilter: bool = True,
        shards: int | None = None,
        registry: ModelRegistry | str | Path | None = None,
        version: int | None = None,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int | None = None,
        **fleet_options,
    ) -> ServingHandle:
        """Build a streaming deployment with the model's queries registered.

        With ``shards`` unset the deployment is a single-window
        :class:`DetectionService`; with ``shards`` set, a sharded
        multi-tenant :class:`~repro.serving.DetectionFleet` (events route
        by tenant key — ``src_key`` prefix before ``"|"`` by default —
        and extra keyword options like ``runner``, ``queue_depth``,
        ``tenant_key``, ``assign``, ``start_method`` forward to the
        fleet constructor).  Either way the returned
        :class:`~repro.serving.ServingHandle` satisfies the
        :class:`~repro.serving.Ingestor` protocol by delegation — ready
        to ``ingest``/``replay`` — and adds the deployment lifecycle:
        ``reload`` (hot-swap a new model without dropping the window),
        ``close()``, context-manager use, and the :class:`ModelRegistry`
        it serves from when ``registry`` is given.

        With ``checkpoint_dir`` set the deployment is durable: every
        batch is WAL-logged before it is applied and a snapshot is cut
        every ``checkpoint_every`` batches (see
        :mod:`repro.serving.checkpoint`).  Pointing a fresh ``serve()``
        at a directory holding state from an earlier run **resumes** it —
        the retained window, seen-span dedup, and stats are restored and
        detections continue span-identically to a process that never
        died.  The model's slate is hot-reloaded over the recovered one
        if it differs.

        A model mined (or loaded) in this process serves exactly the
        queries the bundle describes, so detections in a fresh serving
        process are span-identical to the mining process's batch
        :meth:`query` over the same log.
        """
        every = (
            DEFAULT_CHECKPOINT_EVERY if checkpoint_every is None
            else checkpoint_every
        )
        ingestor: Ingestor
        if shards is not None:
            ingestor = DetectionFleet(
                shards=shards,
                window_span=window_span,
                use_prefilter=use_prefilter,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=every,
                **fleet_options,
            )
        else:
            if fleet_options:
                unexpected = ", ".join(sorted(fleet_options))
                raise TypeError(
                    f"serve() options only valid with shards=: {unexpected}"
                )
            if checkpoint_dir is not None:
                ingestor = self._serve_durable(
                    model, checkpoint_dir, every,
                    window_span=window_span,
                    behaviors=behaviors,
                    use_prefilter=use_prefilter,
                )
                if registry is not None and not isinstance(registry, ModelRegistry):
                    registry = ModelRegistry(registry)
                return ServingHandle(
                    ingestor, model=model, registry=registry, version=version
                )
            ingestor = DetectionService(
                window_span=window_span, use_prefilter=use_prefilter
            )
        ingestor.register_all(model.queries(behaviors))
        if registry is not None and not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        return ServingHandle(ingestor, model=model, registry=registry, version=version)

    @staticmethod
    def _serve_durable(
        model: BehaviorModel,
        checkpoint_dir: str | Path,
        checkpoint_every: int,
        *,
        window_span: int | None,
        behaviors: Sequence[str] | None,
        use_prefilter: bool,
    ) -> CheckpointedService:
        """Build (or resume) a durable single-service deployment."""
        from repro.serving.checkpoint import CheckpointStore
        from repro.serving.registry import query_to_dict

        slate = model.queries(behaviors)
        probe = CheckpointStore(checkpoint_dir)
        if probe.fresh:
            service = DetectionService(
                window_span=window_span, use_prefilter=use_prefilter
            )
            service.register_all(slate)
            return CheckpointedService(
                service, checkpoint_dir,
                checkpoint_every=checkpoint_every, store=probe,
            )
        probe.close()
        wrapper, _ = CheckpointedService.recover(
            checkpoint_dir,
            window_span=window_span,
            use_prefilter=use_prefilter,
            checkpoint_every=checkpoint_every,
        )
        # resume serves the *given* model: hot-reload over the recovered
        # slate when they differ (window retention keeps detections
        # span-identical to a deployment that reloaded while alive)
        recovered_slate = [
            query_to_dict(q) for _, q in wrapper.service.registry
        ]
        if [query_to_dict(q) for q in slate] != recovered_slate:
            wrapper.reload(slate)
        return wrapper

    def serve_fleet(
        self,
        model: BehaviorModel,
        shards: int = 1,
        window_span: int | None = None,
        behaviors: Sequence[str] | None = None,
        use_prefilter: bool = True,
        **fleet_options,
    ) -> ServingHandle:
        """Deprecated alias for :meth:`serve` with ``shards=``.

        .. deprecated::
            ``serve()`` is the one deployment entry point; it returns the
            same fleet-backed :class:`~repro.serving.ServingHandle` this
            does.  Call ``serve(model, shards=N, ...)`` instead.
        """
        warnings.warn(
            "Workspace.serve_fleet() is deprecated; call "
            "Workspace.serve(model, shards=N, ...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.serve(
            model,
            window_span=window_span,
            behaviors=behaviors,
            use_prefilter=use_prefilter,
            shards=shards,
            **fleet_options,
        )

    def serve_http(
        self,
        model: BehaviorModel,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: ModelRegistry | str | Path | None = None,
        window_span: int | None = None,
        behaviors: Sequence[str] | None = None,
        use_prefilter: bool = True,
        version: int | None = None,
        canary_batches: int | None = None,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int | None = None,
    ) -> HttpServingHandle:
        """Put a model behind the HTTP serving tier (see ``serving/http.py``).

        Builds the same single-service deployment as :meth:`serve` and
        binds it to ``host:port`` (``port=0`` picks an ephemeral port).
        With ``registry`` given, the ``/v1/models`` endpoints manage
        versioned bundles, run canaries, and promote — promotion
        hot-reloads the live deployment without dropping its window.
        With ``checkpoint_dir`` the deployment is durable and resumes
        from the directory on restart (see :meth:`serve`); a graceful
        HTTP shutdown drains in-flight batches and cuts a final
        snapshot.  The returned handle is not serving until
        ``start_background()``/``serve_forever()``.
        """
        handle = self.serve(
            model,
            window_span=window_span,
            behaviors=behaviors,
            use_prefilter=use_prefilter,
            registry=registry,
            version=version,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )
        options = {} if canary_batches is None else {"canary_batches": canary_batches}
        return serve_http(
            handle, host=host, port=port, registry=handle.registry, **options
        )

    # ------------------------------------------------------------------
    # model registry accessors
    # ------------------------------------------------------------------
    @staticmethod
    def open_registry(root: str | Path) -> ModelRegistry:
        """Open (creating if absent) a model registry directory."""
        return ModelRegistry(root)

    @staticmethod
    def publish_model(
        registry: ModelRegistry | str | Path,
        model: BehaviorModel | str | Path,
    ) -> RegistryEntry:
        """Publish a model (object or bundle path) into a registry."""
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        return registry.publish(model)

    # ------------------------------------------------------------------
    # convenience passthroughs
    # ------------------------------------------------------------------
    @staticmethod
    def load_model(path: str | Path) -> BehaviorModel:
        """Shorthand for :meth:`BehaviorModel.load`."""
        return BehaviorModel.load(path)

    @staticmethod
    def replay(
        service: Ingestor,
        events: Sequence[SyscallEvent],
        batch_size: int = 256,
    ) -> list:
        """Drain a whole event log through any :class:`Ingestor`.

        Returns the accumulated detections —
        :class:`~repro.serving.Detection` from a service,
        :class:`~repro.serving.FleetDetection` from a fleet.
        """
        detections = []
        for _batch, found in service.replay(list(events), batch_size):
            detections.extend(found)
        return detections
