"""Versioned ``BehaviorModel`` artifact bundles (the ``.tgm`` format).

A :class:`BehaviorModel` is the deployable unit of this system: one
self-describing artifact capturing everything a serving process needs to
run the queries a training process mined — per-behavior ranked patterns,
the formulated :class:`~repro.serving.registry.BehaviorQuery` set (span
caps included), the dataset :class:`~repro.core.kernel.LabelInterner`
label order, the :class:`~repro.core.miner.MinerConfig`, and provenance
(seed, scale, timings, library version).  ``save()``/``load()``
round-trip byte-identically, so bundles can be content-addressed and
diffed.

Bundle layout (a directory, or the same members zipped when the path
ends in ``.tgm``)::

    model/
    ├── manifest.json    format tag, schema version, library version,
    │                    MinerConfig, provenance, per-behavior metadata
    │                    (span cap, best score, counts, timings)
    ├── patterns.jsonl   ranked mined patterns: one JSON object per line
    │                    {"behavior", "rank", "labels", "edges",
    │                     "score", "pos_freq", "neg_freq"}
    ├── queries.jsonl    formulated behavior queries in the registry's
    │                    jsonl format — independently consumable by
    │                    ``repro detect --queries`` and
    │                    :func:`~repro.serving.registry.load_queries_jsonl`
    └── interner.json    {"labels": [...]} — the dataset label order; a
                         loading process re-derives bit-identical interner
                         ids from it (ids themselves are never persisted)

``manifest.json`` carries ``schema_version``; :func:`BehaviorModel.load`
rejects bundles written by a future, incompatible library with a clear
:class:`~repro.core.errors.ArtifactError` instead of misreading them.
Queries are not independent state: they are re-derived from the stored
patterns and span caps, and load verifies ``queries.jsonl`` agrees —
a hand-edited bundle fails loudly rather than serving queries that
diverge from the patterns the manifest describes.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro._version import __version__
from repro.core.errors import ArtifactError, MiningError, ReproError
from repro.core.kernel import LabelInterner
from repro.core.miner import MinedPattern, MinerConfig
from repro.core.pattern import TemporalPattern
from repro.serving.registry import BehaviorQuery, query_from_dict, query_to_dict

__all__ = [
    "SCHEMA_VERSION",
    "BUNDLE_SUFFIX",
    "BehaviorRecord",
    "BehaviorModel",
]

#: Current bundle schema.  Bump on any change a reader of this version
#: could not interpret; readers reject bundles with a newer version.
SCHEMA_VERSION = 1

#: Zipped-bundle file extension (a directory path saves unzipped).
BUNDLE_SUFFIX = ".tgm"

_FORMAT_TAG = "tgm-model"
_MANIFEST = "manifest.json"
_PATTERNS = "patterns.jsonl"
_QUERIES = "queries.jsonl"
_INTERNER = "interner.json"
_MEMBERS = (_MANIFEST, _PATTERNS, _QUERIES, _INTERNER)

#: Fixed member timestamp for zipped bundles, keeping ``save()`` output a
#: pure function of the model (byte-identical re-saves).
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


@dataclass(frozen=True)
class BehaviorRecord:
    """One behavior's slice of a model: ranked patterns plus mining facts."""

    behavior: str
    span_cap: int
    patterns: tuple[MinedPattern, ...]
    co_optimal: int
    patterns_explored: int
    subgraph_tests: int
    index_prefilter_skips: int
    elapsed_seconds: float
    timed_out: bool

    @property
    def best_score(self) -> float | None:
        """Discriminative score of the mined optimum (None if none mined)."""
        return self.patterns[0].score if self.patterns else None

    def queries(self) -> list[BehaviorQuery]:
        """The behavior's formulated queries: ranked patterns + span cap."""
        return [
            BehaviorQuery(
                name=f"{self.behavior}#{rank}",
                pattern=mined.pattern,
                max_span=self.span_cap,
            )
            for rank, mined in enumerate(self.patterns, start=1)
        ]


@dataclass(frozen=True)
class BehaviorModel:
    """A versioned, self-describing mine-result artifact (see module doc).

    Instances are immutable value objects: two models comparing equal
    produce byte-identical bundles, and ``load()`` of a saved bundle
    compares equal to the model that saved it.
    """

    config: MinerConfig
    records: dict[str, BehaviorRecord]
    labels: tuple[str, ...]
    provenance: dict = field(default_factory=dict)
    library_version: str = __version__
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    # read surface
    # ------------------------------------------------------------------
    @property
    def behaviors(self) -> tuple[str, ...]:
        """Behavior names in mining order."""
        return tuple(self.records)

    def record(self, behavior: str) -> BehaviorRecord:
        """One behavior's record; raises :class:`ArtifactError` if absent."""
        try:
            return self.records[behavior]
        except KeyError:
            raise ArtifactError(
                f"model has no behavior {behavior!r}; it holds: "
                f"{', '.join(self.behaviors) or '<none>'}"
            ) from None

    def queries(self, behaviors: Sequence[str] | None = None) -> list[BehaviorQuery]:
        """Registrable behavior queries, optionally for a behavior subset.

        Query names are ``<behavior>#<rank>`` in ranked order — the same
        names ``mine --save-queries`` always emitted, so detections keyed
        by query name stay comparable across the two formats.
        """
        names = list(behaviors) if behaviors is not None else list(self.behaviors)
        out: list[BehaviorQuery] = []
        for name in names:
            out.extend(self.record(name).queries())
        return out

    def interner(self) -> LabelInterner:
        """Re-derive the dataset interner (bit-identical ids, any process)."""
        return LabelInterner.restore(self.labels)

    def describe(self) -> str:
        """Human-readable summary (the CLI ``inspect`` report)."""
        lines = [
            f"BehaviorModel schema v{self.schema_version} "
            f"(written by repro {self.library_version})",
            f"config: {json.dumps(self.config.to_dict(), sort_keys=True)}",
            f"interned labels: {len(self.labels)}",
        ]
        if self.provenance:
            lines.append(f"provenance: {json.dumps(self.provenance, sort_keys=True)}")
        lines.append(
            f"{len(self.records)} behaviors, "
            f"{sum(len(r.patterns) for r in self.records.values())} queries:"
        )
        for record in self.records.values():
            score = f"{record.best_score:.3f}" if record.best_score is not None else "-"
            lines.append(
                f"  {record.behavior:22s} best {score:>8s}  "
                f"{len(record.patterns)} queries (of {record.co_optimal} "
                f"co-optimal), span cap {record.span_cap}, "
                f"{record.patterns_explored} patterns explored in "
                f"{record.elapsed_seconds:.2f}s"
                + (" [timed out]" if record.timed_out else "")
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def _manifest_payload(self) -> dict:
        return {
            "format": _FORMAT_TAG,
            "schema_version": self.schema_version,
            "library_version": self.library_version,
            "config": self.config.to_dict(),
            "provenance": self.provenance,
            "behaviors": [
                {
                    "name": record.behavior,
                    "span_cap": record.span_cap,
                    "best_score": record.best_score,
                    "patterns": len(record.patterns),
                    "co_optimal": record.co_optimal,
                    "patterns_explored": record.patterns_explored,
                    "subgraph_tests": record.subgraph_tests,
                    "index_prefilter_skips": record.index_prefilter_skips,
                    "elapsed_seconds": record.elapsed_seconds,
                    "timed_out": record.timed_out,
                }
                for record in self.records.values()
            ],
        }

    def _members(self) -> dict[str, str]:
        """Render every bundle member deterministically (name -> text)."""
        patterns_lines = [
            json.dumps(
                {
                    "behavior": record.behavior,
                    "rank": rank,
                    "labels": list(mined.pattern.labels),
                    "edges": [[u, v] for u, v in mined.pattern.edges],
                    "score": mined.score,
                    "pos_freq": mined.pos_freq,
                    "neg_freq": mined.neg_freq,
                },
                sort_keys=True,
            )
            for record in self.records.values()
            for rank, mined in enumerate(record.patterns, start=1)
        ]
        query_lines = [
            json.dumps(query_to_dict(query), sort_keys=True)
            for query in self.queries()
        ]
        manifest_text = (
            json.dumps(self._manifest_payload(), indent=2, sort_keys=True) + "\n"
        )
        return {
            _MANIFEST: manifest_text,
            _PATTERNS: "".join(line + "\n" for line in patterns_lines),
            _QUERIES: "".join(line + "\n" for line in query_lines),
            _INTERNER: json.dumps({"labels": list(self.labels)}, indent=2) + "\n",
        }

    def save(self, path: str | Path) -> Path:
        """Write the bundle; ``*.tgm`` paths zip, any other path is a dir.

        Saving is deterministic: the same model always produces the same
        bytes (fixed member order and timestamps), so re-saving a loaded
        bundle reproduces it exactly.
        """
        path = Path(path)
        members = self._members()
        try:
            if path.suffix == BUNDLE_SUFFIX:
                path.parent.mkdir(parents=True, exist_ok=True)
                with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as archive:
                    for name in _MEMBERS:
                        info = zipfile.ZipInfo(name, date_time=_ZIP_EPOCH)
                        info.compress_type = zipfile.ZIP_DEFLATED
                        info.external_attr = 0o644 << 16
                        archive.writestr(info, members[name])
            else:
                path.mkdir(parents=True, exist_ok=True)
                for name in _MEMBERS:
                    (path / name).write_text(members[name], encoding="utf-8")
        except OSError as exc:
            raise ArtifactError(f"{path}: cannot write model bundle: {exc}") from exc
        return path

    @classmethod
    def load(cls, path: str | Path) -> "BehaviorModel":
        """Read a bundle (directory or ``.tgm`` zip) back into a model.

        Raises :class:`ArtifactError` on missing members, corrupt JSON,
        internal inconsistency, or a schema version newer than
        :data:`SCHEMA_VERSION`.
        """
        members = _read_members(Path(path))
        manifest = _parse_json(path, _MANIFEST, members[_MANIFEST])
        _check_schema(path, manifest)
        try:
            config = MinerConfig.from_dict(dict(manifest["config"]))
            provenance = dict(manifest["provenance"])
            behavior_meta = list(manifest["behaviors"])
            library_version = str(manifest["library_version"])
        except (KeyError, TypeError, ValueError, MiningError) as exc:
            raise ArtifactError(f"{path}: malformed {_MANIFEST}: {exc}") from exc

        interner_payload = _parse_json(path, _INTERNER, members[_INTERNER])
        try:
            labels = tuple(str(label) for label in interner_payload["labels"])
        except (KeyError, TypeError) as exc:
            raise ArtifactError(f"{path}: malformed {_INTERNER}: {exc}") from exc

        ranked = _parse_patterns(path, members[_PATTERNS])
        records: dict[str, BehaviorRecord] = {}
        for meta in behavior_meta:
            try:
                name = str(meta["name"])
                declared_patterns = int(meta["patterns"])
                record = BehaviorRecord(
                    behavior=name,
                    span_cap=int(meta["span_cap"]),
                    patterns=tuple(ranked.pop(name, ())),
                    co_optimal=int(meta["co_optimal"]),
                    patterns_explored=int(meta["patterns_explored"]),
                    subgraph_tests=int(meta["subgraph_tests"]),
                    index_prefilter_skips=int(meta["index_prefilter_skips"]),
                    elapsed_seconds=float(meta["elapsed_seconds"]),
                    timed_out=bool(meta["timed_out"]),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ArtifactError(
                    f"{path}: malformed behavior entry in {_MANIFEST}: {exc}"
                ) from exc
            if len(record.patterns) != declared_patterns:
                raise ArtifactError(
                    f"{path}: {_PATTERNS} holds {len(record.patterns)} "
                    f"patterns for {name!r} but {_MANIFEST} declares "
                    f"{declared_patterns}"
                )
            records[name] = record
        if ranked:
            raise ArtifactError(
                f"{path}: {_PATTERNS} mentions behaviors absent from "
                f"{_MANIFEST}: {', '.join(sorted(ranked))}"
            )

        model = cls(
            config=config,
            records=records,
            labels=labels,
            provenance=provenance,
            library_version=library_version,
        )
        _check_queries(path, model, members[_QUERIES])
        return model


# ----------------------------------------------------------------------
# load helpers
# ----------------------------------------------------------------------
def _read_members(path: Path) -> dict[str, str]:
    """Fetch all bundle member texts from a directory or ``.tgm`` zip."""
    try:
        if path.is_dir():
            members: dict[str, str] = {}
            for name in _MEMBERS:
                member = path / name
                if not member.is_file():
                    raise ArtifactError(f"{path}: bundle member missing: {name}")
                members[name] = member.read_text(encoding="utf-8")
            return members
        if not path.exists():
            raise ArtifactError(f"{path}: no such model bundle")
        if not zipfile.is_zipfile(path):
            raise ArtifactError(
                f"{path}: not a model bundle (expected a bundle directory or a "
                f"{BUNDLE_SUFFIX} zip archive)"
            )
        with zipfile.ZipFile(path) as archive:
            names = set(archive.namelist())
            missing = [name for name in _MEMBERS if name not in names]
            if missing:
                raise ArtifactError(f"{path}: bundle member missing: {missing[0]}")
            return {name: archive.read(name).decode("utf-8") for name in _MEMBERS}
    except zipfile.BadZipFile as exc:
        raise ArtifactError(f"{path}: corrupt bundle archive: {exc}") from exc
    except OSError as exc:
        raise ArtifactError(f"{path}: cannot read model bundle: {exc}") from exc


def _parse_json(path: Path | str, member: str, text: str) -> dict:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: invalid JSON in {member}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ArtifactError(f"{path}: {member} must hold a JSON object")
    return payload


def _check_schema(path: Path | str, manifest: dict) -> None:
    if manifest.get("format") != _FORMAT_TAG:
        raise ArtifactError(
            f"{path}: not a behavior-model bundle "
            f"(format tag {manifest.get('format')!r})"
        )
    version = manifest.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ArtifactError(f"{path}: invalid schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise ArtifactError(
            f"{path}: bundle schema v{version} is newer than this library "
            f"supports (v{SCHEMA_VERSION}); upgrade repro (bundle written "
            f"by repro {manifest.get('library_version', '?')}) to load it"
        )


def _parse_patterns(path: Path | str, text: str) -> dict[str, list[MinedPattern]]:
    """Parse ``patterns.jsonl`` into per-behavior ranked pattern lists."""
    ranked: dict[str, list[MinedPattern]] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
            behavior = str(payload["behavior"])
            rank = int(payload["rank"])
            mined = MinedPattern(
                pattern=TemporalPattern(
                    tuple(str(label) for label in payload["labels"]),
                    tuple((int(u), int(v)) for u, v in payload["edges"]),
                ),
                score=float(payload["score"]),
                pos_freq=float(payload["pos_freq"]),
                neg_freq=float(payload["neg_freq"]),
            )
        except (
            json.JSONDecodeError,
            KeyError,
            TypeError,
            ValueError,
            ReproError,
        ) as exc:
            raise ArtifactError(
                f"{path}: {_PATTERNS}:{line_no}: malformed pattern: {exc}"
            ) from exc
        bucket = ranked.setdefault(behavior, [])
        if rank != len(bucket) + 1:
            raise ArtifactError(
                f"{path}: {_PATTERNS}:{line_no}: rank {rank} out of order "
                f"for behavior {behavior!r} (expected {len(bucket) + 1})"
            )
        bucket.append(mined)
    return ranked


def _check_queries(path: Path | str, model: BehaviorModel, text: str) -> None:
    """Verify ``queries.jsonl`` matches the queries the patterns derive.

    Queries are derived state; a divergence means the bundle was edited
    inconsistently, and serving it would silently run queries the
    manifest does not describe.
    """
    stored: list[BehaviorQuery] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            stored.append(query_from_dict(json.loads(line)))
        except (json.JSONDecodeError, ReproError) as exc:
            raise ArtifactError(
                f"{path}: {_QUERIES}:{line_no}: malformed query: {exc}"
            ) from exc
    derived = model.queries()
    if stored != derived:
        raise ArtifactError(
            f"{path}: {_QUERIES} disagrees with the queries derived from "
            f"{_PATTERNS} + {_MANIFEST} ({len(stored)} stored vs "
            f"{len(derived)} derived); the bundle was edited inconsistently"
        )
