"""``repro.api`` — the stable SDK surface of the reproduction.

Two names carry the whole train-offline/serve-online story:

* :class:`Workspace` — the pipeline facade: ``generate`` training/test
  data, ``mine`` behaviors into a model, ``query`` a monitoring graph in
  batch, ``serve`` an event stream;
* :class:`BehaviorModel` — the versioned, self-describing artifact
  bundle (directory or ``.tgm`` zip) a mining process saves and a
  serving process loads, with byte-identical round-trips and a schema
  version gate (:class:`ArtifactError` on incompatible bundles).

The CLI, the examples, and the docs all build on this module; anything
not importable from here (or the documented subpackages) is an internal.
"""

from repro.api.model import (
    BUNDLE_SUFFIX,
    SCHEMA_VERSION,
    BehaviorModel,
    BehaviorRecord,
)
from repro.api.workspace import BehaviorEvaluation, EvaluationReport, Workspace
from repro.core.errors import ArtifactError

__all__ = [
    "ArtifactError",
    "BUNDLE_SUFFIX",
    "BehaviorEvaluation",
    "BehaviorModel",
    "BehaviorRecord",
    "EvaluationReport",
    "SCHEMA_VERSION",
    "Workspace",
]
