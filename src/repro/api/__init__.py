"""``repro.api`` — the stable SDK surface of the reproduction.

A handful of names carry the whole train-offline/serve-online story:

* :class:`Workspace` — the pipeline facade: ``generate`` training/test
  data, ``mine`` behaviors into a model, ``query`` a monitoring graph in
  batch, ``serve`` an event stream (optionally sharded, optionally over
  HTTP via :meth:`Workspace.serve_http`);
* :class:`BehaviorModel` — the versioned, self-describing artifact
  bundle (directory or ``.tgm`` zip) a mining process saves and a
  serving process loads, with byte-identical round-trips and a schema
  version gate (:class:`ArtifactError` on incompatible bundles);
* :class:`ModelRegistry` — the versioned on-disk store of published
  bundles behind hot reload and canary promotion
  (:class:`RegistryError` on invalid registry state);
* the serving contract — the :class:`Ingestor` protocol every
  deployment satisfies, the :class:`ServingHandle` ``serve()`` returns,
  and the versioned stats schema (:data:`STATS_SCHEMA_KEYS` /
  :data:`STATS_SCHEMA_VERSION`, decoded by :func:`stats_from_dict`).

This module is the canonical import path for the serving contract; the
definitions physically live in :mod:`repro.serving.contracts` only to
keep the package import graph acyclic.  The CLI, the examples, and the
docs all build on this module; anything not importable from here (or
the documented subpackages) is an internal.
"""

from repro.api.model import (
    BUNDLE_SUFFIX,
    SCHEMA_VERSION,
    BehaviorModel,
    BehaviorRecord,
)
from repro.api.workspace import BehaviorEvaluation, EvaluationReport, Workspace
from repro.core.errors import (
    ArtifactError,
    CheckpointError,
    DatasetError,
    HttpError,
    RegistryError,
    ShardTimeoutError,
)
from repro.datasets.store import CorpusStore
from repro.core.faults import FaultPlan, FaultSpec
from repro.serving.checkpoint import CheckpointedService, recover_service
from repro.serving.contracts import (
    STATS_SCHEMA_KEYS,
    STATS_SCHEMA_VERSION,
    Ingestor,
    ServingHandle,
    StatsView,
    stats_from_dict,
)
from repro.serving.http import DetectionServer, HttpServingHandle, serve_http
from repro.serving.model_registry import ModelRegistry, RegistryEntry

__all__ = [
    "ArtifactError",
    "BUNDLE_SUFFIX",
    "BehaviorEvaluation",
    "BehaviorModel",
    "BehaviorRecord",
    "CheckpointError",
    "CheckpointedService",
    "CorpusStore",
    "DatasetError",
    "DetectionServer",
    "EvaluationReport",
    "FaultPlan",
    "FaultSpec",
    "HttpError",
    "HttpServingHandle",
    "Ingestor",
    "ModelRegistry",
    "RegistryEntry",
    "RegistryError",
    "SCHEMA_VERSION",
    "STATS_SCHEMA_KEYS",
    "STATS_SCHEMA_VERSION",
    "ServingHandle",
    "ShardTimeoutError",
    "StatsView",
    "Workspace",
    "recover_service",
    "serve_http",
    "stats_from_dict",
]
