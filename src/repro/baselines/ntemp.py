"""The ``Ntemp`` accuracy baseline pipeline (paper Section 6.1).

``Ntemp`` removes all temporal information from the training data, mines
discriminative *non-temporal* graph patterns (multi-edges collapsed), and
uses the top-ranked patterns as behavior queries evaluated without edge
order.  The pipeline mirrors the TGMiner query-formulation pipeline so
Table 2 compares like with like:

1. mine non-temporal discriminative patterns
   (:class:`repro.baselines.gspan.NonTemporalMiner`);
2. rank co-optimal patterns by the same Appendix-M interest score;
3. return the top-``k`` patterns with the behavior's lifetime cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.gspan import (
    NonTemporalMiner,
    NonTemporalMinerConfig,
    NonTemporalPattern,
)
from repro.core.graph import TemporalGraph
from repro.core.ranking import InterestModel

__all__ = ["NtempQuery", "mine_ntemp_queries"]


@dataclass(frozen=True)
class NtempQuery:
    """A non-temporal behavior query plus its match window cap."""

    pattern: NonTemporalPattern
    max_span: int


def mine_ntemp_queries(
    positives: Sequence[TemporalGraph],
    negatives: Sequence[TemporalGraph],
    interest: InterestModel,
    max_edges: int = 6,
    top_k: int = 5,
    min_pos_support: float = 0.5,
    max_seconds: float | None = None,
) -> list[NtempQuery]:
    """Mine the top-``k`` non-temporal behavior queries for one behavior."""
    miner = NonTemporalMiner(
        NonTemporalMinerConfig(
            max_edges=max_edges,
            min_pos_support=min_pos_support,
            max_seconds=max_seconds,
        )
    )
    result = miner.mine(positives, negatives)
    max_span = 0
    for graph in positives:
        if graph.num_edges:
            first, last = graph.span()
            max_span = max(max_span, last - first)

    def pattern_interest(pattern: NonTemporalPattern) -> float:
        return sum(
            interest.label_interest(pattern.label(n))
            for n in range(pattern.num_nodes)
        )

    ranked = sorted(
        result.best,
        key=lambda m: (
            -pattern_interest(m.pattern),
            -m.pattern.num_edges,
            str((m.pattern.labels, m.pattern.edges)),
        ),
    )
    return [NtempQuery(m.pattern, max_span) for m in ranked[:top_k]]
