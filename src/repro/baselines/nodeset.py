"""The ``NodeSet`` keyword-query baseline (paper Section 6.1).

``NodeSet`` ignores graph structure entirely: it scores every node label
with the same discriminative function ``F(x, y)`` used for patterns —
where ``x``/``y`` are the fractions of positive/negative training graphs
containing the label — and forms a query from the top-``k`` labels.  A
match in monitoring data is any set of ``k`` nodes carrying exactly those
labels whose spanned time interval does not exceed the longest observed
lifetime of the target behavior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import MiningError
from repro.core.graph import TemporalGraph
from repro.core.scoring import ScoreFunction, resolve_score

__all__ = ["NodeSetQuery", "mine_nodeset_query", "label_frequencies"]


@dataclass(frozen=True)
class NodeSetQuery:
    """A keyword behavior query: ``k`` discriminative labels + a time cap.

    Attributes
    ----------
    labels:
        The top-``k`` discriminative node labels (distinct).
    max_span:
        Longest observed lifetime of the target behavior; a match's nodes
        must all be active within a window of at most this length.
    """

    labels: tuple[str, ...]
    max_span: int

    @property
    def size(self) -> int:
        """Number of labels in the query."""
        return len(self.labels)

    def describe(self) -> str:
        """Human-readable rendering used by examples."""
        return (
            f"node-set query (span <= {self.max_span}): "
            + ", ".join(self.labels)
        )


def label_frequencies(graphs: Sequence[TemporalGraph]) -> dict[str, float]:
    """Fraction of graphs containing each label (per-graph frequency)."""
    counts: dict[str, int] = {}
    for graph in graphs:
        for label in graph.label_set():
            counts[label] = counts.get(label, 0) + 1
    total = max(len(graphs), 1)
    return {label: count / total for label, count in counts.items()}


def mine_nodeset_query(
    positives: Sequence[TemporalGraph],
    negatives: Sequence[TemporalGraph],
    k: int = 6,
    score: str | ScoreFunction = "log-ratio",
) -> NodeSetQuery:
    """Build the top-``k`` discriminative label query for a behavior.

    The behavior's longest observed lifetime (max edge-time span over the
    positive graphs) becomes the match window cap, as in the paper.
    """
    if not positives:
        raise MiningError("positive graph set must not be empty")
    if k < 1:
        raise MiningError("k must be >= 1")
    score_fn = resolve_score(score, len(positives), max(len(negatives), 1))
    pos_freq = label_frequencies(positives)
    neg_freq = label_frequencies(negatives)
    ranked = sorted(
        pos_freq,
        key=lambda label: (
            -score_fn.score(pos_freq[label], neg_freq.get(label, 0.0)),
            label,
        ),
    )
    chosen = tuple(ranked[: min(k, len(ranked))])
    max_span = 0
    for graph in positives:
        if graph.num_edges:
            first, last = graph.span()
            max_span = max(max_span, last - first)
    return NodeSetQuery(labels=chosen, max_span=max_span)
