"""Discriminative *non-temporal* subgraph mining (the ``Ntemp`` substrate).

The paper's ``Ntemp`` accuracy baseline strips all temporal information
from the training data, mines discriminative non-temporal graph patterns
with a gSpan/GAIA-style algorithm [11, 31], and uses those patterns as
(temporal-order-free) behavior queries.  Multi-edges are collapsed into
single edges first, exactly as the paper notes canonical-labeling miners
must do.

This module implements the miner:

* patterns are connected, node-labeled, directed *simple* graphs;
* growth extends a pattern by one data edge touching the current
  embedding (pattern-growth with embedding lists, as in gSpan);
* duplicate patterns reached through different growth orders — the
  problem canonical DFS codes solve in gSpan — are detected through their
  **embedding footprint**: two isomorphic patterns (and, more generally,
  two patterns indistinguishable on the dataset) occupy exactly the same
  edge sets in every data graph, so hashing the set of matched edge sets
  deduplicates the search without a minimality test.  This keeps the
  baseline honest (same search space, same results) while staying
  tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.errors import MiningError
from repro.core.graph import TemporalGraph
from repro.core.scoring import ScoreFunction, resolve_score

__all__ = [
    "NonTemporalGraph",
    "NonTemporalPattern",
    "NonTemporalMiner",
    "NonTemporalMinerConfig",
    "collapse_multi_edges",
]


@dataclass(frozen=True)
class NonTemporalGraph:
    """A simple directed node-labeled graph (time stripped, multi-edges collapsed)."""

    labels: tuple[str, ...]
    edges: tuple[tuple[int, int], ...]

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Number of (collapsed) edges."""
        return len(self.edges)


def collapse_multi_edges(graph: TemporalGraph) -> NonTemporalGraph:
    """Strip timestamps and collapse parallel edges of a temporal graph."""
    seen: set[tuple[int, int]] = set()
    simple: list[tuple[int, int]] = []
    for edge in graph.edges:
        key = (edge.src, edge.dst)
        if key not in seen and edge.src != edge.dst:
            seen.add(key)
            simple.append(key)
    return NonTemporalGraph(labels=tuple(graph.labels), edges=tuple(simple))


@dataclass(frozen=True)
class NonTemporalPattern:
    """A connected, node-labeled, directed simple pattern.

    Node ids follow discovery order during growth; equality is structural
    on the stored representation (the miner deduplicates isomorphic
    duplicates through embedding footprints, so representation-level
    equality suffices downstream).
    """

    labels: tuple[str, ...]
    edges: tuple[tuple[int, int], ...]

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self.edges)

    def label(self, node: int) -> str:
        """Label of pattern node ``node``."""
        return self.labels[node]

    def describe(self) -> str:
        """Human-readable rendering used by examples."""
        lines = [
            f"non-temporal pattern, {self.num_nodes} nodes / {self.num_edges} edges:"
        ]
        for u, v in self.edges:
            lines.append(f"  {self.labels[u]} ({u}) -> {self.labels[v]} ({v})")
        return "\n".join(lines)


class _Embedding:
    """A pattern occurrence: node images plus the set of used data edges."""

    __slots__ = ("nodes", "edge_keys")

    def __init__(self, nodes: tuple[int, ...], edge_keys: frozenset[tuple[int, int]]):
        self.nodes = nodes
        self.edge_keys = edge_keys

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Embedding):
            return NotImplemented
        return self.nodes == other.nodes and self.edge_keys == other.edge_keys

    def __hash__(self) -> int:
        return hash((self.nodes, self.edge_keys))


@dataclass(frozen=True)
class NonTemporalMinerConfig:
    """Knobs mirroring :class:`repro.core.miner.MinerConfig` sans temporal bits."""

    max_edges: int = 6
    min_pos_support: float = 0.5
    score: str | ScoreFunction = "log-ratio"
    max_best_patterns: int = 64
    max_seconds: float | None = None


@dataclass
class NonTemporalMined:
    """A scored non-temporal pattern."""

    pattern: NonTemporalPattern
    score: float
    pos_freq: float
    neg_freq: float


@dataclass
class NonTemporalResult:
    """Result of a non-temporal mining run."""

    best_score: float
    best: list[NonTemporalMined] = field(default_factory=list)
    best_by_size: dict[int, NonTemporalMined] = field(default_factory=dict)
    patterns_explored: int = 0


class NonTemporalMiner:
    """Discriminative miner over time-stripped graphs (Ntemp substrate)."""

    def __init__(self, config: NonTemporalMinerConfig | None = None) -> None:
        self.config = config or NonTemporalMinerConfig()
        if self.config.max_edges < 1:
            raise MiningError("max_edges must be >= 1")

    def mine(
        self,
        positives: Sequence[TemporalGraph],
        negatives: Sequence[TemporalGraph],
    ) -> NonTemporalResult:
        """Mine the most discriminative non-temporal patterns."""
        if not positives:
            raise MiningError("positive graph set must not be empty")
        pos = [collapse_multi_edges(g) for g in positives]
        neg = [collapse_multi_edges(g) for g in negatives]
        run = _Run(self.config, pos, neg)
        return run.execute()


class _Run:
    def __init__(
        self,
        config: NonTemporalMinerConfig,
        positives: list[NonTemporalGraph],
        negatives: list[NonTemporalGraph],
    ) -> None:
        self.config = config
        self.positives = positives
        self.negatives = negatives
        self.n_pos = len(positives)
        self.n_neg = max(len(negatives), 1)
        self.score_fn = resolve_score(config.score, self.n_pos, self.n_neg)
        self.result = NonTemporalResult(best_score=float("-inf"))
        # Footprint-based duplicate detection across the whole search.
        self.seen_footprints: set[tuple] = set()
        import time as _time

        self.deadline = (
            _time.perf_counter() + config.max_seconds
            if config.max_seconds is not None
            else None
        )

    # ------------------------------------------------------------------
    def execute(self) -> NonTemporalResult:
        seeds: dict[tuple[str, str], dict[tuple[bool, int], set[_Embedding]]] = {}
        for polarity, graphs in ((True, self.positives), (False, self.negatives)):
            for gid, graph in enumerate(graphs):
                for u, v in graph.edges:
                    key = (graph.labels[u], graph.labels[v])
                    table = seeds.setdefault(key, {})
                    emb = _Embedding((u, v), frozenset(((u, v),)))
                    table.setdefault((polarity, gid), set()).add(emb)
        min_count = self.config.min_pos_support * self.n_pos
        for src_label, dst_label in sorted(seeds):
            table = seeds[(src_label, dst_label)]
            pos_count = sum(1 for (polarity, _g) in table if polarity)
            if pos_count < min_count:
                continue
            pattern = NonTemporalPattern((src_label, dst_label), ((0, 1),))
            self._dfs(pattern, table)
            if self._out_of_time():
                break
        self.result.best.sort(key=lambda m: str((m.pattern.labels, m.pattern.edges)))
        return self.result

    # ------------------------------------------------------------------
    def _dfs(
        self,
        pattern: NonTemporalPattern,
        embeddings: dict[tuple[bool, int], set[_Embedding]],
    ) -> None:
        footprint = self._footprint(embeddings)
        if footprint in self.seen_footprints:
            return
        self.seen_footprints.add(footprint)
        self.result.patterns_explored += 1
        pos_freq = sum(1 for (pol, _g) in embeddings if pol) / self.n_pos
        neg_freq = sum(1 for (pol, _g) in embeddings if not pol) / self.n_neg
        score = self.score_fn.score(pos_freq, neg_freq)
        self._record(pattern, score, pos_freq, neg_freq)
        if pattern.num_edges >= self.config.max_edges or self._out_of_time():
            return
        if self.score_fn.upper_bound(pos_freq) < self.result.best_score:
            return
        min_count = self.config.min_pos_support * self.n_pos
        for key, child_embs in sorted(
            self._extensions(embeddings).items(),
            key=lambda kv: (kv[0][0], str(kv[0][1]), str(kv[0][2])),
        ):
            pos_count = sum(1 for (pol, _g) in child_embs if pol)
            if pos_count < min_count:
                continue
            child = self._child(pattern, key)
            self._dfs(child, child_embs)

    def _extensions(
        self, embeddings: dict[tuple[bool, int], set[_Embedding]]
    ) -> dict[tuple[str, object, object], dict[tuple[bool, int], set[_Embedding]]]:
        out: dict = {}
        for (polarity, gid), emb_set in embeddings.items():
            graph = self.positives[gid] if polarity else self.negatives[gid]
            for emb in emb_set:
                node_to_p = {dn: pi for pi, dn in enumerate(emb.nodes)}
                for u, v in graph.edges:
                    if (u, v) in emb.edge_keys:
                        continue
                    pu = node_to_p.get(u)
                    pv = node_to_p.get(v)
                    if pu is None and pv is None:
                        continue
                    if pv is None:
                        key = ("f", pu, graph.labels[v])
                        new_nodes = emb.nodes + (v,)
                    elif pu is None:
                        key = ("b", graph.labels[u], pv)
                        new_nodes = emb.nodes + (u,)
                    else:
                        key = ("i", pu, pv)
                        new_nodes = emb.nodes
                    child = _Embedding(new_nodes, emb.edge_keys | {(u, v)})
                    out.setdefault(key, {}).setdefault((polarity, gid), set()).add(
                        child
                    )
        return out

    @staticmethod
    def _child(
        pattern: NonTemporalPattern, key: tuple[str, object, object]
    ) -> NonTemporalPattern:
        kind, a, b = key
        n = pattern.num_nodes
        if kind == "f":
            return NonTemporalPattern(
                pattern.labels + (str(b),), pattern.edges + ((int(a), n),)
            )
        if kind == "b":
            return NonTemporalPattern(
                pattern.labels + (str(a),), pattern.edges + ((n, int(b)),)
            )
        return NonTemporalPattern(pattern.labels, pattern.edges + ((int(a), int(b)),))

    def _footprint(self, embeddings: dict[tuple[bool, int], set[_Embedding]]) -> tuple:
        # The footprint stores the full matched-edge-set structure (not a
        # hash of it) so distinct patterns can never collide.
        parts = []
        for key in sorted(embeddings):
            edge_sets = frozenset(emb.edge_keys for emb in embeddings[key])
            parts.append((key, edge_sets))
        return tuple(parts)

    def _record(
        self,
        pattern: NonTemporalPattern,
        score: float,
        pos_freq: float,
        neg_freq: float,
    ) -> None:
        mined = NonTemporalMined(pattern, score, pos_freq, neg_freq)
        size = pattern.num_edges
        incumbent = self.result.best_by_size.get(size)
        if incumbent is None or score > incumbent.score:
            self.result.best_by_size[size] = mined
        if score > self.result.best_score:
            self.result.best_score = score
            self.result.best = [mined]
        elif (
            score == self.result.best_score
            and len(self.result.best) < self.config.max_best_patterns
        ):
            self.result.best.append(mined)

    def _out_of_time(self) -> bool:
        if self.deadline is None:
            return False
        import time as _time

        return _time.perf_counter() > self.deadline


def enumerate_nontemporal_matches(
    pattern: NonTemporalPattern,
    labels: Sequence[str],
    adjacency: dict[tuple[int, int], bool] | set[tuple[int, int]],
    nodes_by_label: dict[str, Sequence[int]],
    limit: int | None = None,
) -> Iterator[tuple[int, ...]]:
    """Enumerate injective node mappings of a non-temporal pattern.

    Generic helper shared with the query engine: ``adjacency`` is the set
    of directed edges of the (windowed) data graph, ``nodes_by_label``
    indexes its nodes.
    """
    n = pattern.num_nodes
    assignment: list[int] = [-1] * n
    used: set[int] = set()
    # Constraints per node: edges to earlier-ordered nodes.
    order = list(range(n))
    emitted = 0

    def ok(node: int, cand: int) -> bool:
        for u, v in pattern.edges:
            if (
                u == node
                and assignment[v] != -1
                and (cand, assignment[v]) not in adjacency
            ):
                return False
            if (
                v == node
                and assignment[u] != -1
                and (assignment[u], cand) not in adjacency
            ):
                return False
        return True

    def search(depth: int) -> Iterator[tuple[int, ...]]:
        nonlocal emitted
        if depth == n:
            yield tuple(assignment)
            emitted += 1
            return
        node = order[depth]
        for cand in nodes_by_label.get(pattern.label(node), ()):
            if cand in used or not ok(node, cand):
                continue
            assignment[node] = cand
            used.add(cand)
            yield from search(depth + 1)
            used.discard(cand)
            assignment[node] = -1
            if limit is not None and emitted >= limit:
                return

    yield from search(0)
