"""Accuracy baselines of the paper's Section 6.2: Ntemp and NodeSet."""

from repro.baselines.gspan import NonTemporalMiner, NonTemporalPattern
from repro.baselines.nodeset import NodeSetQuery, mine_nodeset_query
from repro.baselines.ntemp import mine_ntemp_queries

__all__ = [
    "NonTemporalMiner",
    "NonTemporalPattern",
    "NodeSetQuery",
    "mine_nodeset_query",
    "mine_ntemp_queries",
]
