"""Multi-query registry with a shared signature-prefix prefilter.

A monitoring deployment runs *many* behavior queries against the same
event stream.  Checking each query's label signature against the live
window one by one repeats work: queries formulated for the same behavior
(or touching the same entity types) share most of their signature
requirements.  :class:`QueryRegistry` therefore arranges all registered
queries in a **requirement trie**: each query's signature is flattened
into a canonically ordered list of requirements ("at least ``c`` live
nodes labeled ``L``", "at least ``c`` live edges labeled ``A -> B``"),
and queries sharing a requirement prefix share the trie path.  One walk
of the trie against the window signature answers every impossible query
at once — a failed requirement prunes the whole subtree below it, and
each shared requirement is evaluated exactly once per pass.

The prefilter is sound for the same reason the mining-side
:class:`~repro.core.graph_index.CandidateFilter` is: signature
containment is a necessary condition for any injective label-preserving
match, so pruned queries provably have no match in the window and the
surviving set yields detections identical to the unfiltered evaluation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.core.errors import DatasetError, PatternError, ServingError
from repro.core.graph_index import Signature, pattern_signature
from repro.core.pattern import TemporalPattern

__all__ = [
    "BehaviorQuery",
    "QueryRegistry",
    "RegistryStats",
    "query_to_dict",
    "query_from_dict",
    "save_queries_jsonl",
    "load_queries_jsonl",
]

#: One trie-edge requirement: ("n", label, count) or ("e", (src, dst), count).
_Requirement = tuple[str, object, int]


@dataclass(frozen=True)
class BehaviorQuery:
    """A registered behavior query: a temporal pattern plus its span cap.

    ``max_span`` is the behavior's longest observed lifetime (with
    interleave slack) — the window a match's time span may not exceed,
    exactly as in the batch engine's ``search_temporal``.
    """

    name: str
    pattern: TemporalPattern
    max_span: int

    def __post_init__(self) -> None:
        if self.max_span < 0:
            raise ServingError(f"query {self.name!r}: max_span must be >= 0")

    def describe(self) -> str:
        """Human-readable rendering used by the CLI."""
        return f"{self.name} (span <= {self.max_span}): {self.pattern!r}"


def _requirements(signature: Signature) -> tuple[_Requirement, ...]:
    """Flatten a signature into the canonical requirement order.

    The order is fixed across all queries (node labels sorted, then edge
    label pairs sorted) so that queries with overlapping signatures
    produce common prefixes and land on shared trie paths.
    """
    nodes = tuple(
        ("n", label, count) for label, count in sorted(signature.node_labels.items())
    )
    edges = tuple(
        ("e", pair, count) for pair, count in sorted(signature.edge_labels.items())
    )
    return nodes + edges


def _satisfied(requirement: _Requirement, window: Signature) -> bool:
    kind, key, count = requirement
    if kind == "n":
        return window.node_labels.get(key, 0) >= count
    return window.edge_labels.get(key, 0) >= count


class _TrieNode:
    __slots__ = ("children", "query_ids", "subtree_queries")

    def __init__(self) -> None:
        self.children: dict[_Requirement, _TrieNode] = {}
        self.query_ids: list[int] = []
        #: queries at or below this node — what one failed requirement prunes
        self.subtree_queries = 0


@dataclass
class RegistryStats:
    """Counters for the shared-prefilter ablation."""

    passes: int = 0
    requirement_checks: int = 0
    queries_pruned: int = 0
    queries_passed: int = 0


class QueryRegistry:
    """Holds registered behavior queries and prefilters them in one pass."""

    def __init__(self) -> None:
        self.stats = RegistryStats()
        self._queries: dict[int, BehaviorQuery] = {}
        self._root = _TrieNode()
        self._next_id = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, query: BehaviorQuery) -> int:
        """Register a query; returns its id within this registry."""
        query_id = self._next_id
        self._next_id += 1
        self._queries[query_id] = query
        reqs = _requirements(pattern_signature(query.pattern))
        node = self._root
        node.subtree_queries += 1
        for requirement in reqs:
            node = node.children.setdefault(requirement, _TrieNode())
            node.subtree_queries += 1
        node.query_ids.append(query_id)
        return query_id

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[tuple[int, BehaviorQuery]]:
        return iter(self._queries.items())

    def get(self, query_id: int) -> BehaviorQuery:
        """Look a registered query up by id."""
        return self._queries[query_id]

    @property
    def max_span(self) -> int:
        """Widest span cap over all registered queries (0 when empty)."""
        if not self._queries:
            return 0
        return max(q.max_span for q in self._queries.values())

    # ------------------------------------------------------------------
    # the one-pass prefilter
    # ------------------------------------------------------------------
    def survivors(self, window: Signature) -> list[tuple[int, BehaviorQuery]]:
        """Queries whose signature the window can cover, in one trie walk.

        Every requirement shared by several queries is checked once; a
        failed check prunes all queries below it without touching them.
        """
        self.stats.passes += 1
        alive: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            alive.extend(node.query_ids)
            for requirement, child in node.children.items():
                self.stats.requirement_checks += 1
                if _satisfied(requirement, window):
                    stack.append(child)
                else:
                    self.stats.queries_pruned += child.subtree_queries
        alive.sort()
        self.stats.queries_passed += len(alive)
        return [(query_id, self._queries[query_id]) for query_id in alive]


# ----------------------------------------------------------------------
# (de)serialization — behavior queries as jsonl
# ----------------------------------------------------------------------
def query_to_dict(query: BehaviorQuery) -> dict:
    """Serialize one behavior query to a JSON-compatible dict."""
    return {
        "name": query.name,
        "labels": list(query.pattern.labels),
        "edges": [[u, v] for u, v in query.pattern.edges],
        "max_span": query.max_span,
    }


def query_from_dict(payload: dict) -> BehaviorQuery:
    """Deserialize one behavior query; validates the pattern."""
    try:
        return BehaviorQuery(
            name=str(payload["name"]),
            pattern=TemporalPattern(
                tuple(str(label) for label in payload["labels"]),
                tuple((int(u), int(v)) for u, v in payload["edges"]),
            ),
            max_span=int(payload["max_span"]),
        )
    except (KeyError, TypeError, ValueError, PatternError) as exc:
        raise DatasetError(f"malformed query payload: {exc}") from exc


def save_queries_jsonl(queries: list[BehaviorQuery], path: str | Path) -> int:
    """Write behavior queries to a jsonl file; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for query in queries:
            handle.write(json.dumps(query_to_dict(query)) + "\n")
            count += 1
    return count


def load_queries_jsonl(path: str | Path) -> list[BehaviorQuery]:
    """Read behavior queries from a jsonl file."""
    from repro.datasets.io import iter_jsonl_objects

    queries: list[BehaviorQuery] = []
    for line_no, payload in iter_jsonl_objects(path):
        try:
            queries.append(query_from_dict(payload))
        except DatasetError as exc:
            raise DatasetError(f"{path}:{line_no}: {exc}") from exc
    return queries
