"""Sharded multi-tenant detection fleet behind the single-service ingest API.

One :class:`~repro.serving.service.DetectionService` owns one sliding
window — fine for one host's stream, hopeless for a deployment
monitoring many tenants' event streams at once.  :class:`DetectionFleet`
scales the *data plane* by partitioning it while keeping the *query
surface* single (the partition/provenance discipline of the LSST
multi-petabyte-database design): callers still speak the
:class:`~repro.serving.Ingestor` surface — ``register_all`` /
``ingest`` / ``replay`` / ``stats`` / ``close`` — and the fleet routes
each event to a shard by its **tenant key**, where a per-tenant
:class:`DetectionService` (own window, own dedup state) evaluates it.

Correctness contract
--------------------
Fleet detections are **exactly the union of per-tenant serial
``DetectionService`` detections** — for any shard count, any routing of
tenants to shards, and any batching of the mixed stream — because a
shard never mixes tenants into one window: each tenant's events reach
its own service in arrival order, and services on different shards share
nothing.  ``tests/test_fleet.py`` asserts the identity property-style;
``benchmarks/bench_fleet.py`` re-asserts it inside the gated benchmark.

Shard runners
-------------
* ``runner="inline"`` (default): shards are plain in-process tenant
  maps.  Zero parallelism, zero serialization — the correctness
  reference, and the right choice for tests and modest streams.
* ``runner="process"``: one worker process per shard, fed through a
  **bounded** input queue (``queue_depth`` batches).  A full queue is
  *backpressure*: the router counts the stall
  (``FleetStats.backpressure_waits``) and blocks — draining finished
  results while it waits — instead of buffering without bound.  The
  registered query slate is serialized once and published through a
  read-only shared-memory segment
  (:func:`repro.core.shm.publish_blob`), the same spawn machinery the
  parallel miner uses for its corpus, so N shards attach one copy
  instead of unpickling N.  Per-batch results carry additive counter
  deltas (:meth:`ServiceStats.counters`), which the router folds into
  parent-side per-shard :class:`ServiceStats` — fleet stats are always
  readable without a barrier.

Late arrivals are dropped *per tenant* by each tenant's own window
(never because a neighbour tenant's clock ran ahead) and roll up into
``FleetStats.late_dropped``.
"""

from __future__ import annotations

import json
import multiprocessing
import queue as _queue
import time as _time
import traceback
import zlib
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.core.errors import ServingError
from repro.core.parallel import resolve_start_method
from repro.serving.contracts import STATS_SCHEMA_VERSION
from repro.core.shm import BlobDescriptor, attach_blob, publish_blob
from repro.serving.registry import BehaviorQuery, query_from_dict, query_to_dict
from repro.serving.service import (
    Detection,
    DetectionService,
    ServiceStats,
    merged_latency_percentile,
)
from repro.syscall.events import SyscallEvent

__all__ = [
    "DetectionFleet",
    "FleetDetection",
    "FleetStats",
    "TENANT_SEPARATOR",
    "DEFAULT_TENANT",
    "default_tenant_key",
    "tenant_key_for_separator",
    "shard_for_tenant",
    "tag_tenant_events",
    "interleave_streams",
    "simulate_tenant_streams",
]

#: Separator splitting the tenant id off a tagged entity key
#: (``"tenant-007|proc:1234"``).
TENANT_SEPARATOR = "|"

#: Tenant that untagged events route to, so a single-host log replays
#: through a fleet unchanged (everything lands on one shard's service).
DEFAULT_TENANT = "default"

#: Bounded input-queue depth per process shard, in batches.
DEFAULT_QUEUE_DEPTH = 8


def tenant_key_for_separator(separator: str) -> Callable[[SyscallEvent], str]:
    """Build a tenant-key function splitting a prefix off ``src_key``.

    Events whose source key carries no separator map to
    :data:`DEFAULT_TENANT` — a whole untagged log is one tenant.
    """
    if not separator:
        raise ServingError("tenant-key separator must be non-empty")

    def tenant_key(event: SyscallEvent) -> str:
        key = event.src_key
        head, sep, _ = key.partition(separator)
        return head if sep else DEFAULT_TENANT

    return tenant_key


#: The default routing key: ``src_key`` prefix before ``"|"``.
default_tenant_key = tenant_key_for_separator(TENANT_SEPARATOR)


def shard_for_tenant(tenant: str, shards: int) -> int:
    """Stable tenant → shard assignment (CRC32, identical across
    processes and runs — unlike ``hash()``, which is salted per
    interpreter)."""
    return zlib.crc32(tenant.encode("utf-8")) % shards


def tag_tenant_events(
    tenant: str, events: Sequence[SyscallEvent]
) -> list[SyscallEvent]:
    """Prefix every entity key with ``tenant|`` so the router can split
    a mixed stream back into per-tenant substreams.

    Tagging both endpoints keeps each tenant's entity namespace disjoint;
    labels (what patterns match on) are untouched.
    """
    if TENANT_SEPARATOR in tenant:
        raise ServingError(
            f"tenant id {tenant!r} must not contain {TENANT_SEPARATOR!r}"
        )
    prefix = f"{tenant}{TENANT_SEPARATOR}"
    return [
        SyscallEvent(
            time=event.time,
            syscall=event.syscall,
            src_key=prefix + event.src_key,
            src_label=event.src_label,
            dst_key=prefix + event.dst_key,
            dst_label=event.dst_label,
        )
        for event in events
    ]


def interleave_streams(
    streams: Sequence[Sequence[SyscallEvent]], chunk: int = 32
) -> list[SyscallEvent]:
    """Round-robin merge of event streams, ``chunk`` events at a time.

    Per-stream order is preserved (each tenant's events stay in arrival
    order); across streams the merge deliberately mixes tenants within
    every ingest batch — the fleet's routing workload.
    """
    if chunk < 1:
        raise ServingError("interleave chunk must be >= 1")
    cursors = [0] * len(streams)
    merged: list[SyscallEvent] = []
    remaining = sum(len(stream) for stream in streams)
    while remaining:
        for i, stream in enumerate(streams):
            take = stream[cursors[i] : cursors[i] + chunk]
            merged.extend(take)
            cursors[i] += len(take)
            remaining -= len(take)
    return merged


def simulate_tenant_streams(
    tenants: int,
    instances: int,
    seed: int = 11,
    chunk: int = 32,
    behaviors: Sequence[str] | None = None,
) -> list[SyscallEvent]:
    """Load-generator input: ``tenants`` tagged busy-host logs, interleaved.

    Each tenant gets its own :func:`~repro.syscall.collector.build_test_data`
    log (seed ``seed + t``) tagged with ``tenant-<t>``; the streams are
    round-robin interleaved so consecutive ingest batches mix tenants.
    Used by ``repro detect --shards --tenants`` and the fleet benchmark.
    """
    from repro.syscall.collector import build_test_data

    if tenants < 1:
        raise ServingError("tenants must be >= 1")
    overrides: dict = {}
    if behaviors is not None:
        overrides["behaviors"] = tuple(behaviors)
    streams = []
    for t in range(tenants):
        data = build_test_data(instances=instances, seed=seed + t, **overrides)
        streams.append(tag_tenant_events(f"tenant-{t:03d}", data.events))
    return interleave_streams(streams, chunk=chunk)


@dataclass(frozen=True)
class FleetDetection:
    """One identified behavior instance, attributed to its tenant + shard.

    ``batch`` is the *tenant-local* batch index (the tenant service's own
    ingest counter), deterministic for any shard count or routing.
    """

    tenant: str
    shard: int
    query_id: int
    query: str
    start: int
    end: int
    batch: int

    @property
    def span(self) -> tuple[int, int]:
        """The identified time interval on the tenant's own clock."""
        return (self.start, self.end)

    @property
    def key(self) -> tuple[str, str, int, int]:
        """Routing-invariant identity: ``(tenant, query, start, end)``."""
        return (self.tenant, self.query, self.start, self.end)


@dataclass(frozen=True)
class FleetStats:
    """Fleet-level rollup over parent-side per-shard :class:`ServiceStats`.

    ``shards`` holds live references to the router's per-shard stats —
    read, don't mutate.  Aggregates are sums; tail latency merges the
    shard reservoirs count-weighted
    (:func:`~repro.serving.service.merged_latency_percentile`).

    ``events_per_second`` here divides by **router wall-clock**
    (``wall_seconds``: time spent inside fleet calls, during which
    process shards work concurrently), not by summed per-shard ingest
    seconds — the number an operator sizing a fleet actually wants.
    """

    shards: tuple[ServiceStats, ...]
    tenants: int
    queue_depth: int
    routed_batches: int
    routed_events: int
    backpressure_waits: int
    wall_seconds: float

    # -- aggregates over shards -----------------------------------------
    @property
    def batches(self) -> int:
        """Tenant-service ingest calls across all shards."""
        return sum(s.batches for s in self.shards)

    @property
    def events(self) -> int:
        """Events accepted into tenant windows across all shards."""
        return sum(s.events for s in self.shards)

    @property
    def detections(self) -> int:
        return sum(s.detections for s in self.shards)

    @property
    def queries_evaluated(self) -> int:
        return sum(s.queries_evaluated for s in self.shards)

    @property
    def queries_prefiltered(self) -> int:
        return sum(s.queries_prefiltered for s in self.shards)

    @property
    def matching_seconds(self) -> float:
        return sum(s.matching_seconds for s in self.shards)

    @property
    def evicted(self) -> int:
        return sum(s.evicted for s in self.shards)

    @property
    def late_dropped(self) -> int:
        return sum(s.late_dropped for s in self.shards)

    @property
    def reinserted(self) -> int:
        return sum(s.reinserted for s in self.shards)

    @property
    def total_seconds(self) -> float:
        """Summed in-shard ingest seconds (busy time, not wall time)."""
        return sum(s.total_seconds for s in self.shards)

    @property
    def events_per_second(self) -> float:
        """Aggregate throughput over router wall-clock."""
        return self.routed_events / self.wall_seconds if self.wall_seconds else 0.0

    def latency_percentile(self, quantile: float) -> float:
        """Count-weighted nearest-rank percentile across shard reservoirs."""
        return merged_latency_percentile(
            (s.latency for s in self.shards), quantile
        )

    @property
    def max_batch_seconds(self) -> float:
        """Slowest single tenant-batch ingest anywhere in the fleet."""
        return max((s.latency.max for s in self.shards), default=0.0)

    def as_dict(self) -> dict:
        """JSON-compatible snapshot: the shared
        :data:`~repro.serving.service.STATS_SCHEMA_KEYS` schema plus
        fleet-only rollup extras (``per_shard`` nests each shard's own
        ``as_dict``)."""
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "kind": "fleet",
            "batches": self.batches,
            "events": self.events,
            "detections": self.detections,
            "queries_evaluated": self.queries_evaluated,
            "queries_prefiltered": self.queries_prefiltered,
            "matching_seconds": self.matching_seconds,
            "total_seconds": self.total_seconds,
            "events_per_second": self.events_per_second,
            "evicted": self.evicted,
            "late_dropped": self.late_dropped,
            "reinserted": self.reinserted,
            "latency_ms": {
                "p50": self.latency_percentile(0.5) * 1000,
                "p95": self.latency_percentile(0.95) * 1000,
                "p99": self.latency_percentile(0.99) * 1000,
                "max": self.max_batch_seconds * 1000,
            },
            "latency_samples": {
                "observed": sum(s.latency.count for s in self.shards),
                "kept": sum(s.latency.kept for s in self.shards),
                "capacity": sum(s.latency.capacity for s in self.shards),
            },
            # fleet-only rollup
            "shards": len(self.shards),
            "tenants": self.tenants,
            "queue_depth": self.queue_depth,
            "routed_batches": self.routed_batches,
            "routed_events": self.routed_events,
            "backpressure_waits": self.backpressure_waits,
            "wall_seconds": self.wall_seconds,
            "per_shard": [s.as_dict() for s in self.shards],
        }


class _ShardState:
    """One shard's tenant services — the same code inline and in workers.

    Lazily opens a :class:`DetectionService` per first-seen tenant and
    reports each ingest as ``(detections, counter_delta, seconds)``:
    the delta is the difference of the service's additive
    :meth:`~ServiceStats.counters` across the call, the currency the
    router folds into its parent-side per-shard stats regardless of
    which process the ingest ran in.
    """

    def __init__(
        self,
        queries: Sequence[BehaviorQuery],
        window_span: int | None,
        use_prefilter: bool,
    ) -> None:
        self._queries = list(queries)
        self._window_span = window_span
        self._use_prefilter = use_prefilter
        self._services: dict[str, DetectionService] = {}
        self._previous: dict[str, dict] = {}

    def ingest(
        self, tenant: str, events: Sequence[SyscallEvent]
    ) -> tuple[list[Detection], dict, float]:
        service = self._services.get(tenant)
        if service is None:
            service = DetectionService(
                window_span=self._window_span, use_prefilter=self._use_prefilter
            )
            service.register_all(self._queries)
            self._services[tenant] = service
            self._previous[tenant] = service.stats.counters()
        started = _time.perf_counter()
        detections = service.ingest(events)
        elapsed = _time.perf_counter() - started
        current = service.stats.counters()
        previous = self._previous[tenant]
        delta = {key: current[key] - previous[key] for key in current}
        self._previous[tenant] = current
        return detections, delta, elapsed

    def reload(self, queries: Sequence[BehaviorQuery]) -> None:
        """Swap the slate on every open tenant service + future tenants."""
        self._queries = list(queries)
        for service in self._services.values():
            service.reload(self._queries)


def _shard_worker(
    shard_id: int,
    in_queue,
    out_queue,
    blob: BlobDescriptor,
    window_span: int | None,
    use_prefilter: bool,
) -> None:
    """Process-shard main loop: attach the shared slate, serve batches."""
    try:
        attached = attach_blob(blob)
        payload = json.loads(attached.to_bytes().decode("utf-8"))
        queries = [query_from_dict(entry) for entry in payload]
        state = _ShardState(queries, window_span, use_prefilter)
    except BaseException:
        out_queue.put(("error", shard_id, None, traceback.format_exc()))
        return
    out_queue.put(("ready", shard_id))
    while True:
        item = in_queue.get()
        if item[0] == "stop":
            return
        _, seq, tenant, events = item
        try:
            detections, delta, elapsed = state.ingest(tenant, events)
        except Exception:
            out_queue.put(("error", shard_id, seq, traceback.format_exc()))
            continue
        out_queue.put(("ok", shard_id, seq, tenant, detections, delta, elapsed))


class DetectionFleet:
    """Multi-tenant detection behind the single-service ingest surface.

    Parameters
    ----------
    shards:
        Number of independent shards events are partitioned across.
    tenant_key:
        ``event -> tenant id`` routing function; defaults to the
        ``src_key`` prefix before ``"|"`` (untagged events all map to
        :data:`DEFAULT_TENANT`).
    window_span / use_prefilter:
        Forwarded to every per-tenant :class:`DetectionService` — the
        same values a serial per-tenant deployment would use, keeping
        the union-identity contract exact.
    runner:
        ``"inline"`` (in-process shards) or ``"process"`` (one worker
        process per shard with bounded queues; see the module doc).
    queue_depth:
        Bounded per-shard input queue, in batches (process runner only —
        inline shards drain synchronously and never backpressure).
    start_method:
        Multiprocessing start method override; defaults to the library's
        platform preference (:func:`repro.core.parallel.resolve_start_method`).
    assign:
        ``(tenant, shards) -> shard`` override for tests and rebalancing
        experiments; defaults to :func:`shard_for_tenant`.  Detections
        are identical for *any* assignment — only load balance changes.

    Register every query before the first ingest (process workers take
    the slate snapshot at startup), then ``ingest``/``replay`` freely and
    ``close()`` when done — or use the fleet as a context manager.
    """

    def __init__(
        self,
        shards: int = 1,
        *,
        tenant_key: Callable[[SyscallEvent], str] | None = None,
        window_span: int | None = None,
        use_prefilter: bool = True,
        runner: str = "inline",
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        start_method: str | None = None,
        assign: Callable[[str, int], int] | None = None,
    ) -> None:
        if shards < 1:
            raise ServingError("a fleet needs at least one shard")
        if runner not in ("inline", "process"):
            raise ServingError(f"unknown shard runner {runner!r}")
        if queue_depth < 1:
            raise ServingError("queue_depth must be >= 1")
        if window_span is not None and window_span < 0:
            raise ServingError("window_span must be non-negative or None")
        self.num_shards = shards
        self.window_span = window_span
        self.use_prefilter = use_prefilter
        self.runner = runner
        self._tenant_key = tenant_key or default_tenant_key
        self._assign = assign or shard_for_tenant
        self._queue_depth = queue_depth
        self._start_method = start_method
        self._queries: list[BehaviorQuery] = []
        self._shard_stats = [ServiceStats() for _ in range(shards)]
        self._tenants: set[str] = set()
        self._routed_batches = 0
        self._routed_events = 0
        self._backpressure_waits = 0
        self._wall_seconds = 0.0
        self._started = False
        self._closed = False
        # inline runner state
        self._states: list[_ShardState] = []
        # process runner state
        self._procs: list = []
        self._in_queues: list = []
        self._results = None
        self._blob_handle = None
        self._next_seq = 0
        self._pending: dict[int, int] = {}
        self._collected: dict[int, list[FleetDetection]] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, query: BehaviorQuery) -> int:
        """Register one behavior query on every (future) tenant service.

        Returns the query's slate index — equal to the ``query_id`` each
        per-tenant service assigns, since all services register the same
        slate in the same order.
        """
        if self._started:
            raise ServingError(
                "register queries before the first ingest: process shards "
                "snapshot the slate at startup, and a late-registered wide "
                "query could not see already-evicted edges anyway"
            )
        if (
            self.window_span is not None
            and query.max_span > self.window_span
        ):
            raise ServingError(
                f"query {query.name!r} has max_span {query.max_span} wider than "
                f"the fleet window {self.window_span}; widen the window or "
                "shorten the query cap"
            )
        self._queries.append(query)
        return len(self._queries) - 1

    def register_all(self, queries: Sequence[BehaviorQuery]) -> list[int]:
        """Register a query batch (the model-bundle serving path)."""
        return [self.register(query) for query in queries]

    def reload(self, queries: Sequence[BehaviorQuery]) -> list[int]:
        """Hot-swap the query slate on every tenant window (inline only).

        Each open tenant service performs its own warmed
        :meth:`~repro.serving.service.DetectionService.reload`, so every
        tenant keeps its retained window; tenants first seen after the
        reload register the new slate from the start.  Process-runner
        fleets snapshot the slate in their workers at startup and do not
        support reload — restart the fleet (or run the HTTP tier over an
        inline fleet / single service) to swap models there.
        """
        if self.runner != "inline":
            raise ServingError(
                "hot reload is only supported on inline fleets; process "
                "workers snapshot the query slate at startup — restart the "
                "fleet to change models"
            )
        for query in queries:
            if self.window_span is not None and query.max_span > self.window_span:
                raise ServingError(
                    f"query {query.name!r} has max_span {query.max_span} wider "
                    f"than the fleet window {self.window_span}; widen the "
                    "window or shorten the query cap"
                )
        self._queries = list(queries)
        for state in self._states:
            state.reload(self._queries)
        return list(range(len(self._queries)))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bring shards up eagerly (idempotent).

        ``ingest`` starts the fleet lazily; calling this first lets
        benchmarks exclude process-spawn cost from timed sections and
        surfaces worker startup failures early.
        """
        if self._closed:
            raise ServingError("fleet is closed")
        if self._started:
            return
        self._started = True
        if self.runner == "inline":
            self._states = [
                _ShardState(self._queries, self.window_span, self.use_prefilter)
                for _ in range(self.num_shards)
            ]
            return
        ctx = multiprocessing.get_context(
            resolve_start_method(self._start_method)
        )
        payload = json.dumps(
            [query_to_dict(query) for query in self._queries]
        ).encode("utf-8")
        blob, self._blob_handle = publish_blob(payload)
        try:
            self._results = ctx.Queue()
            for shard_id in range(self.num_shards):
                in_queue = ctx.Queue(maxsize=self._queue_depth)
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(
                        shard_id,
                        in_queue,
                        self._results,
                        blob,
                        self.window_span,
                        self.use_prefilter,
                    ),
                    daemon=True,
                )
                proc.start()
                self._in_queues.append(in_queue)
                self._procs.append(proc)
            ready: set[int] = set()
            while len(ready) < self.num_shards:
                message = self._next_message(timeout=60.0)
                if message[0] == "ready":
                    ready.add(message[1])
                else:
                    self._handle(message)
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Shut shard workers down and release the shared slate; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.runner == "process" and self._started:
            for in_queue in self._in_queues:
                try:
                    in_queue.put(("stop",), timeout=5)
                except (_queue.Full, ValueError, OSError):
                    pass
            for proc in self._procs:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=5)
            if self._results is not None:
                try:
                    while True:
                        self._results.get_nowait()
                except (_queue.Empty, OSError, ValueError):
                    pass
            for mpq in [*self._in_queues, *( [self._results] if self._results else [] )]:
                mpq.close()
                mpq.cancel_join_thread()
        if self._blob_handle is not None:
            self._blob_handle.unlink()
            self._blob_handle = None

    def __enter__(self) -> "DetectionFleet":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, events: Sequence[SyscallEvent]) -> list[FleetDetection]:
        """Route one mixed batch to its tenants' shards; report detections.

        Synchronous: returns every detection this batch produced, sorted
        by ``(tenant, query_id, span)`` so inline and process runners
        emit identical lists.  Under the process runner the shards
        touched by the batch work concurrently.
        """
        if self._closed:
            raise ServingError("fleet is closed")
        self.start()
        started = _time.perf_counter()
        groups = self._group(events)
        seq = self._new_batch(groups)
        detections = self._await_batch(seq)
        self._routed_batches += 1
        self._routed_events += len(events)
        self._wall_seconds += _time.perf_counter() - started
        return detections

    def replay(
        self, events: Sequence[SyscallEvent], batch_size: int
    ) -> Iterator[tuple[int, list[FleetDetection]]]:
        """Feed a recorded mixed log through the fleet batch by batch.

        Under the process runner the replay is **pipelined**: up to
        ``queue_depth`` batches per shard are in flight at once, and each
        batch's detections are yielded — in batch order — as soon as all
        of its tenant groups complete.  The accumulated detections are
        identical to calling :meth:`ingest` per batch.
        """
        from repro.syscall.collector import iter_event_batches

        if self._closed:
            raise ServingError("fleet is closed")
        self.start()
        events = list(events)
        if self.runner == "inline":
            for index, batch in enumerate(iter_event_batches(events, batch_size)):
                yield index, self.ingest(batch)
            return
        seqs: list[int] = []
        emitted = 0
        for batch in iter_event_batches(events, batch_size):
            started = _time.perf_counter()
            seqs.append(self._new_batch(self._group(batch)))
            self._routed_batches += 1
            self._routed_events += len(batch)
            self._drain()
            self._wall_seconds += _time.perf_counter() - started
            while emitted < len(seqs) and not self._pending[seqs[emitted]]:
                yield emitted, self._finish_batch(seqs[emitted])
                emitted += 1
        while emitted < len(seqs):
            started = _time.perf_counter()
            while self._pending[seqs[emitted]]:
                self._handle(self._next_message(timeout=60.0))
            self._wall_seconds += _time.perf_counter() - started
            yield emitted, self._finish_batch(seqs[emitted])
            emitted += 1

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def stats(self) -> FleetStats:
        """Live fleet rollup (complete whenever no replay is mid-flight)."""
        return FleetStats(
            shards=tuple(self._shard_stats),
            tenants=len(self._tenants),
            queue_depth=self._queue_depth,
            routed_batches=self._routed_batches,
            routed_events=self._routed_events,
            backpressure_waits=self._backpressure_waits,
            wall_seconds=self._wall_seconds,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _group(self, events: Sequence[SyscallEvent]) -> dict[str, list[SyscallEvent]]:
        """Split a mixed batch into per-tenant groups, arrival order kept."""
        groups: dict[str, list[SyscallEvent]] = {}
        for event in events:
            groups.setdefault(str(self._tenant_key(event)), []).append(event)
        return groups

    def _new_batch(self, groups: dict[str, list[SyscallEvent]]) -> int:
        """Dispatch one batch's tenant groups; returns its sequence id."""
        seq = self._next_seq
        self._next_seq += 1
        self._pending[seq] = 0
        self._collected[seq] = []
        for tenant, tenant_events in groups.items():
            shard = self._assign(tenant, self.num_shards)
            if not 0 <= shard < self.num_shards:
                raise ServingError(
                    f"shard assignment for tenant {tenant!r} out of range: "
                    f"{shard} (fleet has {self.num_shards})"
                )
            self._tenants.add(tenant)
            self._pending[seq] += 1
            if self.runner == "inline":
                detections, delta, elapsed = self._states[shard].ingest(
                    tenant, tenant_events
                )
                self._apply(shard, seq, tenant, detections, delta, elapsed)
            else:
                self._put(shard, ("batch", seq, tenant, tenant_events))
        return seq

    def _await_batch(self, seq: int) -> list[FleetDetection]:
        """Block until one batch's groups all completed; return detections."""
        while self._pending[seq]:
            self._handle(self._next_message(timeout=60.0))
        return self._finish_batch(seq)

    def _finish_batch(self, seq: int) -> list[FleetDetection]:
        del self._pending[seq]
        detections = self._collected.pop(seq)
        detections.sort(key=lambda d: (d.tenant, d.query_id, d.start, d.end))
        return detections

    def _apply(
        self,
        shard: int,
        seq: int,
        tenant: str,
        detections: Sequence[Detection],
        delta: dict,
        elapsed: float,
    ) -> None:
        """Fold one completed tenant-group ingest into router state."""
        self._shard_stats[shard].add_delta(delta, batch_seconds=elapsed)
        self._collected[seq].extend(
            FleetDetection(
                tenant=tenant,
                shard=shard,
                query_id=d.query_id,
                query=d.query,
                start=d.start,
                end=d.end,
                batch=d.batch,
            )
            for d in detections
        )
        self._pending[seq] -= 1

    def _put(self, shard: int, item: tuple) -> None:
        """Bounded-queue submit: count the stall, then block politely.

        While blocked the router keeps draining finished results, so a
        full input queue can never deadlock against a full fleet.
        """
        in_queue = self._in_queues[shard]
        try:
            in_queue.put_nowait(item)
            return
        except _queue.Full:
            self._backpressure_waits += 1
        while True:
            self._drain()
            try:
                in_queue.put(item, timeout=0.05)
                return
            except _queue.Full:
                self._check_workers()

    def _drain(self) -> None:
        """Absorb every already-available worker message (non-blocking)."""
        while True:
            try:
                message = self._results.get_nowait()
            except _queue.Empty:
                return
            self._handle(message)

    def _next_message(self, timeout: float) -> tuple:
        """Blocking receive with worker-liveness checks (no silent hangs)."""
        deadline = _time.perf_counter() + timeout
        while True:
            try:
                return self._results.get(timeout=0.25)
            except _queue.Empty:
                self._check_workers()
                if _time.perf_counter() > deadline:
                    raise ServingError(
                        f"fleet timed out after {timeout:.0f}s waiting for "
                        "shard results"
                    ) from None

    def _check_workers(self) -> None:
        for shard_id, proc in enumerate(self._procs):
            if not proc.is_alive() and proc.exitcode not in (0, None):
                raise ServingError(
                    f"shard {shard_id} worker died with exit code "
                    f"{proc.exitcode}"
                )

    def _handle(self, message: tuple) -> None:
        kind = message[0]
        if kind == "ok":
            _, shard, seq, tenant, detections, delta, elapsed = message
            self._apply(shard, seq, tenant, detections, delta, elapsed)
        elif kind == "error":
            _, shard, seq, text = message
            if seq is not None and seq in self._pending:
                self._pending[seq] -= 1
            raise ServingError(f"shard {shard} ingest failed:\n{text}")
        elif kind == "ready":
            pass  # late duplicate; startup already consumed the real one
        else:  # pragma: no cover - protocol bug guard
            raise ServingError(f"unknown shard message {kind!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DetectionFleet(shards={self.num_shards}, runner={self.runner!r}, "
            f"tenants={len(self._tenants)}, queries={len(self._queries)})"
        )
