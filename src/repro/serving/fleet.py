"""Sharded multi-tenant detection fleet behind the single-service ingest API.

One :class:`~repro.serving.service.DetectionService` owns one sliding
window — fine for one host's stream, hopeless for a deployment
monitoring many tenants' event streams at once.  :class:`DetectionFleet`
scales the *data plane* by partitioning it while keeping the *query
surface* single (the partition/provenance discipline of the LSST
multi-petabyte-database design): callers still speak the
:class:`~repro.serving.Ingestor` surface — ``register_all`` /
``ingest`` / ``replay`` / ``stats`` / ``close`` — and the fleet routes
each event to a shard by its **tenant key**, where a per-tenant
:class:`DetectionService` (own window, own dedup state) evaluates it.

Correctness contract
--------------------
Fleet detections are **exactly the union of per-tenant serial
``DetectionService`` detections** — for any shard count, any routing of
tenants to shards, and any batching of the mixed stream — because a
shard never mixes tenants into one window: each tenant's events reach
its own service in arrival order, and services on different shards share
nothing.  ``tests/test_fleet.py`` asserts the identity property-style;
``benchmarks/bench_fleet.py`` re-asserts it inside the gated benchmark.

Shard runners
-------------
* ``runner="inline"`` (default): shards are plain in-process tenant
  maps.  Zero parallelism, zero serialization — the correctness
  reference, and the right choice for tests and modest streams.
* ``runner="process"``: one worker process per shard, fed through a
  **bounded** input queue (``queue_depth`` batches).  A full queue is
  *backpressure*: the router counts the stall
  (``FleetStats.backpressure_waits``) and blocks — draining finished
  results while it waits — instead of buffering without bound.  The
  registered query slate is serialized once and published through a
  read-only shared-memory segment
  (:func:`repro.core.shm.publish_blob`), the same spawn machinery the
  parallel miner uses for its corpus, so N shards attach one copy
  instead of unpickling N.  Per-batch results carry additive counter
  deltas (:meth:`ServiceStats.counters`), which the router folds into
  parent-side per-shard :class:`ServiceStats` — fleet stats are always
  readable without a barrier.

Late arrivals are dropped *per tenant* by each tenant's own window
(never because a neighbour tenant's clock ran ahead) and roll up into
``FleetStats.late_dropped``.

Fault tolerance
---------------
With ``checkpoint_dir=`` set, every tenant service is durable: its
batches are logged to a per-(shard, tenant) WAL and snapshotted every
``checkpoint_every`` batches (see :mod:`repro.serving.checkpoint`).  The
router is then a *supervisor*: a dead or stalled worker is killed,
respawned with bounded exponential backoff against a per-shard
``restart_budget``, and the new worker re-warms every tenant service
from its checkpoint directory, replaying the WAL tail.  Replayed batches
answer the router's still-pending submissions (matched by submit seq +
a parent-lifetime epoch token), and batches that never reached the WAL
are resubmitted in order — so a ``kill -9`` mid-stream yields exactly
the detections of an uninterrupted run.  A batch a tenant service
*rejects* (a poisoned batch) quarantines that tenant — its later events
are dropped and counted — instead of killing the shard.  All of it is
accounted in :class:`FleetStats` (``restarts``, ``force_killed``,
``recovered_events``, ``quarantined``, ``quarantine_dropped``) and
surfaced by :meth:`DetectionFleet.health`.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection as _mp_connection
import os
import queue as _queue
import time as _time
import traceback
import uuid
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Sequence
from urllib.parse import quote, unquote

from repro.core.errors import CheckpointError, ServingError, ShardTimeoutError
from repro.core.faults import FaultPlan
from repro.core.parallel import resolve_start_method
from repro.serving.contracts import STATS_SCHEMA_VERSION
from repro.core.shm import BlobDescriptor, attach_blob, publish_blob
from repro.serving.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    CheckpointStore,
    recover_service,
)
from repro.serving.registry import BehaviorQuery, query_from_dict, query_to_dict
from repro.serving.service import (
    Detection,
    DetectionService,
    ServiceStats,
    merged_latency_percentile,
)
from repro.syscall.events import SyscallEvent

__all__ = [
    "DetectionFleet",
    "FleetDetection",
    "FleetStats",
    "TENANT_SEPARATOR",
    "DEFAULT_TENANT",
    "default_tenant_key",
    "tenant_key_for_separator",
    "shard_for_tenant",
    "tag_tenant_events",
    "interleave_streams",
    "simulate_tenant_streams",
]

#: Separator splitting the tenant id off a tagged entity key
#: (``"tenant-007|proc:1234"``).
TENANT_SEPARATOR = "|"

#: Tenant that untagged events route to, so a single-host log replays
#: through a fleet unchanged (everything lands on one shard's service).
DEFAULT_TENANT = "default"

#: Bounded input-queue depth per process shard, in batches.
DEFAULT_QUEUE_DEPTH = 8

#: Worker restarts the supervisor will attempt per shard before giving up.
DEFAULT_RESTART_BUDGET = 3

#: Base delay of the supervisor's exponential restart backoff, seconds.
DEFAULT_RESTART_BACKOFF = 0.05

#: Backoff ceiling, seconds.
_RESTART_BACKOFF_CAP = 2.0

#: How long the router waits on shard results before declaring a stall.
DEFAULT_RESULT_TIMEOUT = 60.0


def tenant_key_for_separator(separator: str) -> Callable[[SyscallEvent], str]:
    """Build a tenant-key function splitting a prefix off ``src_key``.

    Events whose source key carries no separator map to
    :data:`DEFAULT_TENANT` — a whole untagged log is one tenant.
    """
    if not separator:
        raise ServingError("tenant-key separator must be non-empty")

    def tenant_key(event: SyscallEvent) -> str:
        key = event.src_key
        head, sep, _ = key.partition(separator)
        return head if sep else DEFAULT_TENANT

    return tenant_key


#: The default routing key: ``src_key`` prefix before ``"|"``.
default_tenant_key = tenant_key_for_separator(TENANT_SEPARATOR)


def shard_for_tenant(tenant: str, shards: int) -> int:
    """Stable tenant → shard assignment (CRC32, identical across
    processes and runs — unlike ``hash()``, which is salted per
    interpreter)."""
    return zlib.crc32(tenant.encode("utf-8")) % shards


def tag_tenant_events(
    tenant: str, events: Sequence[SyscallEvent]
) -> list[SyscallEvent]:
    """Prefix every entity key with ``tenant|`` so the router can split
    a mixed stream back into per-tenant substreams.

    Tagging both endpoints keeps each tenant's entity namespace disjoint;
    labels (what patterns match on) are untouched.
    """
    if TENANT_SEPARATOR in tenant:
        raise ServingError(
            f"tenant id {tenant!r} must not contain {TENANT_SEPARATOR!r}"
        )
    prefix = f"{tenant}{TENANT_SEPARATOR}"
    return [
        SyscallEvent(
            time=event.time,
            syscall=event.syscall,
            src_key=prefix + event.src_key,
            src_label=event.src_label,
            dst_key=prefix + event.dst_key,
            dst_label=event.dst_label,
        )
        for event in events
    ]


def interleave_streams(
    streams: Sequence[Sequence[SyscallEvent]], chunk: int = 32
) -> list[SyscallEvent]:
    """Round-robin merge of event streams, ``chunk`` events at a time.

    Per-stream order is preserved (each tenant's events stay in arrival
    order); across streams the merge deliberately mixes tenants within
    every ingest batch — the fleet's routing workload.
    """
    if chunk < 1:
        raise ServingError("interleave chunk must be >= 1")
    cursors = [0] * len(streams)
    merged: list[SyscallEvent] = []
    remaining = sum(len(stream) for stream in streams)
    while remaining:
        for i, stream in enumerate(streams):
            take = stream[cursors[i] : cursors[i] + chunk]
            merged.extend(take)
            cursors[i] += len(take)
            remaining -= len(take)
    return merged


def simulate_tenant_streams(
    tenants: int,
    instances: int,
    seed: int = 11,
    chunk: int = 32,
    behaviors: Sequence[str] | None = None,
) -> list[SyscallEvent]:
    """Load-generator input: ``tenants`` tagged busy-host logs, interleaved.

    Each tenant gets its own :func:`~repro.syscall.collector.build_test_data`
    log (seed ``seed + t``) tagged with ``tenant-<t>``; the streams are
    round-robin interleaved so consecutive ingest batches mix tenants.
    Used by ``repro detect --shards --tenants`` and the fleet benchmark.
    """
    from repro.syscall.collector import build_test_data

    if tenants < 1:
        raise ServingError("tenants must be >= 1")
    overrides: dict = {}
    if behaviors is not None:
        overrides["behaviors"] = tuple(behaviors)
    streams = []
    for t in range(tenants):
        data = build_test_data(instances=instances, seed=seed + t, **overrides)
        streams.append(tag_tenant_events(f"tenant-{t:03d}", data.events))
    return interleave_streams(streams, chunk=chunk)


@dataclass(frozen=True)
class FleetDetection:
    """One identified behavior instance, attributed to its tenant + shard.

    ``batch`` is the *tenant-local* batch index (the tenant service's own
    ingest counter), deterministic for any shard count or routing.
    """

    tenant: str
    shard: int
    query_id: int
    query: str
    start: int
    end: int
    batch: int

    @property
    def span(self) -> tuple[int, int]:
        """The identified time interval on the tenant's own clock."""
        return (self.start, self.end)

    @property
    def key(self) -> tuple[str, str, int, int]:
        """Routing-invariant identity: ``(tenant, query, start, end)``."""
        return (self.tenant, self.query, self.start, self.end)


@dataclass(frozen=True)
class FleetStats:
    """Fleet-level rollup over parent-side per-shard :class:`ServiceStats`.

    ``shards`` holds live references to the router's per-shard stats —
    read, don't mutate.  Aggregates are sums; tail latency merges the
    shard reservoirs count-weighted
    (:func:`~repro.serving.service.merged_latency_percentile`).

    ``events_per_second`` here divides by **router wall-clock**
    (``wall_seconds``: time spent inside fleet calls, during which
    process shards work concurrently), not by summed per-shard ingest
    seconds — the number an operator sizing a fleet actually wants.
    """

    shards: tuple[ServiceStats, ...]
    tenants: int
    queue_depth: int
    routed_batches: int
    routed_events: int
    backpressure_waits: int
    wall_seconds: float
    restarts: int = 0
    force_killed: int = 0
    recovered_events: int = 0
    quarantined: tuple[str, ...] = ()
    quarantine_dropped: int = 0

    # -- aggregates over shards -----------------------------------------
    @property
    def batches(self) -> int:
        """Tenant-service ingest calls across all shards."""
        return sum(s.batches for s in self.shards)

    @property
    def events(self) -> int:
        """Events accepted into tenant windows across all shards."""
        return sum(s.events for s in self.shards)

    @property
    def detections(self) -> int:
        return sum(s.detections for s in self.shards)

    @property
    def queries_evaluated(self) -> int:
        return sum(s.queries_evaluated for s in self.shards)

    @property
    def queries_prefiltered(self) -> int:
        return sum(s.queries_prefiltered for s in self.shards)

    @property
    def matching_seconds(self) -> float:
        return sum(s.matching_seconds for s in self.shards)

    @property
    def evicted(self) -> int:
        return sum(s.evicted for s in self.shards)

    @property
    def late_dropped(self) -> int:
        return sum(s.late_dropped for s in self.shards)

    @property
    def reinserted(self) -> int:
        return sum(s.reinserted for s in self.shards)

    @property
    def total_seconds(self) -> float:
        """Summed in-shard ingest seconds (busy time, not wall time)."""
        return sum(s.total_seconds for s in self.shards)

    @property
    def events_per_second(self) -> float:
        """Aggregate throughput over router wall-clock."""
        return self.routed_events / self.wall_seconds if self.wall_seconds else 0.0

    def latency_percentile(self, quantile: float) -> float:
        """Count-weighted nearest-rank percentile across shard reservoirs."""
        return merged_latency_percentile(
            (s.latency for s in self.shards), quantile
        )

    @property
    def max_batch_seconds(self) -> float:
        """Slowest single tenant-batch ingest anywhere in the fleet."""
        return max((s.latency.max for s in self.shards), default=0.0)

    def as_dict(self) -> dict:
        """JSON-compatible snapshot: the shared
        :data:`~repro.serving.service.STATS_SCHEMA_KEYS` schema plus
        fleet-only rollup extras (``per_shard`` nests each shard's own
        ``as_dict``)."""
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "kind": "fleet",
            "batches": self.batches,
            "events": self.events,
            "detections": self.detections,
            "queries_evaluated": self.queries_evaluated,
            "queries_prefiltered": self.queries_prefiltered,
            "matching_seconds": self.matching_seconds,
            "total_seconds": self.total_seconds,
            "events_per_second": self.events_per_second,
            "evicted": self.evicted,
            "late_dropped": self.late_dropped,
            "reinserted": self.reinserted,
            "latency_ms": {
                "p50": self.latency_percentile(0.5) * 1000,
                "p95": self.latency_percentile(0.95) * 1000,
                "p99": self.latency_percentile(0.99) * 1000,
                "max": self.max_batch_seconds * 1000,
            },
            "latency_samples": {
                "observed": sum(s.latency.count for s in self.shards),
                "kept": sum(s.latency.kept for s in self.shards),
                "capacity": sum(s.latency.capacity for s in self.shards),
            },
            # fleet-only rollup
            "shards": len(self.shards),
            "tenants": self.tenants,
            "queue_depth": self.queue_depth,
            "routed_batches": self.routed_batches,
            "routed_events": self.routed_events,
            "backpressure_waits": self.backpressure_waits,
            "wall_seconds": self.wall_seconds,
            "restarts": self.restarts,
            "force_killed": self.force_killed,
            "recovered_events": self.recovered_events,
            "quarantined": list(self.quarantined),
            "quarantine_dropped": self.quarantine_dropped,
            "per_shard": [s.as_dict() for s in self.shards],
        }


class _ShardState:
    """One shard's tenant services — the same code inline and in workers.

    Lazily opens a :class:`DetectionService` per first-seen tenant and
    reports each ingest as ``(detections, counter_delta, seconds)``:
    the delta is the difference of the service's additive
    :meth:`~ServiceStats.counters` across the call, the currency the
    router folds into its parent-side per-shard stats regardless of
    which process the ingest ran in.
    """

    def __init__(
        self,
        queries: Sequence[BehaviorQuery],
        window_span: int | None,
        use_prefilter: bool,
        *,
        shard_id: int = 0,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        faults: FaultPlan | None = None,
        epoch: str = "",
    ) -> None:
        self._queries = list(queries)
        self._window_span = window_span
        self._use_prefilter = use_prefilter
        self._shard_id = shard_id
        self._checkpoint_dir = checkpoint_dir
        self._checkpoint_every = checkpoint_every
        self._faults = faults
        self._epoch = epoch
        self._services: dict[str, DetectionService] = {}
        self._previous: dict[str, dict] = {}
        self._stores: dict[str, CheckpointStore] = {}
        self._since_snapshot: dict[str, int] = {}

    def _scope(self, tenant: str) -> dict:
        return {"shard": self._shard_id, "tenant": tenant}

    def _tenant_dir(self, tenant: str) -> Path:
        assert self._checkpoint_dir is not None
        return Path(self._checkpoint_dir) / quote(tenant, safe="")

    def recover_tenants(self) -> list[tuple[str, int, str, list[Detection], int]]:
        """Re-warm every checkpointed tenant service from disk.

        Returns one entry per WAL record replayed on top of a tenant's
        restored snapshot: ``(tenant, seq, epoch, detections, events)``.
        The supervisor matches these against its in-flight bookkeeping
        to answer batches that were logged but never acknowledged.
        """
        if self._checkpoint_dir is None:
            return []
        root = Path(self._checkpoint_dir)
        if not root.is_dir():
            return []
        replayed: list[tuple[str, int, str, list[Detection], int]] = []
        for child in sorted(root.iterdir()):
            if not child.is_dir():
                continue
            tenant = unquote(child.name)
            recovered = recover_service(
                child,
                queries=self._queries,
                window_span=self._window_span,
                use_prefilter=self._use_prefilter,
                faults=self._faults,
                fault_scope=self._scope(tenant),
            )
            self._services[tenant] = recovered.service
            self._previous[tenant] = recovered.service.stats.counters()
            self._stores[tenant] = recovered.store
            self._since_snapshot[tenant] = len(recovered.replayed)
            for seq, epoch, detections, num_events in recovered.replayed:
                replayed.append((tenant, seq, epoch, detections, num_events))
        return replayed

    def ingest(
        self, tenant: str, events: Sequence[SyscallEvent], seq: int = -1
    ) -> tuple[list[Detection], dict, float]:
        service = self._services.get(tenant)
        if service is None:
            service = DetectionService(
                window_span=self._window_span,
                use_prefilter=self._use_prefilter,
                faults=self._faults,
                fault_scope=self._scope(tenant),
            )
            service.register_all(self._queries)
            self._services[tenant] = service
            self._previous[tenant] = service.stats.counters()
            if self._checkpoint_dir is not None:
                self._stores[tenant] = CheckpointStore(
                    self._tenant_dir(tenant),
                    faults=self._faults,
                    fault_scope=self._scope(tenant),
                )
                self._since_snapshot[tenant] = 0
        store = self._stores.get(tenant)
        if (
            store is not None
            and self._since_snapshot[tenant] >= self._checkpoint_every
        ):
            # cut *before* appending, so a snapshot never absorbs a batch
            # whose ack may still be in flight: the batch's WAL record
            # must stay in the replay range until the *next* cut, or a
            # crash between ingest and ack leaves the supervisor unable
            # to settle the batch (it would resubmit, double-ingesting
            # events the restored window already seals)
            store.snapshot(service)
            self._since_snapshot[tenant] = 0
        offset = (
            store.append(seq, events, epoch=self._epoch)
            if store is not None
            else None
        )
        started = _time.perf_counter()
        try:
            detections = service.ingest(events)
        except ServingError:
            if store is not None and offset is not None:
                # the rejected batch never mutated the service; keep it
                # out of the WAL so recovery replays reality, not intent
                store.truncate_to(offset)
            raise
        elapsed = _time.perf_counter() - started
        current = service.stats.counters()
        previous = self._previous[tenant]
        delta = {key: current[key] - previous[key] for key in current}
        self._previous[tenant] = current
        if store is not None:
            self._since_snapshot[tenant] += 1
        return detections, delta, elapsed

    def reload(self, queries: Sequence[BehaviorQuery]) -> None:
        """Swap the slate on every open tenant service + future tenants."""
        self._queries = list(queries)
        for service in self._services.values():
            service.reload(self._queries)
        # the slate is part of each snapshot: make the swap durable now
        self.checkpoint_all()

    def checkpoint_all(self) -> None:
        """Cut a snapshot for every checkpointed tenant service."""
        for tenant, store in self._stores.items():
            store.snapshot(self._services[tenant])
            self._since_snapshot[tenant] = 0

    def close(self) -> None:
        for store in self._stores.values():
            store.close()


def _flush_queue(out_queue) -> None:
    """Drain the result queue's feeder before a simulated hard kill.

    ``os._exit`` while the queue's feeder thread is mid-``put`` would
    leave a half-written frame (or a held write lock) in the channel,
    wedging the supervisor — an artifact of simulating SIGKILL
    in-process, not of the crash semantics under test: the current
    batch's ack is still never sent, so recovery must prove the same
    settle-or-resubmit property either way.
    """
    try:
        out_queue.close()
        out_queue.join_thread()
    except Exception:  # pragma: no cover - queue already broken
        pass


def _shard_worker(
    shard_id: int,
    in_queue,
    out_queue,
    blob: BlobDescriptor,
    window_span: int | None,
    use_prefilter: bool,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    faults: FaultPlan | None = None,
    incarnation: int = 0,
    epoch: str = "",
) -> None:
    """Process-shard main loop: attach the shared slate, serve batches.

    On startup (first spawn *and* supervisor respawn) the worker
    re-warms every tenant service found under its checkpoint directory
    and reports the replayed WAL tail in its ``ready`` message.  A batch
    its tenant service rejects quarantines the tenant (``quarantined``
    message) instead of killing the shard; an injected torn-WAL write
    (:class:`~repro.core.errors.CheckpointError`) simulates a crash and
    hard-exits, exercising the supervisor path.
    """
    if faults is not None:
        faults = faults.scoped(incarnation=incarnation)
    try:
        attached = attach_blob(blob)
        payload = json.loads(attached.to_bytes().decode("utf-8"))
        queries = [query_from_dict(entry) for entry in payload]
        state = _ShardState(
            queries,
            window_span,
            use_prefilter,
            shard_id=shard_id,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            faults=faults,
            epoch=epoch,
        )
        recovered = state.recover_tenants()
    except BaseException:
        out_queue.put(("error", shard_id, None, traceback.format_exc()))
        return
    out_queue.put(("ready", shard_id, incarnation, recovered))
    # Supervision may resubmit a batch the previous worker already logged
    # (e.g. it died between queue-put and ack while the router was mid-put,
    # so the same item reaches both the resubmit loop and the interrupted
    # submit).  At-least-once delivery + this dedup = effectively-once:
    # same-epoch (seq, tenant) keys already replayed from the WAL, or
    # already handled in this incarnation, are dropped silently — the
    # router's accounting was settled by the first delivery's ack/replay.
    done = {
        (seq, tenant)
        for tenant, seq, rec_epoch, _, _ in recovered
        if rec_epoch == epoch
    }
    while True:
        item = in_queue.get()
        if item[0] == "stop":
            try:
                state.checkpoint_all()
                state.close()
            except Exception:  # pragma: no cover - best-effort final cut
                pass
            return
        _, seq, tenant, events = item
        if (seq, tenant) in done:
            continue
        if faults is not None:
            faults.maybe_sleep("worker.stall", shard=shard_id, tenant=tenant)
        try:
            detections, delta, elapsed = state.ingest(tenant, events, seq=seq)
        except CheckpointError:
            # injected torn WAL write: the simulated power loss takes the
            # worker with it (skipping atexit, like a real SIGKILL)
            _flush_queue(out_queue)
            os._exit(137)
        except Exception:
            done.add((seq, tenant))
            out_queue.put(
                (
                    "quarantined",
                    shard_id,
                    seq,
                    tenant,
                    len(events),
                    traceback.format_exc(),
                )
            )
            continue
        done.add((seq, tenant))
        if faults is not None:
            faults.maybe_exit("worker.kill", shard=shard_id, tenant=tenant,
                              flush=lambda: _flush_queue(out_queue))
        out_queue.put(("ok", shard_id, seq, tenant, detections, delta, elapsed))


class DetectionFleet:
    """Multi-tenant detection behind the single-service ingest surface.

    Parameters
    ----------
    shards:
        Number of independent shards events are partitioned across.
    tenant_key:
        ``event -> tenant id`` routing function; defaults to the
        ``src_key`` prefix before ``"|"`` (untagged events all map to
        :data:`DEFAULT_TENANT`).
    window_span / use_prefilter:
        Forwarded to every per-tenant :class:`DetectionService` — the
        same values a serial per-tenant deployment would use, keeping
        the union-identity contract exact.
    runner:
        ``"inline"`` (in-process shards) or ``"process"`` (one worker
        process per shard with bounded queues; see the module doc).
    queue_depth:
        Bounded per-shard input queue, in batches (process runner only —
        inline shards drain synchronously and never backpressure).
    start_method:
        Multiprocessing start method override; defaults to the library's
        platform preference (:func:`repro.core.parallel.resolve_start_method`).
    assign:
        ``(tenant, shards) -> shard`` override for tests and rebalancing
        experiments; defaults to :func:`shard_for_tenant`.  Detections
        are identical for *any* assignment — only load balance changes.
    checkpoint_dir / checkpoint_every:
        When set, every tenant service is made durable under
        ``<checkpoint_dir>/shard-<n>/<tenant>/`` (WAL per batch, snapshot
        every ``checkpoint_every`` tenant batches; see
        :mod:`repro.serving.checkpoint`), restarted workers re-warm from
        it, and a fresh fleet pointed at the same directory resumes the
        previous run's windows.
    restart_budget / restart_backoff:
        Supervisor limits for the process runner: a dead or stalled
        worker is respawned at most ``restart_budget`` times per shard,
        with exponential backoff starting at ``restart_backoff`` seconds.
        ``restart_budget=0`` disables supervision (a dead worker raises,
        the pre-supervision behavior).
    result_timeout:
        Seconds the router waits on shard results before treating the
        shard as stalled — supervised shards are then killed and
        restarted; unsupervised fleets raise
        :class:`~repro.core.errors.ShardTimeoutError`.
    faults:
        Deterministic fault injection plan for chaos testing
        (:class:`~repro.core.faults.FaultPlan`).

    Register every query before the first ingest (process workers take
    the slate snapshot at startup), then ``ingest``/``replay`` freely and
    ``close()`` when done — or use the fleet as a context manager.
    """

    def __init__(
        self,
        shards: int = 1,
        *,
        tenant_key: Callable[[SyscallEvent], str] | None = None,
        window_span: int | None = None,
        use_prefilter: bool = True,
        runner: str = "inline",
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        start_method: str | None = None,
        assign: Callable[[str, int], int] | None = None,
        checkpoint_dir: "str | Path | None" = None,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        restart_budget: int = DEFAULT_RESTART_BUDGET,
        restart_backoff: float = DEFAULT_RESTART_BACKOFF,
        result_timeout: float = DEFAULT_RESULT_TIMEOUT,
        faults: FaultPlan | None = None,
    ) -> None:
        if shards < 1:
            raise ServingError("a fleet needs at least one shard")
        if runner not in ("inline", "process"):
            raise ServingError(f"unknown shard runner {runner!r}")
        if queue_depth < 1:
            raise ServingError("queue_depth must be >= 1")
        if window_span is not None and window_span < 0:
            raise ServingError("window_span must be non-negative or None")
        if checkpoint_every < 1:
            raise ServingError("checkpoint_every must be >= 1")
        if restart_budget < 0:
            raise ServingError("restart_budget must be >= 0")
        if restart_backoff < 0:
            raise ServingError("restart_backoff must be >= 0")
        if result_timeout <= 0:
            raise ServingError("result_timeout must be > 0")
        self.num_shards = shards
        self.window_span = window_span
        self.use_prefilter = use_prefilter
        self.runner = runner
        self._tenant_key = tenant_key or default_tenant_key
        self._assign = assign or shard_for_tenant
        self._queue_depth = queue_depth
        self._start_method = start_method
        self._checkpoint_dir = (
            str(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self._checkpoint_every = checkpoint_every
        self._restart_budget = restart_budget
        self._restart_backoff = restart_backoff
        self._result_timeout = result_timeout
        self._faults = faults
        self._queries: list[BehaviorQuery] = []
        self._shard_stats = [ServiceStats() for _ in range(shards)]
        self._tenants: set[str] = set()
        self._routed_batches = 0
        self._routed_events = 0
        self._backpressure_waits = 0
        self._wall_seconds = 0.0
        self._started = False
        self._closed = False
        # fault-tolerance accounting
        self._epoch = uuid.uuid4().hex
        self._restarts = [0] * shards
        self._incarnations = [0] * shards
        self._force_killed = 0
        self._recovered_events = 0
        self._quarantined: dict[str, str] = {}
        self._quarantine_dropped = 0
        self._last_acked = -1
        # inline runner state
        self._states: list[_ShardState] = []
        # process runner state
        self._ctx = None
        self._blob = None
        self._procs: list = []
        self._in_queues: list = []
        # one result queue per shard, remade on every respawn: a worker
        # hard-killed mid-write (injected or real SIGKILL) can wedge its
        # channel's write lock forever, and a shared queue would spread
        # that to every surviving shard and its own replacement
        self._result_queues: list = []
        self._blob_handle = None
        self._next_seq = 0
        self._pending: dict[int, int] = {}
        self._collected: dict[int, list[FleetDetection]] = {}
        self._inflight: list[dict[tuple[int, str], list[SyscallEvent]]] = [
            {} for _ in range(shards)
        ]

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, query: BehaviorQuery) -> int:
        """Register one behavior query on every (future) tenant service.

        Returns the query's slate index — equal to the ``query_id`` each
        per-tenant service assigns, since all services register the same
        slate in the same order.
        """
        if self._started:
            raise ServingError(
                "register queries before the first ingest: process shards "
                "snapshot the slate at startup, and a late-registered wide "
                "query could not see already-evicted edges anyway"
            )
        if (
            self.window_span is not None
            and query.max_span > self.window_span
        ):
            raise ServingError(
                f"query {query.name!r} has max_span {query.max_span} wider than "
                f"the fleet window {self.window_span}; widen the window or "
                "shorten the query cap"
            )
        self._queries.append(query)
        return len(self._queries) - 1

    def register_all(self, queries: Sequence[BehaviorQuery]) -> list[int]:
        """Register a query batch (the model-bundle serving path)."""
        return [self.register(query) for query in queries]

    def reload(self, queries: Sequence[BehaviorQuery]) -> list[int]:
        """Hot-swap the query slate on every tenant window (inline only).

        Each open tenant service performs its own warmed
        :meth:`~repro.serving.service.DetectionService.reload`, so every
        tenant keeps its retained window; tenants first seen after the
        reload register the new slate from the start.  Process-runner
        fleets snapshot the slate in their workers at startup and do not
        support reload — restart the fleet (or run the HTTP tier over an
        inline fleet / single service) to swap models there.
        """
        if self.runner != "inline":
            raise ServingError(
                "hot reload is only supported on inline fleets; process "
                "workers snapshot the query slate at startup — restart the "
                "fleet to change models"
            )
        for query in queries:
            if self.window_span is not None and query.max_span > self.window_span:
                raise ServingError(
                    f"query {query.name!r} has max_span {query.max_span} wider "
                    f"than the fleet window {self.window_span}; widen the "
                    "window or shorten the query cap"
                )
        self._queries = list(queries)
        for state in self._states:
            state.reload(self._queries)
        return list(range(len(self._queries)))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bring shards up eagerly (idempotent).

        ``ingest`` starts the fleet lazily; calling this first lets
        benchmarks exclude process-spawn cost from timed sections and
        surfaces worker startup failures early.
        """
        if self._closed:
            raise ServingError("fleet is closed")
        if self._started:
            return
        self._started = True
        if self.runner == "inline":
            self._states = [
                _ShardState(
                    self._queries,
                    self.window_span,
                    self.use_prefilter,
                    shard_id=shard_id,
                    checkpoint_dir=self._shard_dir(shard_id),
                    checkpoint_every=self._checkpoint_every,
                    faults=self._faults,
                    epoch=self._epoch,
                )
                for shard_id in range(self.num_shards)
            ]
            for shard_id, state in enumerate(self._states):
                self._absorb_recovery(shard_id, state.recover_tenants())
            return
        self._ctx = multiprocessing.get_context(
            resolve_start_method(self._start_method)
        )
        payload = json.dumps(
            [query_to_dict(query) for query in self._queries]
        ).encode("utf-8")
        self._blob, self._blob_handle = publish_blob(payload)
        try:
            for shard_id in range(self.num_shards):
                self._in_queues.append(None)
                self._result_queues.append(None)
                self._procs.append(None)
                self._spawn(shard_id, incarnation=0)
            ready: set[int] = set()
            while len(ready) < self.num_shards:
                message = self._next_message(timeout=self._result_timeout)
                if message[0] == "ready":
                    ready.add(message[1])
                    self._absorb_recovery(message[1], message[3])
                else:
                    self._handle(message)
        except BaseException:
            self.close()
            raise

    def _shard_dir(self, shard_id: int) -> str | None:
        if self._checkpoint_dir is None:
            return None
        return str(Path(self._checkpoint_dir) / f"shard-{shard_id:02d}")

    def _spawn(self, shard_id: int, incarnation: int) -> None:
        """(Re)start one shard worker process on fresh channels."""
        in_queue = self._ctx.Queue(maxsize=self._queue_depth)
        result_queue = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(
                shard_id,
                in_queue,
                result_queue,
                self._blob,
                self.window_span,
                self.use_prefilter,
                self._shard_dir(shard_id),
                self._checkpoint_every,
                self._faults,
                incarnation,
                self._epoch,
            ),
            daemon=True,
        )
        proc.start()
        self._in_queues[shard_id] = in_queue
        self._result_queues[shard_id] = result_queue
        self._procs[shard_id] = proc
        self._incarnations[shard_id] = incarnation

    def _absorb_recovery(
        self,
        shard_id: int,
        recovered: Sequence[tuple[str, int, str, list[Detection], int]],
    ) -> None:
        """Fold a (re)started shard's replayed WAL tail into router state.

        Every replayed batch counts toward ``recovered_events``; batches
        from *this* router lifetime (matching epoch) that are still
        pending are answered in place — their detections were re-derived
        by the replay, so the submit completes without resubmission.
        """
        for tenant, seq, epoch, detections, num_events in recovered:
            self._recovered_events += num_events
            self._tenants.add(tenant)
            if epoch != self._epoch:
                continue
            key = (seq, tenant)
            if key in self._inflight[shard_id] and seq in self._pending:
                self._shard_stats[shard_id].add_delta({})
                self._collected[seq].extend(
                    FleetDetection(
                        tenant=tenant,
                        shard=shard_id,
                        query_id=d.query_id,
                        query=d.query,
                        start=d.start,
                        end=d.end,
                        batch=d.batch,
                    )
                    for d in detections
                )
                self._pending[seq] -= 1
                self._last_acked = max(self._last_acked, seq)
                del self._inflight[shard_id][key]

    def close(self) -> None:
        """Shut shard workers down and release the shared slate; idempotent.

        Checkpointed shards cut a final snapshot before exiting (workers
        on receipt of ``stop``, inline states right here).  A worker that
        outlives the join grace period is escalated ``terminate()`` →
        ``kill()`` and counted in ``FleetStats.force_killed`` — close
        never strands a wedged worker process.
        """
        if self._closed:
            return
        self._closed = True
        if self.runner == "inline" and self._started:
            for state in self._states:
                try:
                    state.checkpoint_all()
                except CheckpointError:  # pragma: no cover - disk full etc.
                    pass
                state.close()
        if self.runner == "process" and self._started:
            for in_queue in self._in_queues:
                if in_queue is None:
                    continue
                try:
                    in_queue.put(("stop",), timeout=5)
                except (_queue.Full, ValueError, OSError):
                    pass
            for proc in self._procs:
                if proc is None:
                    continue
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=5)
                if proc.is_alive():  # pragma: no cover - unkillable worker
                    proc.kill()
                    proc.join(timeout=5)
                    self._force_killed += 1
            for result_queue in self._result_queues:
                if result_queue is None:
                    continue
                try:
                    while True:
                        result_queue.get_nowait()
                except (_queue.Empty, OSError, ValueError):
                    pass
            queues = [q for q in self._in_queues if q is not None]
            queues.extend(q for q in self._result_queues if q is not None)
            for mpq in queues:
                mpq.close()
                mpq.cancel_join_thread()
        if self._blob_handle is not None:
            self._blob_handle.unlink()
            self._blob_handle = None

    def __enter__(self) -> "DetectionFleet":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, events: Sequence[SyscallEvent]) -> list[FleetDetection]:
        """Route one mixed batch to its tenants' shards; report detections.

        Synchronous: returns every detection this batch produced, sorted
        by ``(tenant, query_id, span)`` so inline and process runners
        emit identical lists.  Under the process runner the shards
        touched by the batch work concurrently.
        """
        if self._closed:
            raise ServingError("fleet is closed")
        self.start()
        started = _time.perf_counter()
        groups = self._group(events)
        seq = self._new_batch(groups)
        detections = self._await_batch(seq)
        self._routed_batches += 1
        self._routed_events += len(events)
        self._wall_seconds += _time.perf_counter() - started
        return detections

    def replay(
        self, events: Sequence[SyscallEvent], batch_size: int
    ) -> Iterator[tuple[int, list[FleetDetection]]]:
        """Feed a recorded mixed log through the fleet batch by batch.

        Under the process runner the replay is **pipelined**: up to
        ``queue_depth`` batches per shard are in flight at once, and each
        batch's detections are yielded — in batch order — as soon as all
        of its tenant groups complete.  The accumulated detections are
        identical to calling :meth:`ingest` per batch.
        """
        from repro.syscall.collector import iter_event_batches

        if self._closed:
            raise ServingError("fleet is closed")
        self.start()
        events = list(events)
        if self.runner == "inline":
            for index, batch in enumerate(iter_event_batches(events, batch_size)):
                yield index, self.ingest(batch)
            return
        seqs: list[int] = []
        emitted = 0
        for batch in iter_event_batches(events, batch_size):
            started = _time.perf_counter()
            seqs.append(self._new_batch(self._group(batch)))
            self._routed_batches += 1
            self._routed_events += len(batch)
            self._drain()
            self._wall_seconds += _time.perf_counter() - started
            while emitted < len(seqs) and not self._pending[seqs[emitted]]:
                yield emitted, self._finish_batch(seqs[emitted])
                emitted += 1
        while emitted < len(seqs):
            started = _time.perf_counter()
            while self._pending[seqs[emitted]]:
                self._handle(self._next_message(timeout=self._result_timeout))
            self._wall_seconds += _time.perf_counter() - started
            yield emitted, self._finish_batch(seqs[emitted])
            emitted += 1

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def stats(self) -> FleetStats:
        """Live fleet rollup (complete whenever no replay is mid-flight)."""
        return FleetStats(
            shards=tuple(self._shard_stats),
            tenants=len(self._tenants),
            queue_depth=self._queue_depth,
            routed_batches=self._routed_batches,
            routed_events=self._routed_events,
            backpressure_waits=self._backpressure_waits,
            wall_seconds=self._wall_seconds,
            restarts=sum(self._restarts),
            force_killed=self._force_killed,
            recovered_events=self._recovered_events,
            quarantined=tuple(sorted(self._quarantined)),
            quarantine_dropped=self._quarantine_dropped,
        )

    def health(self) -> dict:
        """Liveness/degradation rollup for the HTTP ``/healthz`` probe.

        ``status`` is ``"ok"`` when every shard is serving on its original
        worker and nothing is quarantined, ``"degraded"`` when any shard
        has been restarted, has exhausted its restart budget, is dead, or
        any tenant is quarantined.
        """
        shards = []
        degraded = False
        for shard_id in range(self.num_shards):
            if self.runner == "inline" or not self._started:
                alive = self._started and not self._closed
            else:
                proc = self._procs[shard_id]
                alive = proc is not None and proc.is_alive()
            budget_remaining = self._restart_budget - self._restarts[shard_id]
            entry = {
                "shard": shard_id,
                "alive": alive,
                "restarts": self._restarts[shard_id],
                "budget_remaining": budget_remaining,
                "inflight": len(self._inflight[shard_id]),
            }
            if (self._started and not self._closed and not alive
                    and self.runner == "process"):
                degraded = True
            if self._restarts[shard_id] > 0 or budget_remaining <= 0:
                degraded = True
            shards.append(entry)
        if self._quarantined:
            degraded = True
        return {
            "status": "degraded" if degraded else "ok",
            "shards": shards,
            "quarantined": sorted(self._quarantined),
            "restarts": sum(self._restarts),
            "recovered_events": self._recovered_events,
            "last_acked_seq": self._last_acked,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _group(self, events: Sequence[SyscallEvent]) -> dict[str, list[SyscallEvent]]:
        """Split a mixed batch into per-tenant groups, arrival order kept."""
        groups: dict[str, list[SyscallEvent]] = {}
        for event in events:
            groups.setdefault(str(self._tenant_key(event)), []).append(event)
        return groups

    def _new_batch(self, groups: dict[str, list[SyscallEvent]]) -> int:
        """Dispatch one batch's tenant groups; returns its sequence id."""
        seq = self._next_seq
        self._next_seq += 1
        self._pending[seq] = 0
        self._collected[seq] = []
        for tenant, tenant_events in groups.items():
            shard = self._assign(tenant, self.num_shards)
            if not 0 <= shard < self.num_shards:
                raise ServingError(
                    f"shard assignment for tenant {tenant!r} out of range: "
                    f"{shard} (fleet has {self.num_shards})"
                )
            if tenant in self._quarantined:
                self._quarantine_dropped += len(tenant_events)
                continue
            self._tenants.add(tenant)
            self._pending[seq] += 1
            if self.runner == "inline":
                try:
                    detections, delta, elapsed = self._states[shard].ingest(
                        tenant, tenant_events, seq=seq
                    )
                except CheckpointError:
                    # injected torn WAL write: with no worker process to
                    # die, the simulated crash surfaces to the caller
                    raise
                except ServingError as exc:
                    self._quarantine(tenant, str(exc), len(tenant_events))
                    self._pending[seq] -= 1
                    continue
                self._apply(shard, seq, tenant, detections, delta, elapsed)
            else:
                self._inflight[shard][(seq, tenant)] = list(tenant_events)
                self._put(shard, ("batch", seq, tenant, tenant_events))
        return seq

    def _await_batch(self, seq: int) -> list[FleetDetection]:
        """Block until one batch's groups all completed; return detections."""
        while self._pending[seq]:
            self._handle(self._next_message(timeout=self._result_timeout))
        return self._finish_batch(seq)

    def _finish_batch(self, seq: int) -> list[FleetDetection]:
        del self._pending[seq]
        detections = self._collected.pop(seq)
        detections.sort(key=lambda d: (d.tenant, d.query_id, d.start, d.end))
        return detections

    def _apply(
        self,
        shard: int,
        seq: int,
        tenant: str,
        detections: Sequence[Detection],
        delta: dict,
        elapsed: float,
    ) -> None:
        """Fold one completed tenant-group ingest into router state."""
        self._shard_stats[shard].add_delta(delta, batch_seconds=elapsed)
        self._collected[seq].extend(
            FleetDetection(
                tenant=tenant,
                shard=shard,
                query_id=d.query_id,
                query=d.query,
                start=d.start,
                end=d.end,
                batch=d.batch,
            )
            for d in detections
        )
        self._pending[seq] -= 1
        self._inflight[shard].pop((seq, tenant), None)
        self._last_acked = max(self._last_acked, seq)

    def _put(self, shard: int, item: tuple) -> None:
        """Bounded-queue submit: count the stall, then block politely.

        While blocked the router keeps draining finished results, so a
        full input queue can never deadlock against a full fleet.  The
        queue reference is re-read every round because supervision may
        have replaced it (worker restart swaps in a fresh queue).  A
        queue that stays full past ``result_timeout`` means the consumer
        is wedged, not just busy — the shard is treated exactly like a
        stalled result wait: hard-killed and restarted under supervision,
        or surfaced as a typed :class:`ShardTimeoutError`.
        """
        try:
            self._in_queues[shard].put_nowait(item)
            return
        except _queue.Full:
            self._backpressure_waits += 1
        deadline = _time.perf_counter() + self._result_timeout
        while True:
            self._drain()
            try:
                self._in_queues[shard].put(item, timeout=0.05)
                return
            except _queue.Full:
                self._check_workers()
                if _time.perf_counter() > deadline:
                    self._restart_stalled(
                        [shard],
                        f"input queue full for {self._result_timeout:.0f}s",
                    )
                    deadline = _time.perf_counter() + self._result_timeout

    def _drain(self) -> None:
        """Absorb every already-available worker message (non-blocking)."""
        # snapshot: _handle can recurse into supervision, which swaps a
        # shard's queue out from under the loop mid-iteration
        for result_queue in list(self._result_queues):
            if result_queue is None:
                continue
            while True:
                try:
                    message = result_queue.get_nowait()
                except (_queue.Empty, OSError, ValueError):
                    break
                self._handle(message)

    def _poll_results(self, timeout: float) -> tuple | None:
        """One bounded multiplexed receive across the per-shard queues.

        Returns the first available message, or ``None`` after
        ``timeout`` seconds with every queue idle.
        """
        readers = {}
        for result_queue in self._result_queues:
            if result_queue is not None:
                readers[result_queue._reader] = result_queue
        if not readers:
            return None
        for conn in _mp_connection.wait(list(readers), timeout=timeout):
            try:
                return readers[conn].get_nowait()
            except (_queue.Empty, OSError, ValueError):
                continue
        return None

    def _next_message(self, timeout: float) -> tuple:
        """Blocking receive with worker-liveness checks (no silent hangs).

        A deadline pass means some shard sat on work for ``timeout``
        seconds: under supervision the stalled shards are hard-killed and
        restarted (replaying their checkpoints); otherwise a typed
        :class:`~repro.core.errors.ShardTimeoutError` surfaces the stall
        with the shard id and the last acknowledged submit seq.
        """
        deadline = _time.perf_counter() + timeout
        while True:
            message = self._poll_results(timeout=0.25)
            if message is not None:
                return message
            self._check_workers()
            if _time.perf_counter() > deadline:
                stalled = [
                    shard_id
                    for shard_id in range(self.num_shards)
                    if self._inflight[shard_id]
                ]
                self._restart_stalled(stalled, f"stalled for {timeout:.0f}s")
                deadline = _time.perf_counter() + timeout

    def _restart_stalled(self, stalled: list[int], reason: str) -> None:
        """Hard-kill and resupervise wedged shards, or raise if we can't.

        Shared stall escalation for both wait paths (result wait in
        :meth:`_next_message`, full-queue wait in :meth:`_put`).  Shards
        with restart budget left are SIGKILLed (counted in
        ``force_killed``) and handed to :meth:`_supervise`; with no
        recoverable shard the stall is permanent and surfaces as a typed
        :class:`~repro.core.errors.ShardTimeoutError`.
        """
        recoverable = [
            shard_id
            for shard_id in stalled
            if self._restarts[shard_id] < self._restart_budget
        ]
        if recoverable:
            for shard_id in recoverable:
                proc = self._procs[shard_id]
                if proc is not None and proc.is_alive():
                    proc.kill()
                    proc.join(timeout=5)
                    self._force_killed += 1
                self._supervise(shard_id, reason)
            return
        raise ShardTimeoutError(
            f"fleet shard(s) {reason} "
            f"(stalled shards: {stalled or 'unknown'}, "
            f"last acked seq: {self._last_acked})",
            shard=stalled[0] if stalled else None,
            last_acked_seq=self._last_acked,
        ) from None

    def _check_workers(self) -> None:
        for shard_id, proc in enumerate(self._procs):
            if (
                proc is not None
                and not proc.is_alive()
                and proc.exitcode not in (0, None)
            ):
                self._supervise(
                    shard_id, f"worker died with exit code {proc.exitcode}"
                )

    def _supervise(self, shard_id: int, reason: str) -> None:
        """Restart one dead/stalled shard and make its work whole again.

        Retires the dead worker's result queue unread (a SIGKILL mid-ack
        can leave it wedged or holding a torn frame; every batch the ack
        would have settled is re-derived by the checkpoint replay or
        resubmitted), drains the surviving shards' queues, charges the
        shard's restart budget with exponential backoff, respawns the
        worker under the next incarnation (so incarnation-scoped fault
        rules don't re-fire), waits for its ``ready`` — whose checkpoint
        replay answers every still-pending batch that had reached the
        WAL — and resubmits the rest in submit order.  With the budget
        exhausted the failure is permanent and raises.
        """
        self._procs[shard_id] = None  # don't re-detect this corpse
        dead_queue = self._result_queues[shard_id]
        if dead_queue is not None:
            self._result_queues[shard_id] = None
            dead_queue.close()
            dead_queue.cancel_join_thread()
        self._drain()
        if self._restarts[shard_id] >= self._restart_budget:
            raise ServingError(
                f"shard {shard_id} {reason}; restart budget "
                f"({self._restart_budget}) exhausted"
            )
        self._restarts[shard_id] += 1
        delay = min(
            self._restart_backoff * (2 ** (self._restarts[shard_id] - 1)),
            _RESTART_BACKOFF_CAP,
        )
        if delay > 0:
            _time.sleep(delay)
        old_queue = self._in_queues[shard_id]
        if old_queue is not None:
            old_queue.close()
            old_queue.cancel_join_thread()
            self._in_queues[shard_id] = None
        self._spawn(shard_id, incarnation=self._incarnations[shard_id] + 1)
        deadline = _time.perf_counter() + self._result_timeout
        while True:
            message = self._poll_results(timeout=0.25)
            if message is None:
                proc = self._procs[shard_id]
                if proc is not None and not proc.is_alive():
                    self._supervise(shard_id, "died again during restart")
                    return
                if _time.perf_counter() > deadline:
                    raise ServingError(
                        f"shard {shard_id} restart timed out after "
                        f"{self._result_timeout:.0f}s waiting for recovery"
                    ) from None
                continue
            if message[0] == "ready" and message[1] == shard_id:
                self._absorb_recovery(shard_id, message[3])
                break
            self._handle(message)
        # snapshot the keys: _put drains results (and may recurse into
        # supervision), either of which can settle entries mid-loop
        for key in sorted(self._inflight[shard_id]):
            seq, tenant = key
            events = self._inflight[shard_id].get(key)
            if events is None or seq not in self._pending:
                continue
            self._put(shard_id, ("batch", seq, tenant, events))

    def _handle(self, message: tuple) -> None:
        kind = message[0]
        if kind == "ok":
            _, shard, seq, tenant, detections, delta, elapsed = message
            self._apply(shard, seq, tenant, detections, delta, elapsed)
        elif kind == "quarantined":
            _, shard, seq, tenant, num_events, text = message
            self._quarantine(tenant, text, num_events)
            self._inflight[shard].pop((seq, tenant), None)
            if seq is not None and seq in self._pending:
                self._pending[seq] -= 1
                self._last_acked = max(self._last_acked, seq)
        elif kind == "error":
            _, shard, seq, text = message
            if seq is not None and seq in self._pending:
                self._pending[seq] -= 1
            raise ServingError(f"shard {shard} ingest failed:\n{text}")
        elif kind == "ready":
            pass  # late duplicate; startup already consumed the real one
        else:  # pragma: no cover - protocol bug guard
            raise ServingError(f"unknown shard message {kind!r}")

    def _quarantine(self, tenant: str, reason: str, num_events: int) -> None:
        """Fence a tenant whose batch poisoned its service.

        The tenant's service stops receiving traffic (later events are
        dropped at routing and counted in ``quarantine_dropped``); the
        shard and every other tenant on it keep serving.
        """
        if tenant not in self._quarantined:
            self._quarantined[tenant] = reason.strip().splitlines()[-1][:500]
        self._quarantine_dropped += num_events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DetectionFleet(shards={self.num_shards}, runner={self.runner!r}, "
            f"tenants={len(self._tenants)}, queries={len(self._queries)})"
        )
