"""Streaming behavior-detection serving layer.

The paper's end product — discriminative behavior queries — is meant to
run *continuously* against live monitoring data.  This package is the
serving half of that deployment:

* :mod:`repro.serving.streaming` — :class:`StreamingGraph`, a temporal
  graph that ingests syscall events incrementally under a sliding
  time-window eviction policy, maintaining the one-edge label-pair index
  and the label signature online;
* :mod:`repro.serving.registry` — :class:`QueryRegistry`, many registered
  behavior queries grouped by shared signature prefixes so one prefilter
  pass over the window signature answers every impossible query at once;
* :mod:`repro.serving.service` — :class:`DetectionService`, the facade
  tying both together: ``ingest(events) -> list[Detection]``, evaluating
  surviving queries incrementally against only the newly-ingested delta;
* :mod:`repro.serving.fleet` — :class:`DetectionFleet`, the multi-tenant
  tier: events routed by tenant key across N shards of per-tenant
  services (inline or one worker process per shard), with bounded
  queues, backpressure accounting, and a :class:`FleetStats` rollup;
* :mod:`repro.serving.model_registry` — :class:`ModelRegistry`, a
  versioned on-disk store of deployable ``.tgm`` bundles with a
  candidate → active → retired promotion state machine;
* :mod:`repro.serving.http` — :class:`DetectionServer` /
  :func:`serve_http`, the stdlib HTTP tier exposing ingest, stats,
  registry management, hot reload, and canary promotion over ``/v1/*``.

Batch and streaming share one matching core
(:func:`repro.core.graph_index.find_matches`): the batch
:class:`~repro.query.engine.QueryEngine` is "ingest everything, then
flush" over the same join.

Every deployment shares one caller surface — the
:class:`~repro.serving.contracts.Ingestor` protocol and the versioned
stats schema, both defined in :mod:`repro.serving.contracts` and
re-exported from :mod:`repro.api` (the canonical import path).
``Workspace.serve``, the CLI handlers, the HTTP tier, and the serving
benchmarks are written against it, so swapping a one-host service for a
sharded fleet is a constructor change, not a rewrite.
"""

from repro.serving.checkpoint import (
    DEFAULT_CHECKPOINT_EVERY,
    CheckpointedService,
    CheckpointStore,
    RecoveredService,
    recover_service,
)
from repro.serving.contracts import (
    STATS_SCHEMA_KEYS,
    STATS_SCHEMA_VERSION,
    Ingestor,
    ServingHandle,
    StatsView,
    stats_from_dict,
)
from repro.serving.fleet import (
    DEFAULT_TENANT,
    TENANT_SEPARATOR,
    DetectionFleet,
    FleetDetection,
    FleetStats,
    default_tenant_key,
    interleave_streams,
    shard_for_tenant,
    simulate_tenant_streams,
    tag_tenant_events,
    tenant_key_for_separator,
)
from repro.serving.registry import (
    BehaviorQuery,
    QueryRegistry,
    load_queries_jsonl,
    save_queries_jsonl,
)
from repro.serving.http import DetectionServer, HttpServingHandle, serve_http
from repro.serving.model_registry import ModelRegistry, RegistryEntry
from repro.serving.service import (
    Detection,
    DetectionService,
    LatencyReservoir,
    ServiceStats,
    merged_latency_percentile,
)
from repro.serving.streaming import IngestDelta, StreamingGraph, StreamStats

__all__ = [
    "BehaviorQuery",
    "CheckpointStore",
    "CheckpointedService",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_TENANT",
    "Detection",
    "DetectionFleet",
    "DetectionServer",
    "DetectionService",
    "FleetDetection",
    "FleetStats",
    "HttpServingHandle",
    "IngestDelta",
    "Ingestor",
    "LatencyReservoir",
    "ModelRegistry",
    "QueryRegistry",
    "RecoveredService",
    "RegistryEntry",
    "STATS_SCHEMA_KEYS",
    "STATS_SCHEMA_VERSION",
    "ServiceStats",
    "ServingHandle",
    "StatsView",
    "StreamingGraph",
    "StreamStats",
    "TENANT_SEPARATOR",
    "default_tenant_key",
    "interleave_streams",
    "load_queries_jsonl",
    "merged_latency_percentile",
    "recover_service",
    "save_queries_jsonl",
    "serve_http",
    "shard_for_tenant",
    "simulate_tenant_streams",
    "stats_from_dict",
    "tag_tenant_events",
    "tenant_key_for_separator",
]
