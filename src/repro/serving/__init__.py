"""Streaming behavior-detection serving layer.

The paper's end product — discriminative behavior queries — is meant to
run *continuously* against live monitoring data.  This package is the
serving half of that deployment:

* :mod:`repro.serving.streaming` — :class:`StreamingGraph`, a temporal
  graph that ingests syscall events incrementally under a sliding
  time-window eviction policy, maintaining the one-edge label-pair index
  and the label signature online;
* :mod:`repro.serving.registry` — :class:`QueryRegistry`, many registered
  behavior queries grouped by shared signature prefixes so one prefilter
  pass over the window signature answers every impossible query at once;
* :mod:`repro.serving.service` — :class:`DetectionService`, the facade
  tying both together: ``ingest(events) -> list[Detection]``, evaluating
  surviving queries incrementally against only the newly-ingested delta;
* :mod:`repro.serving.fleet` — :class:`DetectionFleet`, the multi-tenant
  tier: events routed by tenant key across N shards of per-tenant
  services (inline or one worker process per shard), with bounded
  queues, backpressure accounting, and a :class:`FleetStats` rollup.

Batch and streaming share one matching core
(:func:`repro.core.graph_index.find_matches`): the batch
:class:`~repro.query.engine.QueryEngine` is "ingest everything, then
flush" over the same join.

Single service and fleet share one caller surface — the
:class:`Ingestor` protocol below.  ``Workspace.serve``, the CLI
``detect``/``serve`` handlers, and the serving benchmarks are written
against it, so swapping a one-host service for a sharded fleet is a
constructor change, not a rewrite.
"""

from typing import Iterator, Protocol, Sequence, runtime_checkable

from repro.serving.fleet import (
    DEFAULT_TENANT,
    TENANT_SEPARATOR,
    DetectionFleet,
    FleetDetection,
    FleetStats,
    default_tenant_key,
    interleave_streams,
    shard_for_tenant,
    simulate_tenant_streams,
    tag_tenant_events,
    tenant_key_for_separator,
)
from repro.serving.registry import (
    BehaviorQuery,
    QueryRegistry,
    load_queries_jsonl,
    save_queries_jsonl,
)
from repro.serving.service import (
    STATS_SCHEMA_KEYS,
    Detection,
    DetectionService,
    LatencyReservoir,
    ServiceStats,
    merged_latency_percentile,
)
from repro.serving.streaming import IngestDelta, StreamingGraph, StreamStats
from repro.syscall.events import SyscallEvent


@runtime_checkable
class Ingestor(Protocol):
    """The one ingest surface every detection deployment speaks.

    :class:`DetectionService` (one host, one window) and
    :class:`DetectionFleet` (many tenants, sharded) both satisfy it.
    Implementations differ in what their methods *return* — a service
    reports :class:`Detection`, a fleet :class:`FleetDetection` (which
    adds tenant/shard attribution) — but the shapes line up: detections
    expose ``query``/``span``, and ``stats`` exposes ``as_dict()``
    emitting the shared :data:`~repro.serving.service.STATS_SCHEMA_KEYS`
    schema.  Code written against this protocol (``Workspace.serve``,
    the CLI handlers, ``bench_serving.py``) runs against either.

    Lifecycle: ``register_all`` every query first, then ``ingest`` /
    ``replay`` freely, and ``close()`` when done (a no-op for in-process
    deployments, a worker shutdown for process fleets).
    """

    def register_all(self, queries: Sequence[BehaviorQuery]) -> list[int]:
        """Register the query slate; returns the assigned query ids."""
        ...

    def ingest(self, events: Sequence[SyscallEvent]) -> list:
        """Ingest one event batch; return newly identified instances."""
        ...

    def replay(
        self, events: Sequence[SyscallEvent], batch_size: int
    ) -> Iterator[tuple[int, list]]:
        """Feed a recorded log through ingest, yielding per-batch results."""
        ...

    @property
    def stats(self):
        """Current ingest statistics (``.as_dict()`` → shared schema)."""
        ...

    def close(self) -> None:
        """Release any held resources; idempotent."""
        ...


__all__ = [
    "BehaviorQuery",
    "DEFAULT_TENANT",
    "Detection",
    "DetectionFleet",
    "DetectionService",
    "FleetDetection",
    "FleetStats",
    "IngestDelta",
    "Ingestor",
    "LatencyReservoir",
    "QueryRegistry",
    "STATS_SCHEMA_KEYS",
    "ServiceStats",
    "StreamingGraph",
    "StreamStats",
    "TENANT_SEPARATOR",
    "default_tenant_key",
    "interleave_streams",
    "load_queries_jsonl",
    "merged_latency_percentile",
    "save_queries_jsonl",
    "shard_for_tenant",
    "simulate_tenant_streams",
    "tag_tenant_events",
    "tenant_key_for_separator",
]
