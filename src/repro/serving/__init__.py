"""Streaming behavior-detection serving layer.

The paper's end product — discriminative behavior queries — is meant to
run *continuously* against live monitoring data.  This package is the
serving half of that deployment:

* :mod:`repro.serving.streaming` — :class:`StreamingGraph`, a temporal
  graph that ingests syscall events incrementally under a sliding
  time-window eviction policy, maintaining the one-edge label-pair index
  and the label signature online;
* :mod:`repro.serving.registry` — :class:`QueryRegistry`, many registered
  behavior queries grouped by shared signature prefixes so one prefilter
  pass over the window signature answers every impossible query at once;
* :mod:`repro.serving.service` — :class:`DetectionService`, the facade
  tying both together: ``ingest(events) -> list[Detection]``, evaluating
  surviving queries incrementally against only the newly-ingested delta.

Batch and streaming share one matching core
(:func:`repro.core.graph_index.find_matches`): the batch
:class:`~repro.query.engine.QueryEngine` is "ingest everything, then
flush" over the same join.
"""

from repro.serving.registry import (
    BehaviorQuery,
    QueryRegistry,
    load_queries_jsonl,
    save_queries_jsonl,
)
from repro.serving.service import Detection, DetectionService
from repro.serving.streaming import IngestDelta, StreamingGraph, StreamStats

__all__ = [
    "BehaviorQuery",
    "Detection",
    "DetectionService",
    "IngestDelta",
    "QueryRegistry",
    "StreamingGraph",
    "StreamStats",
    "load_queries_jsonl",
    "save_queries_jsonl",
]
