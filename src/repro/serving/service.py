"""The streaming detection service facade.

:class:`DetectionService` ties the live window
(:class:`~repro.serving.streaming.StreamingGraph`) to the query side
(:class:`~repro.serving.registry.QueryRegistry`): every
:meth:`~DetectionService.ingest` call appends one event batch, runs the
registry's one-pass signature prefilter against the window's online
signature, and evaluates only the surviving queries — and only against
the newly-ingested delta.  Incrementality comes from the shared matching
core (:func:`repro.core.graph_index.find_matches`):

* ``min_last_index`` pins every reported match's *last* edge into the
  batch delta, so matches already reported by earlier batches are never
  re-enumerated;
* ``start_index`` starts the join at the earliest edge that could open
  an in-cap match ending in the delta (``delta_min_time - max_span``),
  so per-batch work scales with the query's span, not the window size;
* the join itself runs on the kernel fast path: the window's flat
  ``(src, dst, time)`` edge columns, maintained incrementally by
  :meth:`StreamingGraph.edge_arrays` across ingest and eviction, are
  scanned instead of per-edge objects (see :mod:`repro.core.kernel`).

Detections are deduplicated by ``(query, span)``, matching the batch
engine's span semantics: accumulating the detections of a replayed log
yields exactly the span set ``QueryEngine.search_temporal`` reports on
the frozen whole — the equivalence `tests/test_serving.py` asserts.
(The guarantee assumes match counts stay under
:data:`~repro.core.graph_index.DEFAULT_MATCH_LIMIT` per batch; see
:meth:`DetectionService._new_spans`.)
"""

from __future__ import annotations

import math
import random
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.faults import FaultPlan

from repro.core.errors import ServingError
from repro.core.graph_index import DEFAULT_MATCH_LIMIT, find_matches, match_span
from repro.core.pattern import TemporalPattern
from repro.serving.contracts import STATS_SCHEMA_KEYS, STATS_SCHEMA_VERSION
from repro.serving.registry import BehaviorQuery, QueryRegistry
from repro.serving.streaming import StreamingGraph
from repro.syscall.events import SyscallEvent

__all__ = [
    "Detection",
    "DetectionService",
    "LatencyReservoir",
    "ServiceStats",
    "STATS_SCHEMA_KEYS",
    "merged_latency_percentile",
]

Span = tuple[int, int]

#: Default latency-reservoir size.  4096 samples keep the nearest-rank
#: p95/p99 within a fraction of a rank percentile of the exact answer
#: (see :class:`LatencyReservoir`) at ~32 KiB per service, forever.
DEFAULT_LATENCY_CAPACITY = 4096


class LatencyReservoir:
    """Bounded per-batch latency sample with exact count/total/max.

    ``ServiceStats`` used to keep *every* per-batch ingest duration in an
    unbounded list — a real leak for a service ingesting for weeks.  This
    reservoir caps memory at ``capacity`` samples via Vitter's Algorithm
    R (each of the ``count`` observations ends up in the kept sample with
    equal probability ``capacity / count``), while the aggregates that
    must stay exact — observation count, total seconds (throughput
    denominator), and maximum — are tracked outside the sample.

    **Percentile error.**  :meth:`percentile` is exact until ``count``
    exceeds ``capacity``.  Beyond that it is the nearest-rank percentile
    of a uniform random sample of size ``k = capacity``: the estimated
    quantile's *rank* error has standard deviation ``sqrt(q*(1-q)/k)`` —
    at the default 4096 samples that is ~0.34 rank percentiles for p95
    and ~0.16 for p99 — so the reported value is a true per-batch latency
    from within a whisker of the requested rank.  The replacement RNG is
    seeded per reservoir, keeping replays deterministic.
    """

    __slots__ = ("capacity", "count", "total", "max", "_samples", "_rng")

    def __init__(self, capacity: int = DEFAULT_LATENCY_CAPACITY) -> None:
        if capacity < 1:
            raise ServingError("latency reservoir capacity must be >= 1")
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._samples: list[float] = []
        self._rng = random.Random(0xB10C)

    def add(self, seconds: float) -> None:
        """Record one observation (Algorithm R replacement once full)."""
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        if len(self._samples) < self.capacity:
            self._samples.append(seconds)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self._samples[slot] = seconds

    @property
    def kept(self) -> int:
        """Number of samples currently held (``min(count, capacity)``)."""
        return len(self._samples)

    @property
    def samples(self) -> tuple[float, ...]:
        """The kept sample, ingest order (for cross-reservoir rollups)."""
        return tuple(self._samples)

    def percentile(self, quantile: float) -> float:
        """Nearest-rank percentile of the kept sample, in seconds."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, max(0, math.ceil(len(ordered) * quantile) - 1))
        return ordered[index]


def merged_latency_percentile(
    reservoirs: Iterable[LatencyReservoir], quantile: float
) -> float:
    """Nearest-rank percentile across several reservoirs, count-weighted.

    Each reservoir's kept samples stand in for ``count`` observations, so
    a sample from a busier shard carries proportionally more weight —
    without this, a nearly idle shard's handful of batches would drag the
    fleet-level tail toward its own distribution.  With every reservoir
    under capacity the weights are all 1 and the result is exactly the
    nearest-rank percentile of the concatenated samples.
    """
    weighted: list[tuple[float, float]] = []
    total = 0
    for reservoir in reservoirs:
        if not reservoir.kept:
            continue
        weight = reservoir.count / reservoir.kept
        total += reservoir.count
        weighted.extend((value, weight) for value in reservoir.samples)
    if not weighted:
        return 0.0
    weighted.sort()
    rank = max(1, math.ceil(total * quantile))
    cumulative = 0.0
    for value, weight in weighted:
        cumulative += weight
        if cumulative >= rank - 1e-9:
            return value
    return weighted[-1][0]


@dataclass(frozen=True)
class Detection:
    """One identified behavior instance reported by the service."""

    query_id: int
    query: str
    start: int
    end: int
    batch: int

    @property
    def span(self) -> Span:
        """The identified time interval, the unit of deduplication."""
        return (self.start, self.end)


@dataclass
class ServiceStats:
    """Serving-side counters: throughput, latency, prefilter + window effect.

    Per-batch ingest latency lives in a bounded :class:`LatencyReservoir`
    (``latency``) instead of an unbounded list; ``evicted`` /
    ``late_dropped`` / ``reinserted`` mirror the window's lifetime
    counters so one object — and one :meth:`as_dict` schema — describes a
    service completely.
    """

    batches: int = 0
    events: int = 0
    detections: int = 0
    queries_evaluated: int = 0
    queries_prefiltered: int = 0
    matching_seconds: float = 0.0
    evicted: int = 0
    late_dropped: int = 0
    reinserted: int = 0
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)

    @property
    def total_seconds(self) -> float:
        """Wall-clock spent inside :meth:`DetectionService.ingest`."""
        return self.latency.total

    @property
    def events_per_second(self) -> float:
        """Sustained ingest throughput over all batches."""
        total = self.total_seconds
        return self.events / total if total > 0 else 0.0

    def record_batch(self, seconds: float) -> None:
        """Record one ingest call's wall-clock duration."""
        self.latency.add(seconds)

    def latency_percentile(self, quantile: float) -> float:
        """Nearest-rank percentile of per-batch ingest latency, in seconds.

        The single definition the CLI report and the serving benchmark
        both read, so the gated ``latency_p95_ms`` and the operator-facing
        number can never drift apart.  Exact up to the reservoir capacity,
        then within the documented sampling error (see
        :class:`LatencyReservoir`).
        """
        return self.latency.percentile(quantile)

    def counters(self) -> dict:
        """The additive counters, as a plain dict.

        Everything here merges by plain addition — the currency the fleet
        uses to roll per-batch deltas from shard workers into parent-side
        shard stats (:meth:`add_delta`).  Latency samples are *not*
        counters; they travel separately, one per ingest call.
        """
        return {
            "batches": self.batches,
            "events": self.events,
            "detections": self.detections,
            "queries_evaluated": self.queries_evaluated,
            "queries_prefiltered": self.queries_prefiltered,
            "matching_seconds": self.matching_seconds,
            "evicted": self.evicted,
            "late_dropped": self.late_dropped,
            "reinserted": self.reinserted,
        }

    def add_delta(self, delta: dict, batch_seconds: float | None = None) -> None:
        """Fold one :meth:`counters` delta (and its latency sample) in."""
        for key, value in delta.items():
            setattr(self, key, getattr(self, key) + value)
        if batch_seconds is not None:
            self.latency.add(batch_seconds)

    def as_dict(self) -> dict:
        """JSON-compatible stats snapshot (:data:`STATS_SCHEMA_KEYS`)."""
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "kind": "service",
            "batches": self.batches,
            "events": self.events,
            "detections": self.detections,
            "queries_evaluated": self.queries_evaluated,
            "queries_prefiltered": self.queries_prefiltered,
            "matching_seconds": self.matching_seconds,
            "total_seconds": self.total_seconds,
            "events_per_second": self.events_per_second,
            "evicted": self.evicted,
            "late_dropped": self.late_dropped,
            "reinserted": self.reinserted,
            "latency_ms": {
                "p50": self.latency_percentile(0.5) * 1000,
                "p95": self.latency_percentile(0.95) * 1000,
                "p99": self.latency_percentile(0.99) * 1000,
                "max": self.latency.max * 1000,
            },
            "latency_samples": {
                "observed": self.latency.count,
                "kept": self.latency.kept,
                "capacity": self.latency.capacity,
            },
        }


class DetectionService:
    """Continuous behavior detection over an event stream.

    Parameters
    ----------
    window_span:
        Sliding-window width.  ``None`` (default) sizes the window
        automatically to the widest registered query span — the smallest
        window that keeps streaming detections span-identical to the
        batch engine.  An explicit window must cover every registered
        query's ``max_span``.
    use_prefilter:
        Toggle the registry's shared signature prefilter (detections are
        identical either way; only impossible-query passes get slower).
    faults / fault_scope:
        Optional deterministic fault injection
        (:class:`~repro.core.faults.FaultPlan`): the ``service.slow_batch``
        and ``service.poison`` sites fire inside :meth:`ingest`.
        ``fault_scope`` narrows the plan's rules (e.g.
        ``{"shard": 1, "tenant": "acme"}`` inside a fleet worker).
    """

    def __init__(
        self,
        window_span: int | None = None,
        use_prefilter: bool = True,
        faults: "FaultPlan | None" = None,
        fault_scope: dict | None = None,
    ) -> None:
        self.registry = QueryRegistry()
        self.graph = StreamingGraph()
        self.use_prefilter = use_prefilter
        self.stats = ServiceStats()
        self.reloads = 0
        self.faults = faults
        self.fault_scope = fault_scope or {}
        self._explicit_window = window_span
        self._seen: dict[int, set[Span]] = {}

    @classmethod
    def recover(
        cls,
        directory,
        *,
        queries: "Sequence[BehaviorQuery] | None" = None,
        window_span: int | None = None,
        use_prefilter: bool = True,
    ) -> "DetectionService":
        """Rebuild a service from a checkpoint directory.

        Restores the newest valid snapshot and replays the WAL tail; the
        result is span-identical at every batch boundary to a service
        that never crashed (see :mod:`repro.serving.checkpoint`).  The
        keyword arguments only matter when the directory holds no usable
        snapshot (a crash before the first checkpoint): they configure
        the fresh service the genesis WAL is replayed into.
        """
        from repro.serving.checkpoint import recover_service

        return recover_service(
            directory,
            queries=queries,
            window_span=window_span,
            use_prefilter=use_prefilter,
        ).service

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(
        self,
        query: BehaviorQuery | None = None,
        *,
        name: str | None = None,
        pattern: TemporalPattern | None = None,
        max_span: int | None = None,
    ) -> int:
        """Register a behavior query (object or ``name/pattern/max_span``).

        Register all queries before the first :meth:`ingest` for strict
        batch equivalence: widening the window mid-stream cannot bring
        already-evicted edges back, so a late-registered wide query may
        miss matches that straddle the registration point.
        """
        if query is None:
            if name is None or pattern is None or max_span is None:
                raise ServingError(
                    "register() needs a BehaviorQuery or name+pattern+max_span"
                )
            query = BehaviorQuery(name=name, pattern=pattern, max_span=max_span)
        if (
            self._explicit_window is not None
            and query.max_span > self._explicit_window
        ):
            raise ServingError(
                f"query {query.name!r} has max_span {query.max_span} wider than "
                f"the service window {self._explicit_window}; its matches would "
                "straddle evictions — widen the window or shorten the query cap"
            )
        query_id = self.registry.register(query)
        self._seen[query_id] = set()
        return query_id

    def register_all(self, queries: Sequence[BehaviorQuery]) -> list[int]:
        """Register a query batch (the model-bundle serving path)."""
        return [self.register(query) for query in queries]

    @property
    def window_span(self) -> int | None:
        """The effective eviction window (``None`` with nothing registered)."""
        if self._explicit_window is not None:
            return self._explicit_window
        return self.registry.max_span if len(self.registry) else None

    def reload(self, queries: Sequence[BehaviorQuery]) -> list[int]:
        """Swap the query slate in-place **without dropping the window**.

        The new slate replaces the old one atomically from the caller's
        point of view: the new registry and its dedup state are built and
        *warmed* off to the side, then swapped in between ingests (the
        HTTP tier additionally holds its ingest lock across this call so
        no batch can interleave).  The live :class:`StreamingGraph` —
        the retained sliding window — is untouched.

        Warming evaluates every new query once against the retained
        window and marks all fully-live matches as already reported,
        exactly the dedup state a service that had served the new slate
        all along would hold for the retained span.  Together with the
        delta-only join (``min_last_index`` pins every post-reload match
        into post-reload batches) this yields the **window retention
        property**: detections after the reload are span-identical to a
        fresh service that served the new model over the whole log,
        compared from the same batch boundary — even when out-of-order
        batches reinsert pre-reload edges (pinned by
        ``tests/test_hot_reload.py``).  An actually-cold restart (empty
        window) would miss every match straddling the boundary.

        Caveats, both inherited from registration semantics: an explicit
        window must still cover every new query's ``max_span`` (checked
        before anything is swapped), and with an auto-sized window a new
        slate *wider* than the old one cannot resurrect already-evicted
        edges — the wider window only applies going forward.
        """
        for query in queries:
            if (
                self._explicit_window is not None
                and query.max_span > self._explicit_window
            ):
                raise ServingError(
                    f"query {query.name!r} has max_span {query.max_span} wider "
                    f"than the service window {self._explicit_window}; its "
                    "matches would straddle evictions — widen the window or "
                    "shorten the query cap"
                )
        registry = QueryRegistry()
        seen: dict[int, set[Span]] = {}
        ids: list[int] = []
        for query in queries:
            query_id = registry.register(query)
            seen[query_id] = set()
            ids.append(query_id)
        if self.graph.num_edges:
            start_index = self.graph.first_live_index
            for query_id, query in registry:
                seen[query_id] = {
                    match_span(match, self.graph)
                    for match in find_matches(
                        query.pattern,
                        self.graph,
                        max_span=query.max_span,
                        limit=DEFAULT_MATCH_LIMIT,
                        start_index=start_index,
                        min_last_index=start_index,
                    )
                }
        self.registry = registry
        self._seen = seen
        self.reloads += 1
        return ids

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, events: Sequence[SyscallEvent]) -> list[Detection]:
        """Append one event batch and report newly identified instances."""
        started = _time.perf_counter()
        if self.faults is not None:
            self.faults.maybe_sleep("service.slow_batch", **self.fault_scope)
            if self.faults.fire("service.poison", **self.fault_scope):
                raise ServingError(
                    "injected fault at service.poison: poisoned batch"
                )
        self.graph.window_span = self.window_span
        delta = self.graph.ingest(events)
        self.stats.events += delta.appended - delta.reinserted
        self.stats.evicted += delta.evicted
        self.stats.late_dropped += delta.late
        self.stats.reinserted += delta.reinserted
        batch_index = self.stats.batches
        self.stats.batches += 1
        if delta.empty:
            self.stats.record_batch(_time.perf_counter() - started)
            return []

        if self.use_prefilter:
            survivors = self.registry.survivors(self.graph.signature())
        else:
            survivors = list(self.registry)
        self.stats.queries_prefiltered += len(self.registry) - len(survivors)
        self.stats.queries_evaluated += len(survivors)

        detections: list[Detection] = []
        match_started = _time.perf_counter()
        for query_id, query in survivors:
            spans = self._new_spans(query, delta.start_index, delta.min_time)
            seen = self._seen[query_id]
            for span in spans:
                if span not in seen:
                    seen.add(span)
                    detections.append(
                        Detection(query_id, query.name, span[0], span[1], batch_index)
                    )
        self.stats.matching_seconds += _time.perf_counter() - match_started
        self.stats.detections += len(detections)
        if delta.evicted:
            # the prune threshold (oldest live time) only moves on eviction
            self._prune_seen()
        self.stats.record_batch(_time.perf_counter() - started)
        return detections

    def replay(
        self, events: Sequence[SyscallEvent], batch_size: int
    ) -> Iterator[tuple[int, list[Detection]]]:
        """Feed a recorded log through :meth:`ingest` batch by batch."""
        from repro.syscall.collector import iter_event_batches

        for index, batch in enumerate(iter_event_batches(events, batch_size)):
            yield index, self.ingest(batch)

    def close(self) -> None:
        """Release resources; idempotent.

        A single in-process service holds nothing that outlives it — this
        exists so :class:`DetectionService` and
        :class:`~repro.serving.fleet.DetectionFleet` (whose shards may be
        worker processes) satisfy one :class:`~repro.serving.Ingestor`
        surface and callers can shut either down uniformly.
        """

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _new_spans(
        self, query: BehaviorQuery, delta_start: int, delta_min_time: int
    ) -> list[Span]:
        """Distinct spans of matches whose last edge lies in the delta.

        Any such match has its last edge at time ``>= delta_min_time``,
        so its first edge cannot predate ``delta_min_time - max_span`` —
        the join starts there instead of at the window edge.  Enumeration
        shares the batch engine's safety valve
        (:data:`DEFAULT_MATCH_LIMIT`), but applies it *per query per
        batch*, whereas the batch engine applies it once per whole-log
        search — so once a query saturates the limit in any single
        search, streaming may report more (or different) spans than
        batch.  The batch-equivalence contract therefore holds only for
        queries whose match counts stay under the limit in every batch
        as well as in the one-shot search.
        """
        start_index = max(
            self.graph.first_live_index,
            self.graph.index_after_time(delta_min_time - query.max_span),
        )
        spans = {
            match_span(match, self.graph)
            for match in find_matches(
                query.pattern,
                self.graph,
                max_span=query.max_span,
                limit=DEFAULT_MATCH_LIMIT,
                start_index=start_index,
                min_last_index=delta_start,
            )
        }
        return sorted(spans)

    def _prune_seen(self) -> None:
        """Forget reported spans that can no longer be rediscovered.

        A span is only ever re-found (after tail reinsertion) while all
        of its edges are live, so spans starting before the window's
        oldest live time are safe to drop — this bounds dedup memory by
        the window, not the stream length.
        """
        bounds = self.graph.window_bounds()
        if bounds is None:
            return
        oldest = bounds[0]
        for query_id, seen in self._seen.items():
            if seen:
                self._seen[query_id] = {s for s in seen if s[0] >= oldest}
