"""The public serving contract: one ingest surface, one stats schema.

This module is the *definition site* for the three names every detection
deployment — single :class:`~repro.serving.service.DetectionService`,
sharded :class:`~repro.serving.fleet.DetectionFleet`, or either behind
the HTTP tier — agrees on:

* :class:`Ingestor` — the protocol the serving implementations satisfy
  and all callers (``Workspace.serve``, the CLI, the HTTP server, the
  benchmarks) are written against;
* :data:`STATS_SCHEMA_KEYS` / :data:`STATS_SCHEMA_VERSION` — the shared
  ``as_dict()`` stats schema both ``ServiceStats`` and ``FleetStats``
  emit, version-stamped so remote readers can detect drift;
* :func:`stats_from_dict` — the read side: decode any schema payload
  (e.g. a ``GET /v1/stats`` response) back into a typed
  :class:`StatsView` that round-trips ``as_dict()`` byte-for-byte;
* :class:`ServingHandle` — the typed handle ``Workspace.serve`` returns,
  carrying the ingestor, the model it serves, and (optionally) the model
  registry it came from.

The canonical *import* path is :mod:`repro.api` — this file lives under
:mod:`repro.serving` only to keep the package import graph acyclic
(``repro.api`` pulls in the serving implementations; the implementations
must not pull in ``repro.api``).  ``repro.serving`` re-exports the same
names for backwards compatibility.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Iterator,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.core.errors import ServingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.model import BehaviorModel
    from repro.serving.model_registry import ModelRegistry
    from repro.serving.registry import BehaviorQuery
    from repro.syscall.events import SyscallEvent

__all__ = [
    "Ingestor",
    "ServingHandle",
    "STATS_SCHEMA_KEYS",
    "STATS_SCHEMA_VERSION",
    "StatsView",
    "stats_from_dict",
]

#: Version stamp of the shared stats schema.  Bump on any change a
#: remote reader of this version could not interpret (a removed or
#: re-typed key); adding optional keys is backwards compatible.  Every
#: ``as_dict()`` payload carries it as ``schema_version``.
STATS_SCHEMA_VERSION = 1

#: Keys every ingest-stats ``as_dict()`` payload carries — the one schema
#: ``ServiceStats`` and ``FleetStats`` share, so the CLI ``--json``
#: report, the HTTP ``/v1/stats`` endpoint, and the benchmarks read
#: either implementation through the same keys (the fleet adds
#: rollup-only extras on top).
STATS_SCHEMA_KEYS = (
    "schema_version",
    "kind",
    "batches",
    "events",
    "detections",
    "queries_evaluated",
    "queries_prefiltered",
    "matching_seconds",
    "total_seconds",
    "events_per_second",
    "evicted",
    "late_dropped",
    "reinserted",
    "latency_ms",
    "latency_samples",
)


@runtime_checkable
class Ingestor(Protocol):
    """The one ingest surface every detection deployment speaks.

    :class:`~repro.serving.service.DetectionService` (one host, one
    window) and :class:`~repro.serving.fleet.DetectionFleet` (many
    tenants, sharded) both satisfy it, as does the
    :class:`ServingHandle` wrapping either.  Implementations differ in
    what their methods *return* — a service reports ``Detection``, a
    fleet ``FleetDetection`` (which adds tenant/shard attribution) — but
    the shapes line up: detections expose ``query``/``span``, and
    ``stats`` exposes ``as_dict()`` emitting the shared
    :data:`STATS_SCHEMA_KEYS` schema.  Code written against this
    protocol (``Workspace.serve``, the CLI handlers, the HTTP tier,
    ``bench_serving.py``) runs against any of them.

    Lifecycle: ``register_all`` every query first, then ``ingest`` /
    ``replay`` freely, and ``close()`` when done (a no-op for in-process
    deployments, a worker shutdown for process fleets).
    """

    def register_all(self, queries: Sequence["BehaviorQuery"]) -> list[int]:
        """Register the query slate; returns the assigned query ids."""
        ...

    def ingest(self, events: Sequence["SyscallEvent"]) -> list:
        """Ingest one event batch; return newly identified instances."""
        ...

    def replay(
        self, events: Sequence["SyscallEvent"], batch_size: int
    ) -> Iterator[tuple[int, list]]:
        """Feed a recorded log through ingest, yielding per-batch results."""
        ...

    @property
    def stats(self):
        """Current ingest statistics (``.as_dict()`` → shared schema)."""
        ...

    def close(self) -> None:
        """Release any held resources; idempotent."""
        ...


class StatsView:
    """A decoded stats payload: typed access that round-trips exactly.

    Wraps one shared-schema dict (a ``ServiceStats.as_dict()``, a
    ``FleetStats.as_dict()``, or the same fetched over HTTP) and exposes
    every schema key as an attribute.  :meth:`as_dict` returns the
    payload unchanged, so ``stats_from_dict(s.as_dict()).as_dict() ==
    s.as_dict()`` holds for both stats implementations — the round-trip
    contract pinned by ``tests/test_contracts.py``.
    """

    __slots__ = ("_payload",)

    def __init__(self, payload: dict) -> None:
        self._payload = payload

    def __getattr__(self, name: str):
        try:
            return self._payload[name]
        except KeyError:
            raise AttributeError(f"stats payload has no key {name!r}") from None

    @property
    def is_fleet(self) -> bool:
        """Whether the payload came from a fleet rollup."""
        return self._payload["kind"] == "fleet"

    @property
    def per_shard(self) -> list["StatsView"]:
        """Fleet payloads only: each shard's own stats as a view."""
        return [StatsView(shard) for shard in self._payload.get("per_shard", [])]

    def as_dict(self) -> dict:
        """The wrapped payload, unchanged (exact round-trip)."""
        return self._payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StatsView(kind={self._payload.get('kind')!r}, "
            f"events={self._payload.get('events')}, "
            f"detections={self._payload.get('detections')})"
        )


def stats_from_dict(payload: dict) -> StatsView:
    """Decode a shared-schema stats payload into a :class:`StatsView`.

    Validates the schema: every :data:`STATS_SCHEMA_KEYS` key must be
    present, ``kind`` must be ``service`` or ``fleet``, and
    ``schema_version`` must not postdate this library's
    :data:`STATS_SCHEMA_VERSION` (a payload from a newer writer fails
    loudly instead of being misread).
    """
    if not isinstance(payload, dict):
        raise ServingError(
            f"stats payload must be a dict, got {type(payload).__name__}"
        )
    missing = [key for key in STATS_SCHEMA_KEYS if key not in payload]
    if missing:
        raise ServingError(
            f"stats payload is missing schema keys: {', '.join(missing)}"
        )
    version = payload["schema_version"]
    if not isinstance(version, int) or version < 1:
        raise ServingError(f"invalid stats schema_version {version!r}")
    if version > STATS_SCHEMA_VERSION:
        raise ServingError(
            f"stats payload schema v{version} is newer than this library "
            f"supports (v{STATS_SCHEMA_VERSION}); upgrade repro to read it"
        )
    kind = payload["kind"]
    if kind not in ("service", "fleet"):
        raise ServingError(f"unknown stats kind {kind!r}")
    if kind == "fleet":
        for extra in ("shards", "tenants", "per_shard"):
            if extra not in payload:
                raise ServingError(f"fleet stats payload missing {extra!r}")
    return StatsView(payload)


class ServingHandle:
    """The typed handle :meth:`repro.api.Workspace.serve` returns.

    Carries the live :class:`Ingestor`, the :class:`BehaviorModel` it
    serves, and — when the deployment came from (or publishes to) a
    :class:`~repro.serving.model_registry.ModelRegistry` — that registry
    plus the served version.  The handle itself satisfies
    :class:`Ingestor` by delegation, so every call site that took the
    raw service keeps working, and adds the lifecycle the raw
    implementations lack: :meth:`reload` (hot-swap a new model without
    dropping the streaming window) and context-manager ``close()``.
    """

    def __init__(
        self,
        ingestor: Ingestor,
        model: "BehaviorModel | None" = None,
        registry: "ModelRegistry | None" = None,
        version: int | None = None,
    ) -> None:
        self.ingestor = ingestor
        self.model = model
        self.registry = registry
        self.version = version

    # -- Ingestor by delegation -----------------------------------------
    def register_all(self, queries: Sequence["BehaviorQuery"]) -> list[int]:
        """Register the query slate on the underlying ingestor."""
        return self.ingestor.register_all(queries)

    def ingest(self, events: Sequence["SyscallEvent"]) -> list:
        """Ingest one event batch via the underlying ingestor."""
        return self.ingestor.ingest(events)

    def replay(
        self, events: Sequence["SyscallEvent"], batch_size: int
    ) -> Iterator[tuple[int, list]]:
        """Replay a recorded log via the underlying ingestor."""
        return self.ingestor.replay(events, batch_size)

    @property
    def stats(self):
        """The underlying ingestor's stats object."""
        return self.ingestor.stats

    def close(self) -> None:
        """Close the underlying ingestor; idempotent."""
        self.ingestor.close()

    # -- lifecycle beyond the protocol ----------------------------------
    @property
    def window_span(self) -> int | None:
        """The deployment's effective eviction window."""
        return self.ingestor.window_span

    def start(self) -> None:
        """Bring the deployment up eagerly (no-op for plain services)."""
        start = getattr(self.ingestor, "start", None)
        if start is not None:
            start()

    def health(self) -> dict:
        """Liveness/degradation rollup from the underlying deployment.

        Fault-tolerant ingestors (fleets, checkpointed services) report
        restart/quarantine/recovery state; plain services are simply
        ``ok`` while open.
        """
        probe = getattr(self.ingestor, "health", None)
        if probe is not None:
            return probe()
        return {"status": "ok"}

    def checkpoint(self) -> None:
        """Cut a durable snapshot now (no-op for non-durable deployments)."""
        cut = getattr(self.ingestor, "checkpoint", None)
        if cut is not None:
            cut()

    def reload(self, model: "BehaviorModel", version: int | None = None) -> None:
        """Hot-swap ``model``'s queries in without dropping the window.

        Delegates to the ingestor's ``reload`` (see
        :meth:`~repro.serving.service.DetectionService.reload` for the
        equivalence guarantee) and updates :attr:`model` /
        :attr:`version` to describe what is now being served.
        """
        reload = getattr(self.ingestor, "reload", None)
        if reload is None:
            raise ServingError(
                f"{type(self.ingestor).__name__} does not support hot reload"
            )
        reload(model.queries())
        self.model = model
        self.version = version

    def __enter__(self) -> "ServingHandle":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        served = (
            f"v{self.version}"
            if self.version is not None
            else type(self.ingestor).__name__
        )
        return f"ServingHandle({served}, registry={self.registry!r})"
