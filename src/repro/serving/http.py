"""The stdlib HTTP serving tier: ingest, stats, registry, canary, promote.

:func:`serve_http` puts any :class:`~repro.serving.contracts.Ingestor`
behind a ``ThreadingHTTPServer`` speaking a small JSON protocol::

    GET  /v1/healthz                    liveness + what is being served
    POST /v1/ingest                     {"events": [...]} -> detections
    GET  /v1/detections?limit=N         recent detections (ring buffer)
    GET  /v1/stats                      shared-schema stats snapshot
    GET  /v1/models                     registry listing + active version
    POST /v1/models                     {"path": ...} publish a bundle
    POST /v1/models/<v>/canary          {"batches": N} start a canary
    GET  /v1/canary                     canary progress and divergence
    POST /v1/models/<v>/promote         {"force": bool} activate + reload

Event payloads use the one event codec
(:func:`repro.datasets.io.event_to_dict`), so a recorded jsonl log can
be replayed over the wire line-for-line.

**Hot reload.**  Promotion swaps the new model into the live deployment
via :meth:`~repro.serving.service.DetectionService.reload` — the
streaming window is retained, and the swap happens under the server's
ingest lock, so no batch ever sees a half-updated slate.  Post-promote
detections are span-identical to a server that had served the new model
all along (the window retention property; see ``service.py``).

**Canary.**  Before promoting, a candidate can run in *shadow*: a second
:class:`~repro.serving.service.DetectionService` is built from the
candidate bundle, seeded with the primary's retained window (so diffs
reflect the models, not window state), and fed every live batch for N
batches.  Per-batch detection-set differences — spans one model reports
and the other does not — accumulate in the canary report, and
``promote`` refuses a divergent or unfinished canary unless
``force=true``.  A byte-identical repack of the serving model therefore
always passes; a perturbed model is flagged.

**Overload and shutdown.**  Ingest admission is bounded: past
``max_inflight`` concurrent requests the server sheds with ``429`` (+
``Retry-After``) instead of queueing without limit, and ``healthz``
degrades to reflect a supervised fleet's restarts or quarantined
tenants.  Shutdown *drains*: new ingests get ``503`` (+ ``Retry-After``)
while in-flight batches finish under the ingest lock, then a final
checkpoint is cut for durable deployments — a restart resumes the
window span-identically (see :mod:`repro.serving.checkpoint`).

Threading model: ``ThreadingHTTPServer`` handles each request on its own
daemon thread; one :class:`threading.RLock` serializes every mutation
(ingest, canary stepping, publish, promote/reload), so the detection
pipeline itself stays single-threaded and deterministic.  Reads
(stats/detections/models) take the same lock briefly to snapshot.
"""

from __future__ import annotations

import json
import re
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

from repro.core.errors import (
    ArtifactError,
    DatasetError,
    HttpError,
    RegistryError,
    ReproError,
    ServingError,
)
from repro.datasets.io import event_from_dict, event_to_dict
from repro.serving.contracts import ServingHandle
from repro.serving.model_registry import ModelRegistry
from repro.serving.service import DetectionService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.model import BehaviorModel

__all__ = [
    "DetectionServer",
    "HttpServingHandle",
    "serve_http",
    "DEFAULT_CANARY_BATCHES",
    "DEFAULT_DETECTIONS_CAPACITY",
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_RETRY_AFTER",
]

#: Live batches a canary observes before it is complete, by default.
DEFAULT_CANARY_BATCHES = 8

#: Ring-buffer capacity of ``GET /v1/detections``.
DEFAULT_DETECTIONS_CAPACITY = 1024

#: Ingest requests admitted (executing + queued on the ingest lock)
#: before the server sheds load with 429.
DEFAULT_MAX_INFLIGHT = 32

#: Seconds clients are told to back off via ``Retry-After`` on 429/503.
DEFAULT_RETRY_AFTER = 1.0

#: Reject request bodies beyond this size (64 MiB) outright.
_MAX_BODY_BYTES = 64 * 1024 * 1024

#: Divergent spans retained per side in the canary report.
_MAX_DIFF_SPANS = 200

_MODEL_ACTION = re.compile(r"^/v1/models/(\d+)/(canary|promote)$")


def _detection_to_dict(detection) -> dict:
    """Serialize a service or fleet detection to JSON.

    Both shapes share ``query``/``span``; fleet detections add tenant and
    shard attribution, carried through when present.
    """
    payload = {
        "query": detection.query,
        "start": detection.span[0],
        "end": detection.span[1],
    }
    for extra in ("query_id", "batch", "tenant", "shard"):
        value = getattr(detection, extra, None)
        if value is not None:
            payload[extra] = value
    return payload


def _span_key(detection) -> tuple[str, int, int]:
    """The canary comparison key: what was detected, and when."""
    return (detection.query, detection.span[0], detection.span[1])


class _CanaryRun:
    """One in-flight shadow comparison of a candidate model version."""

    def __init__(
        self, version: int, shadow: DetectionService, target_batches: int
    ) -> None:
        self.version = version
        self.shadow = shadow
        self.target_batches = target_batches
        self.batches = 0
        self.divergent_batches = 0
        self.missing: list[dict] = []  # primary reported, candidate did not
        self.extra: list[dict] = []  # candidate reported, primary did not

    @property
    def done(self) -> bool:
        return self.batches >= self.target_batches

    @property
    def divergent(self) -> bool:
        return self.divergent_batches > 0

    @property
    def verdict(self) -> str:
        if not self.done:
            return "running"
        return "divergent" if self.divergent else "clean"

    def step(self, events, primary_detections) -> None:
        """Feed the shadow one live batch and record the detection diff."""
        shadow_detections = self.shadow.ingest(events)
        primary_keys = {_span_key(d) for d in primary_detections}
        shadow_keys = {_span_key(d) for d in shadow_detections}
        if primary_keys != shadow_keys:
            self.divergent_batches += 1
            for query, start, end in sorted(primary_keys - shadow_keys):
                if len(self.missing) < _MAX_DIFF_SPANS:
                    self.missing.append({"query": query, "start": start, "end": end})
            for query, start, end in sorted(shadow_keys - primary_keys):
                if len(self.extra) < _MAX_DIFF_SPANS:
                    self.extra.append({"query": query, "start": start, "end": end})
        self.batches += 1

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "target_batches": self.target_batches,
            "batches": self.batches,
            "divergent_batches": self.divergent_batches,
            "missing": list(self.missing),
            "extra": list(self.extra),
            "done": self.done,
            "verdict": self.verdict,
        }


class DetectionServer:
    """The HTTP tier's application object: one deployment, one lock.

    Owns a :class:`~repro.serving.contracts.ServingHandle` (the live
    deployment plus what it serves), optionally a
    :class:`~repro.serving.model_registry.ModelRegistry`, the recent
    detections ring buffer, and at most one in-flight canary.  The HTTP
    handler below is a thin shell over the ``handle_*`` methods here, so
    everything is unit-testable without sockets.
    """

    def __init__(
        self,
        handle: ServingHandle,
        registry: ModelRegistry | None = None,
        detections_capacity: int = DEFAULT_DETECTIONS_CAPACITY,
        canary_batches: int = DEFAULT_CANARY_BATCHES,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        retry_after: float = DEFAULT_RETRY_AFTER,
    ) -> None:
        if max_inflight < 1:
            raise ServingError("max_inflight must be >= 1")
        self.handle = handle
        self.registry = registry
        self.canary_batches = canary_batches
        self.max_inflight = max_inflight
        self.retry_after = retry_after
        self._lock = threading.RLock()
        self._recent: deque[dict] = deque(maxlen=detections_capacity)
        self._canary: _CanaryRun | None = None
        # admission control: the pipeline behind _lock is single-threaded,
        # so "inflight" = ingest requests executing or queued on the lock;
        # _gate guards the counter without touching the pipeline lock
        self._gate = threading.Lock()
        self._inflight = 0
        self._shed = 0
        self._draining = False

    # ------------------------------------------------------------------
    # endpoint implementations (JSON dict in -> JSON dict out)
    # ------------------------------------------------------------------
    def handle_healthz(self) -> dict:
        with self._lock:
            stats = self.handle.stats.as_dict()
            status = "draining" if self._draining else "ok"
            payload = {
                "status": status,
                "serving_version": self.handle.version,
                "active_version": (
                    self.registry.active_version if self.registry else None
                ),
                "registry": str(self.registry.root) if self.registry else None,
                "reloads": getattr(self.handle.ingestor, "reloads", 0),
                "batches": stats["batches"],
                "events": stats["events"],
                "shed": self._shed,
            }
            # a fault-tolerant deployment (fleet / checkpointed service)
            # reports its own liveness: degraded shards, quarantined
            # tenants, recovery progress — fold it into the probe
            probe = getattr(self.handle.ingestor, "health", None)
            if callable(probe):
                detail = probe()
                payload["deployment"] = detail
                if status == "ok" and detail.get("status") not in (None, "ok"):
                    payload["status"] = str(detail["status"])
            return payload

    def handle_ingest(self, body: dict) -> dict:
        events_payload = body.get("events")
        if not isinstance(events_payload, list):
            raise HttpError(400, "ingest body must carry an 'events' list")
        try:
            events = [event_from_dict(item) for item in events_payload]
        except DatasetError as exc:
            raise HttpError(400, str(exc)) from exc
        with self._gate:
            if self._draining:
                raise HttpError(
                    503, "server is draining for shutdown",
                    retry_after=self.retry_after,
                )
            if self._inflight >= self.max_inflight:
                self._shed += 1
                raise HttpError(
                    429,
                    f"ingest overloaded: {self._inflight} requests in flight "
                    f"(max {self.max_inflight}); retry later",
                    retry_after=self.retry_after,
                )
            self._inflight += 1
        try:
            with self._lock:
                detections = self.handle.ingest(events)
                if self._canary is not None and not self._canary.done:
                    self._canary.step(events, detections)
                serialized = [_detection_to_dict(d) for d in detections]
                for payload in serialized:
                    self._recent.append(payload)
                return {
                    "ingested": len(events),
                    "detections": serialized,
                    "batch": self.handle.stats.as_dict()["batches"] - 1,
                }
        finally:
            with self._gate:
                self._inflight -= 1

    def handle_detections(self, limit: int | None = None) -> dict:
        with self._lock:
            recent = list(self._recent)
        if limit is not None:
            if limit < 0:
                raise HttpError(400, f"limit must be >= 0, got {limit}")
            recent = recent[-limit:] if limit else []
        return {"detections": recent, "capacity": self._recent.maxlen}

    def handle_stats(self) -> dict:
        with self._lock:
            return self.handle.stats.as_dict()

    def handle_models(self) -> dict:
        registry = self._require_registry()
        with self._lock:
            return {
                "active": registry.active_version,
                "serving": self.handle.version,
                "entries": [entry.as_dict() for entry in registry.entries()],
            }

    def handle_publish(self, body: dict) -> dict:
        registry = self._require_registry()
        path = body.get("path")
        if not isinstance(path, str) or not path:
            raise HttpError(
                400, "publish body must carry 'path': a server-side bundle path"
            )
        entry = registry.publish(Path(path))
        return {"published": entry.as_dict(), "active": registry.active_version}

    def handle_canary_start(self, version: int, body: dict) -> dict:
        registry = self._require_registry()
        batches = body.get("batches", self.canary_batches)
        if not isinstance(batches, int) or batches < 1:
            raise HttpError(400, f"canary batches must be an int >= 1, got {batches!r}")
        candidate = registry.load(version)
        with self._lock:
            primary = self.handle.ingestor
            # a durable deployment is still one service: canary against
            # the live window inside the checkpoint wrapper
            primary = getattr(primary, "service", primary)
            if not isinstance(primary, DetectionService):
                raise HttpError(
                    409,
                    "canary comparison requires a single DetectionService "
                    f"deployment, not {type(primary).__name__}",
                )
            shadow = DetectionService(use_prefilter=primary.use_prefilter)
            shadow.register_all(candidate.queries())
            window = primary.graph.window_events()
            if window:
                # seed the shadow with the retained window so the diff
                # reflects the models, not missing window state; the
                # seed batch's detections are the candidate's view of
                # history, not live divergence — discard them
                shadow.ingest(window)
            self._canary = _CanaryRun(version, shadow, batches)
            return self._canary.as_dict()

    def handle_canary_status(self) -> dict:
        with self._lock:
            if self._canary is None:
                raise HttpError(404, "no canary is running on this server")
            return self._canary.as_dict()

    def handle_promote(self, version: int, body: dict) -> dict:
        registry = self._require_registry()
        force = bool(body.get("force", False))
        with self._lock:
            canary = self._canary
            if not force:
                if canary is None or canary.version != version:
                    raise HttpError(
                        409,
                        f"no canary has run for v{version}; run "
                        f"POST /v1/models/{version}/canary first or pass "
                        '{"force": true}',
                    )
                if not canary.done:
                    raise HttpError(
                        409,
                        f"canary for v{version} is still running "
                        f"({canary.batches}/{canary.target_batches} batches); "
                        'wait for completion or pass {"force": true}',
                    )
                if canary.divergent:
                    raise HttpError(
                        409,
                        f"canary for v{version} diverged on "
                        f"{canary.divergent_batches} of {canary.batches} "
                        "batches (see GET /v1/canary); refusing to promote "
                        'without {"force": true}',
                    )
            model = registry.load(version)
            entry = registry.promote(version)
            # swap under the ingest lock: no batch interleaves with the
            # reload, and the streaming window is retained (see
            # DetectionService.reload for the equivalence guarantee)
            self.handle.reload(model, version)
            self._canary = None
            return {
                "promoted": entry.as_dict(),
                "serving": version,
                "forced": force,
                "canary": canary.as_dict() if canary is not None else None,
            }

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _require_registry(self) -> ModelRegistry:
        if self.registry is None:
            raise HttpError(
                409,
                "no model registry attached to this server; restart with "
                "--registry (CLI) or registry= (serve_http) to manage models",
            )
        return self.registry

    def close(self) -> None:
        """Drain in-flight ingests, cut a final checkpoint, close; idempotent.

        New ingest requests are refused with 503 (+ ``Retry-After``) the
        moment draining starts; taking the pipeline lock then waits out
        every batch already admitted.  If the deployment is durable
        (exposes ``checkpoint()``), the last thing that happens before
        close is a full snapshot cut, so a clean shutdown never needs
        WAL replay on the next boot.
        """
        with self._gate:
            self._draining = True
        with self._lock:
            final_cut = getattr(self.handle.ingestor, "checkpoint", None)
            if callable(final_cut):
                try:
                    final_cut()
                except ReproError:  # pragma: no cover - best-effort final cut
                    pass
            self.handle.close()


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin HTTP shell over :class:`DetectionServer`: route, decode, reply."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    # header and body go out as separate writes; without TCP_NODELAY the
    # second write can sit behind the peer's delayed ACK (~40ms/request
    # on loopback), dwarfing actual ingest time
    disable_nagle_algorithm = True

    @property
    def app(self) -> DetectionServer:
        return self.server.app  # type: ignore[attr-defined]

    # -- framing --------------------------------------------------------
    def _reply(
        self, status: int, payload: dict, retry_after: float | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            # ceil to whole seconds: Retry-After is delta-seconds per RFC
            self.send_header("Retry-After", str(max(1, int(retry_after + 0.999))))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > _MAX_BODY_BYTES:
            raise HttpError(413, f"request body over {_MAX_BODY_BYTES} bytes")
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        try:
            self._reply(200, self._route(method))
        except HttpError as exc:
            self._reply(
                exc.status,
                {"error": str(exc), "status": exc.status},
                retry_after=exc.retry_after,
            )
        except (ArtifactError, DatasetError) as exc:
            self._reply(400, {"error": str(exc), "status": 400})
        except (RegistryError, ServingError) as exc:
            self._reply(409, {"error": str(exc), "status": 409})
        except ReproError as exc:
            self._reply(400, {"error": str(exc), "status": 400})
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self._reply(500, {"error": f"internal error: {exc}", "status": 500})

    def _route(self, method: str) -> dict:
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        app = self.app
        if method == "GET":
            if path == "/v1/healthz":
                return app.handle_healthz()
            if path == "/v1/stats":
                return app.handle_stats()
            if path == "/v1/detections":
                query = parse_qs(parts.query)
                limit = None
                if "limit" in query:
                    try:
                        limit = int(query["limit"][0])
                    except ValueError as exc:
                        raise HttpError(
                            400, f"limit must be an integer: {query['limit'][0]!r}"
                        ) from exc
                return app.handle_detections(limit)
            if path == "/v1/models":
                return app.handle_models()
            if path == "/v1/canary":
                return app.handle_canary_status()
            raise HttpError(404, f"no such endpoint: GET {path}")
        if method == "POST":
            body = self._read_body()
            if path == "/v1/ingest":
                return app.handle_ingest(body)
            if path == "/v1/models":
                return app.handle_publish(body)
            action = _MODEL_ACTION.match(path)
            if action:
                version = int(action.group(1))
                if action.group(2) == "canary":
                    return app.handle_canary_start(version, body)
                return app.handle_promote(version, body)
            raise HttpError(404, f"no such endpoint: POST {path}")
        raise HttpError(405, f"method {method} not allowed")

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("POST")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Suppress per-request stderr chatter (stats carry the numbers)."""


class HttpServingHandle:
    """A running HTTP deployment: server thread + application + address."""

    def __init__(self, server: ThreadingHTTPServer, app: DetectionServer) -> None:
        self.server = server
        self.app = app
        self._thread: threading.Thread | None = None
        self._served = False

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — port resolved even when bound to 0."""
        host, port = self.server.server_address[:2]
        return (str(host), int(port))

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start_background(self) -> "HttpServingHandle":
        """Serve on a daemon thread (the test/embedding mode)."""
        if self._thread is None:
            self._served = True
            self._thread = threading.Thread(
                target=self.server.serve_forever, daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (the CLI mode)."""
        self._served = True
        self.server.serve_forever()

    def close(self) -> None:
        """Stop accepting requests and close the deployment; idempotent."""
        if self._served:
            # shutdown() waits on serve_forever's exit event, which only
            # ever gets set if the serve loop ran — skip it otherwise or
            # closing a never-started server would block forever
            self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.app.close()

    def __enter__(self) -> "HttpServingHandle":
        return self.start_background()

    def __exit__(self, *_exc) -> None:
        self.close()


def serve_http(
    handle: "ServingHandle | DetectionService",
    host: str = "127.0.0.1",
    port: int = 0,
    registry: "ModelRegistry | str | Path | None" = None,
    detections_capacity: int = DEFAULT_DETECTIONS_CAPACITY,
    canary_batches: int = DEFAULT_CANARY_BATCHES,
    max_inflight: int = DEFAULT_MAX_INFLIGHT,
    retry_after: float = DEFAULT_RETRY_AFTER,
) -> HttpServingHandle:
    """Bind a deployment to an HTTP address; returns the running handle.

    ``port=0`` binds an ephemeral port (read it back from
    ``handle.address``).  The returned handle is not serving yet: call
    :meth:`~HttpServingHandle.start_background` (or enter it as a
    context manager) for a daemon thread, or
    :meth:`~HttpServingHandle.serve_forever` to serve on the calling
    thread.
    """
    if not isinstance(handle, ServingHandle):
        handle = ServingHandle(handle)
    if registry is not None and not isinstance(registry, ModelRegistry):
        registry = ModelRegistry(registry)
    app = DetectionServer(
        handle,
        registry=registry,
        detections_capacity=detections_capacity,
        canary_batches=canary_batches,
        max_inflight=max_inflight,
        retry_after=retry_after,
    )
    try:
        server = ThreadingHTTPServer((host, port), _RequestHandler)
    except OSError as exc:
        raise HttpError(500, f"cannot bind {host}:{port}: {exc}") from exc
    server.daemon_threads = True
    server.app = app  # type: ignore[attr-defined]
    return HttpServingHandle(server, app)
