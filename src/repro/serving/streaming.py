"""Incrementally maintained temporal graph with sliding-window eviction.

:class:`StreamingGraph` is the serving-side counterpart of the frozen
:class:`~repro.core.graph.TemporalGraph`: instead of building the one-edge
label-pair index, the label signature, and the flat kernel edge columns
(:meth:`StreamingGraph.edge_arrays` — the streaming twin of the batch
graph's :mod:`repro.core.kernel` arrays) once at freeze time, it maintains
all of them *online* while syscall events arrive in batches and old edges
slide out of the time window.

Edge identity is the key design point.  Every ingested edge receives a
monotonically increasing **global id** — its position in the ingest order,
which equals time order within the live window — and keeps that id for its
whole life.  Evicting old edges never renumbers the survivors, so the
per-label-pair candidate lists stay valid (their dead prefixes are skipped
by the matcher's ``start_index`` frontier and compacted away lazily), and
:func:`repro.core.graph_index.find_matches` runs unchanged against a live
window: the graph satisfies the matcher's
:class:`~repro.core.graph_index.EdgeIndexedSource` protocol.

Out-of-order arrival is handled by **tail reinsertion**: when a batch
contains events older than the newest sealed edge (but still inside the
window), the sealed tail from the insertion point onward is popped,
merged with the new events in time order, and re-appended under fresh
ids.  The re-appended edges count as part of the batch delta, so matches
spanning them are (re)discovered; the
:class:`~repro.serving.service.DetectionService` deduplicates re-reported
spans.  Events older than the window lower bound are dropped and counted
as late.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.core.buffers import new_column
from repro.core.errors import ServingError
from repro.core.graph import TemporalEdge, TemporalGraph
from repro.core.graph_index import Signature
from repro.syscall.events import SyscallEvent

__all__ = ["StreamingGraph", "IngestDelta", "StreamStats"]

#: (time, src_key, src_label, dst_key, dst_label) — an edge detached from
#: node ids, the currency of tail reinsertion.
_RawEvent = tuple[int, str, str, str, str]


@dataclass(frozen=True)
class IngestDelta:
    """What one :meth:`StreamingGraph.ingest` call changed.

    ``start_index`` is the global id of the first edge (re)appended by
    this batch: every match whose last edge id is ``>= start_index`` is
    new (or touches reinserted edges) and must be (re)evaluated; every
    other match was already reported by an earlier batch.
    """

    start_index: int
    appended: int
    reinserted: int
    evicted: int
    late: int
    min_time: int = 0
    max_time: int = 0

    @property
    def empty(self) -> bool:
        """Whether the batch added no edges at all."""
        return self.appended == 0


@dataclass
class StreamStats:
    """Lifetime counters of one streaming graph."""

    batches: int = 0
    ingested: int = 0
    evicted: int = 0
    reinserted: int = 0
    late_dropped: int = 0


class _EdgeView:
    """Read-only ``edges[global_id]`` access for the matching core.

    ``__len__`` is the global id space (so any live id indexes in range);
    ``__iter__`` yields the *live* edges only — without it, Python's
    sequence-iteration fallback would start at id 0 and stop dead on the
    first compacted-away id.
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: "StreamingGraph") -> None:
        self._graph = graph

    def __getitem__(self, global_id: int) -> TemporalEdge:
        graph = self._graph
        offset = global_id - graph._base
        if offset < 0:
            raise IndexError(f"edge {global_id} was compacted away")
        return graph._store[offset]

    def __len__(self) -> int:
        return self._graph._next_id

    def __iter__(self):
        graph = self._graph
        return iter(graph._store[graph._first_live :])


class StreamingGraph:
    """A live temporal graph over the most recent ``window_span`` of time.

    Parameters
    ----------
    window_span:
        Sliding-window width on the event-time axis.  Edges older than
        ``batch_min_time - window_span`` are evicted at the *start* of
        each ingest — before the batch is appended — so every match whose
        span respects a cap ``<= window_span`` and whose last edge lies in
        the new batch still has all of its edges live when the service
        evaluates the delta.  ``None`` keeps everything (the batch
        "ingest everything, then flush" mode).
    """

    def __init__(self, window_span: int | None = None, name: str = "stream") -> None:
        if window_span is not None and window_span < 0:
            raise ServingError("window_span must be non-negative or None")
        self.window_span = window_span
        self.name = name
        self.stats = StreamStats()
        # edge store: _store[i] has global id _base + i; entries below
        # _first_live are evicted (kept until amortized compaction).
        # _srcs/_dsts/_times are the incrementally maintained kernel: the
        # flat edge columns the shared matcher joins over (see
        # repro.core.kernel.EdgeArrays), kept parallel to _store through
        # every append / tail pop / compaction.  They are contiguous
        # int64 buffers (repro.core.buffers) so the vectorized join can
        # wrap them zero-copy, exactly like a frozen graph's columns.
        self._store: list[TemporalEdge] = []
        self._srcs = new_column()
        self._dsts = new_column()
        self._times = new_column()
        self._base = 0
        self._first_live = 0
        self._next_id = 0
        # one-edge label-pair index: global ids, ascending; dead prefixes
        # tracked per pair and compacted when they dominate the list
        self._pair: dict[tuple[str, str], list[int]] = {}
        self._pair_dead: dict[tuple[str, str], int] = {}
        # node identity: entity key <-> node id, live-edge refcounts
        self._node_of_key: dict[str, int] = {}
        self._key_of_node: dict[int, str] = {}
        self._label_of_node: dict[int, str] = {}
        self._node_refs: dict[int, int] = {}
        self._next_node = 0
        # online label signature (live nodes / live edges)
        self._sig_nodes: Counter[str] = Counter()
        self._sig_pairs: Counter[tuple[str, str]] = Counter()

    # ------------------------------------------------------------------
    # EdgeIndexedSource protocol (shared matching core)
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of live edges in the window."""
        return len(self._store) - self._first_live

    @property
    def edges(self) -> Sequence[TemporalEdge]:
        """Edge access by global id (live ids only)."""
        return _EdgeView(self)

    def edges_between(self, src_label: str, dst_label: str) -> Sequence[int]:
        """Global edge ids for a label pair, ascending.

        The list may carry a dead (evicted) prefix; callers must start
        their join frontier at :attr:`first_live_index` or later, which
        the :class:`~repro.serving.service.DetectionService` always does.
        """
        return self._pair.get((src_label, dst_label), ())

    def edge_arrays(self) -> tuple[int, Sequence[int], Sequence[int], Sequence[int]]:
        """The live window's kernel: flat ``(base, src, dst, time)`` columns.

        Position ``id - base`` of each column describes the edge with
        global id ``id`` — exactly what the array join in
        :func:`repro.core.graph_index.find_matches` consumes.  The
        columns are the maintained-in-place lists, so the returned view
        is only valid until the next :meth:`ingest`.
        """
        return (self._base, self._srcs, self._dsts, self._times)

    # ------------------------------------------------------------------
    # window accessors
    # ------------------------------------------------------------------
    @property
    def first_live_index(self) -> int:
        """Global id of the oldest live edge (== next id when empty)."""
        return self._base + self._first_live

    @property
    def next_index(self) -> int:
        """Global id the next ingested edge will receive."""
        return self._next_id

    @property
    def num_nodes(self) -> int:
        """Number of live nodes (nodes touching at least one live edge)."""
        return len(self._label_of_node)

    def label(self, node: int) -> str:
        """Label of a live node id."""
        return self._label_of_node[node]

    def window_bounds(self) -> tuple[int, int] | None:
        """``(oldest, newest)`` live edge times, or ``None`` when empty."""
        if not self.num_edges:
            return None
        return (self._times[self._first_live], self._times[-1])

    def index_after_time(self, time: int) -> int:
        """Global id of the first live edge with timestamp ``>= time``."""
        offset = bisect_left(self._times, time, lo=self._first_live)
        return self._base + offset

    def signature(self) -> Signature:
        """The live window's label signature, maintained online.

        The returned :class:`Signature` shares the graph's counters —
        read it before the next ingest rather than holding onto it.
        """
        return Signature(self._sig_nodes, self._sig_pairs)

    def window_events(self) -> list[SyscallEvent]:
        """Reconstruct the live window as a time-ordered event list.

        The returned events rebuild an identical window when ingested
        into a fresh :class:`StreamingGraph` (same entity keys, labels,
        and timestamps; the synthetic ``syscall`` name is not part of
        graph identity).  This is how the canary tier seeds a shadow
        service with the primary's retained window so old and new models
        are compared over the same live state.
        """
        events: list[SyscallEvent] = []
        for i in range(self._first_live, len(self._store)):
            edge = self._store[i]
            events.append(
                SyscallEvent(
                    time=edge.time,
                    syscall="window-replay",
                    src_key=self._key_of_node[edge.src],
                    src_label=self._label_of_node[edge.src],
                    dst_key=self._key_of_node[edge.dst],
                    dst_label=self._label_of_node[edge.dst],
                )
            )
        return events

    def as_temporal_graph(self, name: str = "") -> TemporalGraph:
        """Materialize the live window as a frozen batch graph."""
        graph = TemporalGraph(name=name or f"{self.name}[window]")
        remap: dict[int, int] = {}
        for i in range(self._first_live, len(self._store)):
            edge = self._store[i]
            for node in edge.endpoints():
                if node not in remap:
                    remap[node] = graph.add_node(self._label_of_node[node])
            graph.add_edge(remap[edge.src], remap[edge.dst], edge.time)
        return graph.freeze()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(self, events: Sequence[SyscallEvent]) -> IngestDelta:
        """Append a batch of events, evicting edges that slid out of window.

        Events are sorted by time within the batch; arrivals older than
        the newest sealed edge trigger tail reinsertion, and arrivals
        older than the window lower bound are dropped as late.  Returns
        the :class:`IngestDelta` the service evaluates queries against.
        """
        batch: list[_RawEvent] = sorted(
            (e.time, e.src_key, e.src_label, e.dst_key, e.dst_label)
            for e in events
        )
        for raw in batch:
            if raw[0] < 0:
                raise ServingError(f"negative event timestamp {raw[0]}")
        late = 0
        if batch and self.window_span is not None and self.num_edges:
            # an event is late only relative to data already sealed: once
            # the stream reached time T, edges before T - window_span are
            # gone and nothing arriving below that line can be matched
            # correctly anymore.  Old events arriving alongside newer ones
            # in the same batch are NOT late — eviction anchors at the
            # batch minimum so their partners stay live.
            horizon = self._times[-1] - self.window_span
            kept = [raw for raw in batch if raw[0] >= horizon]
            late = len(batch) - len(kept)
            batch = kept
        if not batch:
            self.stats.batches += 1
            self.stats.late_dropped += late
            return IngestDelta(self._next_id, 0, 0, 0, late)

        # validate the whole batch BEFORE mutating anything, so a rejected
        # ingest leaves the window exactly as it was (callers may catch
        # the error and keep streaming)
        for i in range(1, len(batch)):
            if batch[i][0] == batch[i - 1][0]:
                raise ServingError(
                    f"timestamp collision at t={batch[i][0]} within the batch; "
                    "sequentialize concurrent events first "
                    "(see repro.core.concurrent)"
                )
        for raw in batch:
            pos = bisect_left(self._times, raw[0], lo=self._first_live)
            if pos < len(self._times) and self._times[pos] == raw[0]:
                raise ServingError(
                    f"timestamp collision at t={raw[0]}: the live window "
                    "already seals that instant; sequentialize concurrent "
                    "events first (see repro.core.concurrent)"
                )

        reinserted = self._pop_tail(batch[0][0])
        if reinserted:
            batch = sorted(batch + reinserted)
        evicted = self._evict_before(batch[0][0])
        start_index = self._next_id
        for raw in batch:
            self._append(raw)

        self.stats.batches += 1
        self.stats.ingested += len(batch) - len(reinserted)
        self.stats.reinserted += len(reinserted)
        self.stats.evicted += evicted
        self.stats.late_dropped += late
        return IngestDelta(
            start_index=start_index,
            appended=len(batch),
            reinserted=len(reinserted),
            evicted=evicted,
            late=late,
            min_time=batch[0][0],
            max_time=batch[-1][0],
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _node_for(self, key: str, label: str) -> int:
        node = self._node_of_key.get(key)
        if node is None:
            node = self._next_node
            self._next_node += 1
            self._node_of_key[key] = node
            self._key_of_node[node] = key
            self._label_of_node[node] = label
            self._node_refs[node] = 0
            self._sig_nodes[label] += 1
        return node

    def _release_node(self, node: int) -> None:
        self._node_refs[node] -= 1
        if self._node_refs[node] == 0:
            label = self._label_of_node[node]
            self._sig_nodes[label] -= 1
            if not self._sig_nodes[label]:
                del self._sig_nodes[label]
            del self._node_of_key[self._key_of_node[node]]
            del self._key_of_node[node]
            del self._label_of_node[node]
            del self._node_refs[node]

    def _append(self, raw: _RawEvent) -> None:
        time, src_key, src_label, dst_key, dst_label = raw
        # ingest() validated collisions up-front; this guards the internal
        # id-order == time-order invariant against future logic errors
        assert not self.num_edges or time > self._times[-1], (
            f"append at t={time} would break time order"
        )
        src = self._node_for(src_key, src_label)
        dst = self._node_for(dst_key, dst_label)
        self._node_refs[src] += 1
        self._node_refs[dst] += 1
        self._store.append(TemporalEdge(src, dst, time))
        self._srcs.append(src)
        self._dsts.append(dst)
        self._times.append(time)
        pair = (src_label, dst_label)
        self._pair.setdefault(pair, []).append(self._next_id)
        self._sig_pairs[pair] += 1
        self._next_id += 1

    def _drop_pair_entry(self, pair: tuple[str, str], from_tail: bool) -> None:
        lst = self._pair[pair]
        if from_tail:
            lst.pop()
            if not lst or len(lst) == self._pair_dead.get(pair, 0):
                self._pair.pop(pair)
                self._pair_dead.pop(pair, None)
        else:
            dead = self._pair_dead.get(pair, 0) + 1
            if dead == len(lst):
                self._pair.pop(pair)
                self._pair_dead.pop(pair, None)
            elif dead * 2 > len(lst):
                del lst[:dead]
                self._pair_dead.pop(pair, None)
            else:
                self._pair_dead[pair] = dead
        self._sig_pairs[pair] -= 1
        if not self._sig_pairs[pair]:
            del self._sig_pairs[pair]

    def _evict_before(self, threshold_anchor: int) -> int:
        """Evict live edges older than ``threshold_anchor - window_span``."""
        if self.window_span is None:
            return 0
        threshold = threshold_anchor - self.window_span
        evicted = 0
        while self._first_live < len(self._store):
            if self._times[self._first_live] >= threshold:
                break
            edge = self._store[self._first_live]
            pair = (self._label_of_node[edge.src], self._label_of_node[edge.dst])
            self._drop_pair_entry(pair, from_tail=False)
            self._release_node(edge.src)
            self._release_node(edge.dst)
            self._first_live += 1
            evicted += 1
        if self._first_live * 2 > len(self._store) and self._first_live:
            del self._store[: self._first_live]
            del self._srcs[: self._first_live]
            del self._dsts[: self._first_live]
            del self._times[: self._first_live]
            self._base += self._first_live
            self._first_live = 0
        return evicted

    def _pop_tail(self, min_incoming_time: int) -> list[_RawEvent]:
        """Unseal live edges with time ``>= min_incoming_time`` (ooo arrival).

        Returns the unsealed edges as raw events for re-appending; their
        ids are surrendered (the next append reuses them), so id order
        keeps equaling time order after the merge.
        """
        if not self.num_edges or min_incoming_time > self._times[-1]:
            return []
        cut = bisect_left(self._times, min_incoming_time, lo=self._first_live)
        popped: list[_RawEvent] = []
        for i in range(len(self._store) - 1, cut - 1, -1):
            edge = self._store[i]
            src_label = self._label_of_node[edge.src]
            dst_label = self._label_of_node[edge.dst]
            popped.append(
                (
                    edge.time,
                    self._key_of_node[edge.src],
                    src_label,
                    self._key_of_node[edge.dst],
                    dst_label,
                )
            )
            self._drop_pair_entry((src_label, dst_label), from_tail=True)
            self._release_node(edge.src)
            self._release_node(edge.dst)
        del self._store[cut:]
        del self._srcs[cut:]
        del self._dsts[cut:]
        del self._times[cut:]
        self._next_id = self._base + len(self._store)
        popped.reverse()
        return popped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bounds = self.window_bounds()
        return (
            f"StreamingGraph(name={self.name!r}, live_edges={self.num_edges}, "
            f"live_nodes={self.num_nodes}, window={bounds})"
        )
