"""Versioned on-disk registry of deployable ``.tgm`` model bundles.

PR 5's :class:`~repro.api.model.BehaviorModel` bundles are deployable
artifacts; this module gives them somewhere to deploy *to*.  A
:class:`ModelRegistry` is a directory that stores every published bundle
content-hashed and immutable, indexes them in a manifest, and tracks the
promotion state machine the HTTP serving tier drives::

    registry/
    ├── registry.json        manifest: format tag + schema version,
    │                        entry list, the active version pointer
    ├── models/
    │   ├── v0001-9f2ab31c04d7.tgm     immutable, content-addressed
    │   └── v0002-11c0de8e21aa.tgm     (digest = sha256 of bundle bytes)
    └── .lock                cross-process mutation lock

Design points:

* **Content-hashed, append-only.**  ``save()`` is deterministic (PR 5),
  so the sha256 of the zipped bundle is a true content address:
  publishing byte-identical bundles twice is idempotent and returns the
  existing version instead of minting a new one.  Bundle files are never
  rewritten; the manifest is replaced atomically (temp file +
  ``os.replace``), so readers need no lock.
* **Concurrent-safe.**  Mutations (publish/promote) serialize on an
  ``flock`` over ``.lock`` and re-read the manifest inside the lock, so
  several processes can share one registry directory.
* **Promotion state machine.**  Every entry is ``candidate`` (published,
  never promoted), ``active`` (serving; at most one), or ``retired``
  (previously active).  ``promote(v)`` retires the current active entry
  and activates ``v`` — including a *retired* ``v``, which is how a
  rollback is expressed.  The very first publish auto-activates so a
  fresh registry is immediately servable.  The canary comparison that
  *gates* promotion is a live-stream concern and lives in the serving
  tier (:mod:`repro.serving.http`); the registry records the outcome.

All filesystem failures surface as :class:`~repro.core.errors.RegistryError`
(wrapping the ``OSError``), so callers — the CLI in particular — handle
an unwritable registry directory like any other typed library error.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.core.errors import ArtifactError, RegistryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.model import BehaviorModel

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = [
    "ModelRegistry",
    "RegistryEntry",
    "REGISTRY_SCHEMA_VERSION",
    "STATE_ACTIVE",
    "STATE_CANDIDATE",
    "STATE_RETIRED",
]

#: Manifest schema version; readers reject manifests from a newer writer.
REGISTRY_SCHEMA_VERSION = 1

_FORMAT_TAG = "tgm-registry"
_MANIFEST = "registry.json"
_MODELS_DIR = "models"
_LOCKFILE = ".lock"

STATE_CANDIDATE = "candidate"
STATE_ACTIVE = "active"
STATE_RETIRED = "retired"
_STATES = (STATE_CANDIDATE, STATE_ACTIVE, STATE_RETIRED)

#: Hex digits of the content digest carried in the bundle filename.
_DIGEST_PREFIX = 12


@dataclass(frozen=True)
class RegistryEntry:
    """One published model version: identity, provenance, and state."""

    version: int
    digest: str
    state: str
    filename: str
    created: float
    library_version: str
    behaviors: tuple[str, ...]
    queries: int
    size_bytes: int

    def as_dict(self) -> dict:
        """JSON-compatible form (the manifest's and the HTTP tier's)."""
        return {
            "version": self.version,
            "digest": self.digest,
            "state": self.state,
            "filename": self.filename,
            "created": self.created,
            "library_version": self.library_version,
            "behaviors": list(self.behaviors),
            "queries": self.queries,
            "size_bytes": self.size_bytes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RegistryEntry":
        """Decode a manifest entry; raises :class:`RegistryError` if bad."""
        try:
            entry = cls(
                version=int(payload["version"]),
                digest=str(payload["digest"]),
                state=str(payload["state"]),
                filename=str(payload["filename"]),
                created=float(payload["created"]),
                library_version=str(payload["library_version"]),
                behaviors=tuple(str(b) for b in payload["behaviors"]),
                queries=int(payload["queries"]),
                size_bytes=int(payload["size_bytes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistryError(f"malformed registry entry: {exc}") from exc
        if entry.state not in _STATES:
            raise RegistryError(
                f"registry entry v{entry.version} has unknown state "
                f"{entry.state!r} (expected one of {', '.join(_STATES)})"
            )
        return entry


class ModelRegistry:
    """A versioned store of model bundles under one root directory.

    Opening a registry creates the directory layout if absent.  All
    reads go through the manifest on disk (no instance caching), so any
    number of :class:`ModelRegistry` instances — across processes — see
    each other's publishes as soon as they land.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._models = self.root / _MODELS_DIR
        self._manifest_path = self.root / _MANIFEST
        self._lock_path = self.root / _LOCKFILE
        try:
            self._models.mkdir(parents=True, exist_ok=True)
            self._lock_path.touch(exist_ok=True)
            if not self._manifest_path.exists():
                self._write_manifest({"entries": [], "active": None})
        except OSError as exc:
            raise RegistryError(
                f"cannot open model registry at {self.root}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # read surface
    # ------------------------------------------------------------------
    def entries(self) -> list[RegistryEntry]:
        """All published versions, ascending."""
        manifest = self._read_manifest()
        return [RegistryEntry.from_dict(e) for e in manifest["entries"]]

    def entry(self, version: int) -> RegistryEntry:
        """One version's entry; :class:`RegistryError` if unknown."""
        for entry in self.entries():
            if entry.version == version:
                return entry
        known = ", ".join(f"v{e.version}" for e in self.entries()) or "<empty>"
        raise RegistryError(
            f"registry {self.root} has no version {version} (it holds: {known})"
        )

    @property
    def active_version(self) -> int | None:
        """The currently promoted version (``None`` on a fresh registry)."""
        active = self._read_manifest()["active"]
        return int(active) if active is not None else None

    @property
    def latest_version(self) -> int | None:
        """The newest published version (``None`` when empty)."""
        entries = self.entries()
        return entries[-1].version if entries else None

    def path_for(self, version: int) -> Path:
        """Filesystem path of one version's immutable bundle file."""
        return self._models / self.entry(version).filename

    def load(self, version: int) -> "BehaviorModel":
        """Load one version's :class:`~repro.api.model.BehaviorModel`.

        Verifies the stored bytes still match the manifest digest before
        parsing — a registry is long-lived shared state, and serving a
        silently corrupted bundle would be far worse than failing.
        """
        # local import: repro.api imports the serving implementations, so
        # the artifact layer must be pulled in lazily to stay acyclic
        from repro.api.model import BehaviorModel

        entry = self.entry(version)
        path = self._models / entry.filename
        try:
            payload = path.read_bytes()
        except OSError as exc:
            raise RegistryError(
                f"registry bundle v{version} unreadable at {path}: {exc}"
            ) from exc
        digest = hashlib.sha256(payload).hexdigest()
        if digest != entry.digest:
            raise RegistryError(
                f"registry bundle v{version} is corrupt: stored digest "
                f"{digest[:_DIGEST_PREFIX]} != manifest digest "
                f"{entry.digest[:_DIGEST_PREFIX]}"
            )
        return BehaviorModel.load(path)

    def describe(self) -> str:
        """Human-readable listing (newest first)."""
        entries = self.entries()
        if not entries:
            return f"registry {self.root}: empty"
        lines = [f"registry {self.root}: {len(entries)} version(s)"]
        for entry in reversed(entries):
            lines.append(
                f"  v{entry.version:<4d} {entry.state:9s} "
                f"{entry.digest[:_DIGEST_PREFIX]}  "
                f"{len(entry.behaviors)} behaviors / {entry.queries} queries  "
                f"({entry.size_bytes} bytes, repro {entry.library_version})"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def publish(self, model: "BehaviorModel | str | Path") -> RegistryEntry:
        """Publish a model (object, bundle dir, or ``.tgm``); idempotent.

        The bundle is written content-hashed under ``models/``; if the
        exact bytes are already published, the existing entry is
        returned and nothing is minted.  The first version ever
        published auto-activates so a fresh registry is servable.
        """
        from repro.api.model import BehaviorModel

        if not isinstance(model, BehaviorModel):
            model = BehaviorModel.load(model)

        # render the canonical bytes outside the lock (deterministic save
        # => digest is a pure content address)
        staging = self._models / f".staging-{os.getpid()}.tgm"
        try:
            model.save(staging)
            payload = staging.read_bytes()
        except ArtifactError:
            self._discard(staging)
            raise
        except OSError as exc:
            self._discard(staging)
            raise RegistryError(
                f"cannot write bundle into registry {self.root}: {exc}"
            ) from exc
        digest = hashlib.sha256(payload).hexdigest()

        try:
            with self._locked():
                manifest = self._read_manifest()
                entries = [RegistryEntry.from_dict(e) for e in manifest["entries"]]
                for entry in entries:
                    if entry.digest == digest:
                        self._discard(staging)
                        return entry
                version = entries[-1].version + 1 if entries else 1
                filename = f"v{version:04d}-{digest[:_DIGEST_PREFIX]}.tgm"
                os.replace(staging, self._models / filename)
                entry = RegistryEntry(
                    version=version,
                    digest=digest,
                    state=STATE_CANDIDATE,
                    filename=filename,
                    created=time.time(),
                    library_version=model.library_version,
                    behaviors=model.behaviors,
                    queries=sum(len(r.patterns) for r in model.records.values()),
                    size_bytes=len(payload),
                )
                if manifest["active"] is None:
                    entry = replace(entry, state=STATE_ACTIVE)
                    manifest["active"] = version
                manifest["entries"] = [e.as_dict() for e in entries] + [
                    entry.as_dict()
                ]
                self._write_manifest(manifest)
                return entry
        except OSError as exc:
            raise RegistryError(
                f"cannot publish into registry {self.root}: {exc}"
            ) from exc
        finally:
            self._discard(staging)

    def promote(self, version: int) -> RegistryEntry:
        """Activate ``version``; the previously active entry retires.

        Any published version may be promoted — a candidate moving
        forward, or a retired entry rolling back.  Promoting the active
        version is a no-op.  The *gate* (canary comparison) belongs to
        the serving tier; see
        :meth:`repro.serving.http.DetectionServer.promote`.
        """
        try:
            with self._locked():
                manifest = self._read_manifest()
                entries = [RegistryEntry.from_dict(e) for e in manifest["entries"]]
                by_version = {e.version: e for e in entries}
                if version not in by_version:
                    known = ", ".join(f"v{v}" for v in by_version) or "<empty>"
                    raise RegistryError(
                        f"cannot promote unknown version {version} "
                        f"(registry holds: {known})"
                    )
                if by_version[version].state == STATE_ACTIVE:
                    return by_version[version]
                updated: list[RegistryEntry] = []
                for entry in entries:
                    if entry.version == version:
                        entry = replace(entry, state=STATE_ACTIVE)
                    elif entry.state == STATE_ACTIVE:
                        entry = replace(entry, state=STATE_RETIRED)
                    updated.append(entry)
                manifest["entries"] = [e.as_dict() for e in updated]
                manifest["active"] = version
                self._write_manifest(manifest)
                return replace(by_version[version], state=STATE_ACTIVE)
        except OSError as exc:
            raise RegistryError(
                f"cannot promote v{version} in registry {self.root}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @contextmanager
    def _locked(self):
        """Exclusive cross-process mutation lock over ``.lock``."""
        if fcntl is None:  # pragma: no cover - non-POSIX
            yield
            return
        with open(self._lock_path, "a+") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _read_manifest(self) -> dict:
        try:
            text = self._manifest_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise RegistryError(
                f"cannot read registry manifest {self._manifest_path}: {exc}"
            ) from exc
        try:
            manifest = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RegistryError(
                f"corrupt registry manifest {self._manifest_path}: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("format") != _FORMAT_TAG:
            tag = manifest.get("format") if isinstance(manifest, dict) else None
            raise RegistryError(
                f"{self._manifest_path}: not a model-registry manifest "
                f"(format tag {tag!r})"
            )
        schema = manifest.get("schema_version")
        if not isinstance(schema, int) or schema < 1:
            raise RegistryError(
                f"{self._manifest_path}: invalid schema_version {schema!r}"
            )
        if schema > REGISTRY_SCHEMA_VERSION:
            raise RegistryError(
                f"{self._manifest_path}: manifest schema v{schema} is newer "
                f"than this library supports (v{REGISTRY_SCHEMA_VERSION}); "
                "upgrade repro to use this registry"
            )
        if not isinstance(manifest.get("entries"), list):
            raise RegistryError(
                f"{self._manifest_path}: manifest entries must be a list"
            )
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        payload = {
            "format": _FORMAT_TAG,
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "entries": manifest["entries"],
            "active": manifest["active"],
        }
        tmp = self._manifest_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self._manifest_path)

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError as exc:  # pragma: no cover - already moved/gone
            if exc.errno != errno.ENOENT:
                raise

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModelRegistry({str(self.root)!r})"


def registry_at(
    registry: "ModelRegistry | str | Path", behaviors: Sequence[str] | None = None
) -> ModelRegistry:
    """Coerce a path-or-registry argument into a :class:`ModelRegistry`."""
    del behaviors  # reserved; keeps the signature stable for callers
    if isinstance(registry, ModelRegistry):
        return registry
    return ModelRegistry(registry)
