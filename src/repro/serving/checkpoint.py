"""Durability for the streaming detection tier: snapshots + event WAL.

A :class:`~repro.serving.service.DetectionService` is pure in-memory
state — a crash loses the sliding window and with it every detection
straddling the restart.  This module makes a service recoverable with
two on-disk artifacts per service directory:

**Generational snapshots** (``snapshot-<gen>.snap``, gen >= 1): a
checksummed JSON capture of everything detection output depends on —
the live window (as replayable events), the query slate, the dedup
state (``_seen``), the batch clock, and the additive stats counters.
Snapshots are published atomically (tmp file + ``os.replace`` + fsync),
and a corrupt snapshot is *detected* (CRC mismatch, truncation, bad
JSON) and skipped: recovery falls back to the previous generation.

**A write-ahead event log per generation** (``wal-<gen>.log``, gen >= 0;
gen 0 is the *genesis* WAL covering history before the first snapshot).
Every ingest batch is appended — length-prefixed and CRC32-checksummed —
*before* it reaches the service, so recovery can replay the tail that
postdates the newest usable snapshot.  A torn tail record (partial
header, short payload, CRC mismatch — the power-loss signature) is
truncated away; the corresponding batch was never acknowledged, so the
caller resubmits it.

**Recovery** (:func:`recover_service`) = newest valid snapshot +
ascending replay of every WAL generation >= that snapshot.  Because a
WAL is rotated exactly when its successor snapshot is cut, the
generations tile the history with no gaps or overlaps: falling back
from a corrupt ``snapshot-3`` to ``snapshot-2`` replays ``wal-2`` then
``wal-3`` and reaches the same state.  The recovered service is
**span-identical** at every batch boundary to one that never crashed:
the window events rebuild an identical graph (global edge ids renumber,
but id order == time order on both sides), ``_seen`` and the batch
counter are restored exactly, and replayed batches re-derive exactly
the detections the pre-crash service reported (``tests/test_recovery.py``
asserts this property under randomized kill points).

What is *not* restored exactly: wall-clock derived stats (latency
reservoir, ``matching_seconds`` of replayed batches) — counters are
carried through best-effort and documented as such.

:class:`CheckpointedService` wraps a service + store behind the
:class:`~repro.serving.Ingestor` protocol (WAL-append before every
ingest, snapshot every ``checkpoint_every`` batches, final checkpoint
on ``close()``) — the single-service durability deployment
``Workspace.serve(checkpoint_dir=...)`` returns.  The fleet uses the
same store per (shard, tenant) directory; see
:mod:`repro.serving.fleet`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.core.errors import CheckpointError, ServingError
from repro.core.faults import FaultPlan
from repro.datasets.io import event_from_dict
from repro.serving.registry import BehaviorQuery, query_from_dict, query_to_dict
from repro.serving.service import Detection, DetectionService
from repro.serving.streaming import StreamStats
from repro.syscall.events import SyscallEvent

__all__ = [
    "CheckpointStore",
    "CheckpointedService",
    "RecoveredService",
    "recover_service",
    "DEFAULT_CHECKPOINT_EVERY",
    "SNAPSHOT_FORMAT_VERSION",
]

#: Snapshot a service every N ingested batches, by default.
DEFAULT_CHECKPOINT_EVERY = 64

#: Snapshot payload format; recovery refuses payloads from a newer writer.
SNAPSHOT_FORMAT_VERSION = 1

#: Snapshot generations (and their WALs) retained after a new cut.
_KEEP_GENERATIONS = 2

#: ``(payload_length, crc32)`` framing every WAL record and snapshot.
_HEADER = struct.Struct("<II")

_SNAPSHOT_FMT = "snapshot-%08d.snap"
_WAL_FMT = "wal-%08d.log"

#: Column order of the packed event encoding used in WAL records and
#: snapshot window captures.  Columnar beats one-dict-per-event by ~7x
#: on encode (six primitive lists amortize the JSON encoder's per-object
#: dispatch), which is what keeps the WAL tax on the hot ingest path
#: inside the benchmark's overhead ceiling (``bench_recovery.py``).
_EVENT_COLUMNS = (
    "time",
    "syscall",
    "src_key",
    "src_label",
    "dst_key",
    "dst_label",
)


def _events_to_columns(events: Sequence[SyscallEvent]) -> dict:
    # direct attribute reads, not getattr-by-name: this runs on the hot
    # ingest path once per WAL append and the string lookup doubles it
    return {
        "time": [e.time for e in events],
        "syscall": [e.syscall for e in events],
        "src_key": [e.src_key for e in events],
        "src_label": [e.src_label for e in events],
        "dst_key": [e.dst_key for e in events],
        "dst_label": [e.dst_label for e in events],
    }


def _events_from_columns(columns: dict) -> list[SyscallEvent]:
    return [
        SyscallEvent(*row)
        for row in zip(*(columns[column] for column in _EVENT_COLUMNS))
    ]


def _record_events(record: dict) -> list[SyscallEvent]:
    """Decode one WAL record's event batch (packed or legacy row form)."""
    if "columns" in record:
        return _events_from_columns(record["columns"])
    return [event_from_dict(entry) for entry in record.get("events", [])]


def _frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _read_frames(data: bytes) -> tuple[list[bytes], bool]:
    """Split framed records; returns ``(payloads, clean)``.

    ``clean`` is False when the byte stream ends in a torn record —
    a partial header, a payload shorter than its length prefix, or a
    CRC mismatch.  Everything before the tear is returned; everything
    from the tear on is discarded (a tear mid-file also invalidates the
    bytes after it, since framing is lost).
    """
    payloads: list[bytes] = []
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            return payloads, False
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        payload = data[start : start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            return payloads, False
        payloads.append(payload)
        offset = start + length
    return payloads, True


def _fsync_dir(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class RecoveredService:
    """What :func:`recover_service` hands back.

    ``replayed`` holds one entry per WAL record re-ingested on top of the
    restored snapshot: ``(seq, epoch, detections, num_events)`` in replay
    order.  These batches were (possibly) already acknowledged before the
    crash — their detections are *re-derived*, not new; callers decide
    whether to re-deliver them (the fleet supervisor uses them to answer
    still-pending batches and counts the rest as recovered).
    """

    service: DetectionService
    store: "CheckpointStore"
    generation: int
    replayed: list[tuple[int, str, list[Detection], int]] = field(
        default_factory=list
    )
    truncated_records: int = 0
    corrupt_snapshots: int = 0
    rejected_records: int = 0

    @property
    def recovered_events(self) -> int:
        """Events re-ingested from the WAL tail."""
        return sum(entry[3] for entry in self.replayed)


class CheckpointStore:
    """One service's durability directory: snapshot cutter + WAL appender.

    The store owns the generation counter: :meth:`append` writes to the
    WAL of the current generation, :meth:`snapshot` cuts the next
    snapshot, rotates the WAL, and prunes generations older than the
    last :data:`_KEEP_GENERATIONS`.  ``faults`` hooks the two torn-state
    sites (``wal.torn``, ``snapshot.corrupt``) for the chaos tests.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        faults: FaultPlan | None = None,
        fault_scope: dict | None = None,
        generation: int | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.faults = faults
        self._scope = fault_scope or {}
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint directory {self.directory}: {exc}"
            ) from exc
        if generation is None:
            generation = self.latest_snapshot_generation()
        self.generation = generation
        self._wal = None
        self.appended_records = 0
        self.snapshots_cut = 0

    # -- paths ----------------------------------------------------------
    def snapshot_path(self, generation: int) -> Path:
        return self.directory / (_SNAPSHOT_FMT % generation)

    def wal_path(self, generation: int) -> Path:
        return self.directory / (_WAL_FMT % generation)

    def snapshot_generations(self) -> list[int]:
        """Existing snapshot generations, ascending."""
        gens = []
        for path in self.directory.glob("snapshot-*.snap"):
            try:
                gens.append(int(path.stem.split("-")[1]))
            except (IndexError, ValueError):  # pragma: no cover - stray file
                continue
        return sorted(gens)

    def wal_generations(self) -> list[int]:
        """Existing WAL generations, ascending."""
        gens = []
        for path in self.directory.glob("wal-*.log"):
            try:
                gens.append(int(path.stem.split("-")[1]))
            except (IndexError, ValueError):  # pragma: no cover - stray file
                continue
        return sorted(gens)

    def latest_snapshot_generation(self) -> int:
        """Newest on-disk snapshot generation (0 = none yet)."""
        gens = self.snapshot_generations()
        return gens[-1] if gens else 0

    # -- WAL ------------------------------------------------------------
    def _wal_handle(self):
        if self._wal is None:
            self._wal = open(self.wal_path(self.generation), "ab")
        return self._wal

    def append(
        self, seq: int, events: Sequence[SyscallEvent], epoch: str = ""
    ) -> int:
        """Durably log one ingest batch *before* it mutates the service.

        ``seq`` and ``epoch`` are opaque caller metadata (the fleet's
        submit sequence + parent-lifetime token) carried through to
        :attr:`RecoveredService.replayed` so a supervisor can match
        replayed batches against its own in-flight bookkeeping.

        Returns the record's start offset; if the service then *rejects*
        the batch (timestamp collision, poisoned batch), the caller
        passes it to :meth:`truncate_to` so a batch that never mutated
        the service is never replayed into the recovered one either.
        """
        payload = json.dumps(
            {
                "seq": seq,
                "epoch": epoch,
                "columns": _events_to_columns(events),
            },
            separators=(",", ":"),
        ).encode("utf-8")
        frame = _frame(payload)
        wal = self._wal_handle()
        offset = wal.tell()
        if self.faults is not None and self.faults.fire(
            "wal.torn", **self._scope
        ):
            # simulate power loss mid-write: half the frame reaches the
            # disk, then the process "dies" (the raised error stands in
            # for the crash — callers treat it as fatal)
            wal.write(frame[: max(_HEADER.size + 1, len(frame) // 2)])
            wal.flush()
            raise CheckpointError(
                "injected fault at wal.torn: torn WAL append"
            )
        wal.write(frame)
        wal.flush()
        self.appended_records += 1
        return offset

    def truncate_to(self, offset: int) -> None:
        """Roll the newest record back (the service rejected its batch)."""
        wal = self._wal_handle()
        wal.flush()
        wal.truncate(offset)
        self.appended_records -= 1

    def iter_wal(self, generation: int) -> Iterator[dict]:
        """Decode one WAL generation's records (tears silently truncate)."""
        records, _clean = self.read_wal(generation)
        return iter(records)

    def read_wal(self, generation: int) -> tuple[list[dict], bool]:
        path = self.wal_path(generation)
        if not path.exists():
            return [], True
        data = path.read_bytes()
        payloads, clean = _read_frames(data)
        records = []
        for payload in payloads:
            try:
                records.append(json.loads(payload.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError):
                # framing said the bytes are intact, so this is a writer
                # bug rather than a tear; stop trusting the rest
                return records, False
        return records, clean

    # -- snapshots ------------------------------------------------------
    def snapshot(self, service: DetectionService) -> int:
        """Cut the next snapshot generation; returns its number.

        Publication is atomic (tmp + ``os.replace``), the WAL rotates to
        the new generation immediately after, and generations older than
        the retention horizon are pruned — snapshots *and* WALs together,
        so every retained snapshot still has its full replay tail.
        """
        generation = self.generation + 1
        payload = json.dumps(
            _service_to_payload(service, generation), separators=(",", ":")
        ).encode("utf-8")
        path = self.snapshot_path(generation)
        tmp = path.with_suffix(".tmp")
        try:
            with open(tmp, "wb") as fh:
                fh.write(_frame(payload))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            _fsync_dir(self.directory)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write snapshot {path}: {exc}"
            ) from exc
        if self.faults is not None and self.faults.fire(
            "snapshot.corrupt", **self._scope
        ):
            # flip bytes inside the published payload: the file exists
            # and is plausibly sized, but its CRC no longer matches —
            # the bit-rot shape recovery must detect and skip
            data = bytearray(path.read_bytes())
            mid = len(data) // 2
            data[mid] ^= 0xFF
            data[-1] ^= 0xFF
            path.write_bytes(bytes(data))
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        self.generation = generation
        # touch the new WAL so the generation tiling stays contiguous on
        # disk even if no batch arrives before the next crash
        self._wal_handle()
        self.snapshots_cut += 1
        self._prune()
        return generation

    def load_snapshot(self, generation: int) -> dict | None:
        """Decode one snapshot; ``None`` when missing or corrupt."""
        path = self.snapshot_path(generation)
        if not path.exists():
            return None
        payloads, clean = _read_frames(path.read_bytes())
        if not clean or len(payloads) != 1:
            return None
        try:
            payload = json.loads(payloads[0].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("format", 0) > SNAPSHOT_FORMAT_VERSION:
            raise CheckpointError(
                f"snapshot {path} has format v{payload.get('format')}, newer "
                f"than this library supports (v{SNAPSHOT_FORMAT_VERSION})"
            )
        return payload

    def _prune(self) -> None:
        # retention counts *valid* snapshots only: a corrupt generation
        # must not shadow the older one recovery would fall back to
        valid = [
            gen
            for gen in self.snapshot_generations()
            if self.load_snapshot(gen) is not None
        ]
        keep = valid[-_KEEP_GENERATIONS:]
        if not keep:
            return
        horizon = keep[0]
        for gen in self.snapshot_generations():
            if gen < horizon:
                self.snapshot_path(gen).unlink(missing_ok=True)
        for gen in self.wal_generations():
            if gen < horizon:
                self.wal_path(gen).unlink(missing_ok=True)

    @property
    def fresh(self) -> bool:
        """Whether the directory holds no recoverable state yet."""
        if self.snapshot_generations():
            return False
        return not any(
            self.wal_path(gen).stat().st_size for gen in self.wal_generations()
        )

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None


# ----------------------------------------------------------------------
# snapshot <-> service codec
# ----------------------------------------------------------------------
def _service_to_payload(service: DetectionService, generation: int) -> dict:
    return {
        "format": SNAPSHOT_FORMAT_VERSION,
        "generation": generation,
        "window_span": service._explicit_window,
        "use_prefilter": service.use_prefilter,
        "reloads": service.reloads,
        "queries": [query_to_dict(query) for _id, query in service.registry],
        "window_columns": _events_to_columns(service.graph.window_events()),
        "seen": {
            str(query_id): sorted(list(span) for span in spans)
            for query_id, spans in service._seen.items()
        },
        "stats": service.stats.counters(),
        "graph_stats": asdict(service.graph.stats),
    }


def _service_from_payload(
    payload: dict,
    *,
    faults: FaultPlan | None = None,
    fault_scope: dict | None = None,
) -> DetectionService:
    service = DetectionService(
        window_span=payload["window_span"],
        use_prefilter=payload["use_prefilter"],
        faults=faults,
        fault_scope=fault_scope,
    )
    service.register_all(
        [query_from_dict(entry) for entry in payload["queries"]]
    )
    if "window_columns" in payload:
        events = _events_from_columns(payload["window_columns"])
    else:  # legacy row-per-event snapshots
        events = [event_from_dict(entry) for entry in payload["window_events"]]
    if events:
        # rebuild the window in one batch: eviction anchors at the batch
        # minimum, so nothing is evicted or late-dropped, and the edges
        # reappear in time order under fresh (renumbered) global ids —
        # id order == time order exactly as in the snapshotted graph
        service.graph.window_span = service.window_span
        service.graph.ingest(events)
    service.graph.stats = StreamStats(**payload["graph_stats"])
    for key, value in payload["stats"].items():
        setattr(service.stats, key, value)
    service._seen = {
        int(query_id): {tuple(span) for span in spans}
        for query_id, spans in payload["seen"].items()
    }
    service.reloads = payload["reloads"]
    return service


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
def recover_service(
    directory: str | Path,
    *,
    queries: Sequence[BehaviorQuery] | None = None,
    window_span: int | None = None,
    use_prefilter: bool = True,
    faults: FaultPlan | None = None,
    fault_scope: dict | None = None,
) -> RecoveredService:
    """Rebuild a service from its checkpoint directory.

    Restores the newest snapshot whose checksum verifies (falling back
    across corrupt generations, down to a fresh service built from the
    ``queries``/``window_span``/``use_prefilter`` arguments when no
    snapshot survives), then replays every WAL generation from the
    restored one forward, in order.  Torn WAL tails are truncated and
    counted; a replayed batch the service rejects (e.g. a timestamp
    collision the original ingest also rejected) is skipped and counted
    — the pre-crash service refused the same batch, so skipping it
    preserves equivalence.
    """
    store = CheckpointStore(
        directory, faults=faults, fault_scope=fault_scope, generation=0
    )
    corrupt = 0
    restored: DetectionService | None = None
    generation = 0
    for gen in reversed(store.snapshot_generations()):
        payload = store.load_snapshot(gen)
        if payload is None:
            corrupt += 1
            continue
        restored = _service_from_payload(
            payload, faults=faults, fault_scope=fault_scope
        )
        generation = gen
        break
    if restored is None:
        restored = DetectionService(
            window_span=window_span,
            use_prefilter=use_prefilter,
            faults=faults,
            fault_scope=fault_scope,
        )
        if queries:
            restored.register_all(queries)
        generation = 0

    recovered = RecoveredService(
        service=restored,
        store=store,
        generation=generation,
        corrupt_snapshots=corrupt,
    )
    wal_gens = [g for g in store.wal_generations() if g >= generation]
    for gen in sorted(wal_gens):
        records, clean = store.read_wal(gen)
        if not clean:
            recovered.truncated_records += 1
            # a tear invalidates the rest of this generation; later
            # generations only exist if a snapshot was cut after the
            # tear, which cannot happen after a crash — but guard anyway
            if gen != wal_gens[-1]:  # pragma: no cover - torn mid-history
                break
        for record in records:
            events = _record_events(record)
            try:
                detections = restored.ingest(events)
            except ServingError:
                # the original ingest rejected this batch too (state
                # unchanged then and now) — skip, equivalence holds
                recovered.rejected_records += 1
                continue
            recovered.replayed.append(
                (
                    record.get("seq", -1),
                    record.get("epoch", ""),
                    detections,
                    len(events),
                )
            )
    # a torn tail must not survive into the next lifetime's WAL: rewrite
    # the newest generation with only its intact records so appended
    # frames land after a clean boundary
    if recovered.truncated_records:
        last = wal_gens[-1]
        records, _clean = store.read_wal(last)
        data = b"".join(
            _frame(json.dumps(r, separators=(",", ":")).encode("utf-8"))
            for r in records
        )
        store.wal_path(last).write_bytes(data)
    store.generation = max(generation, store.latest_snapshot_generation())
    return recovered


class CheckpointedService:
    """A :class:`DetectionService` with durability, behind ``Ingestor``.

    Every :meth:`ingest` appends the batch to the WAL first, then feeds
    the wrapped service; every ``checkpoint_every`` batches (and on
    ``close()``) a snapshot is cut.  :meth:`recover` rebuilds the whole
    wrapper from the directory — the crash-restart entry point.
    """

    def __init__(
        self,
        service: DetectionService,
        directory: str | Path,
        *,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        store: CheckpointStore | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ServingError("checkpoint_every must be >= 1")
        self.service = service
        if store is None:
            store = CheckpointStore(directory, faults=faults)
            if not store.fresh:
                raise ServingError(
                    f"checkpoint directory {store.directory} already holds "
                    "state from an earlier run; use "
                    "CheckpointedService.recover() to resume it (or point "
                    "at an empty directory)"
                )
        self.store = store
        self.checkpoint_every = checkpoint_every
        self._since_snapshot = 0
        self._next_seq = 0
        self._closed = False
        if store.fresh:
            # make the slate durable before the first batch: recovery
            # from a crash before the first scheduled snapshot must
            # still know which queries to evaluate during WAL replay
            self.checkpoint()

    @classmethod
    def recover(
        cls,
        directory: str | Path,
        *,
        queries: Sequence[BehaviorQuery] | None = None,
        window_span: int | None = None,
        use_prefilter: bool = True,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        faults: FaultPlan | None = None,
    ) -> tuple["CheckpointedService", RecoveredService]:
        """Restore snapshot + WAL tail; returns the wrapper + the report."""
        recovered = recover_service(
            directory,
            queries=queries,
            window_span=window_span,
            use_prefilter=use_prefilter,
            faults=faults,
        )
        wrapper = cls(
            recovered.service,
            directory,
            checkpoint_every=checkpoint_every,
            store=recovered.store,
        )
        if recovered.replayed:
            wrapper._next_seq = (
                max(entry[0] for entry in recovered.replayed) + 1
            )
        return wrapper, recovered

    # -- Ingestor -------------------------------------------------------
    def register_all(self, queries: Sequence[BehaviorQuery]) -> list[int]:
        ids = self.service.register_all(queries)
        # the slate is part of the snapshot payload: keep it durable
        self.checkpoint()
        return ids

    def ingest(self, events: Sequence[SyscallEvent]) -> list[Detection]:
        seq = self._next_seq
        self._next_seq += 1
        offset = self.store.append(seq, events)
        try:
            detections = self.service.ingest(events)
        except ServingError:
            # the batch never mutated the service — scrub its WAL record
            # so recovery does not replay (and apply!) a rejected batch
            self.store.truncate_to(offset)
            raise
        self._since_snapshot += 1
        if self._since_snapshot >= self.checkpoint_every:
            self.checkpoint()
        return detections

    def replay(
        self, events: Sequence[SyscallEvent], batch_size: int
    ) -> Iterator[tuple[int, list[Detection]]]:
        from repro.syscall.collector import iter_event_batches

        for index, batch in enumerate(iter_event_batches(events, batch_size)):
            yield index, self.ingest(batch)

    @property
    def stats(self):
        return self.service.stats

    @property
    def window_span(self) -> int | None:
        return self.service.window_span

    @property
    def use_prefilter(self) -> bool:
        return self.service.use_prefilter

    @property
    def reloads(self) -> int:
        return self.service.reloads

    def reload(self, queries: Sequence[BehaviorQuery]) -> list[int]:
        ids = self.service.reload(queries)
        # the slate is part of the snapshot payload: cut one immediately
        # so a crash after the reload recovers the new slate, not the old
        self.checkpoint()
        return ids

    def checkpoint(self) -> int:
        """Force a snapshot cut now; returns the new generation."""
        generation = self.store.snapshot(self.service)
        self._since_snapshot = 0
        return generation

    def health(self) -> dict:
        return {
            "status": "ok",
            "kind": "checkpointed-service",
            "checkpoint_dir": str(self.store.directory),
            "generation": self.store.generation,
            "wal_records_since_snapshot": self._since_snapshot,
        }

    def close(self) -> None:
        """Cut a final snapshot and release the WAL handle; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.service.stats.batches or self.store.appended_records:
            try:
                self.checkpoint()
            except CheckpointError:  # pragma: no cover - disk full etc.
                pass
        self.store.close()
        self.service.close()
