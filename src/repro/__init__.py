"""repro — reproduction of "Behavior Query Discovery in System-Generated
Temporal Graphs" (Zong et al., VLDB 2015).

The package ships four layers:

* :mod:`repro.core` — temporal graphs/patterns and the TGMiner
  discriminative pattern miner with all pruning machinery;
* :mod:`repro.syscall` — a syscall-activity simulator standing in for the
  paper's instrumented servers (training/test data generation);
* :mod:`repro.query` — behavior-query search over monitoring graphs and
  precision/recall evaluation;
* :mod:`repro.baselines` — the Ntemp (non-temporal gSpan-style) and
  NodeSet (discriminative keyword) accuracy baselines.

Quickstart::

    from repro import TGMiner, MinerConfig
    from repro.syscall import build_training_data

    data = build_training_data(seed=7)
    sshd = data.behavior("sshd-login")
    result = TGMiner(MinerConfig(max_edges=6)).mine(sshd, data.background)
    print(result.best[0].pattern.describe())
"""

from repro.core import (
    GTest,
    InformationGain,
    LogRatio,
    MinedPattern,
    MinerConfig,
    MiningResult,
    MiningStats,
    ScoreFunction,
    TemporalEdge,
    TemporalGraph,
    TemporalPattern,
    TGMiner,
    miner_variant,
)

__version__ = "1.0.0"

__all__ = [
    "TemporalEdge",
    "TemporalGraph",
    "TemporalPattern",
    "TGMiner",
    "MinerConfig",
    "MinedPattern",
    "MiningResult",
    "MiningStats",
    "miner_variant",
    "ScoreFunction",
    "LogRatio",
    "GTest",
    "InformationGain",
    "__version__",
]
