"""repro — reproduction of "Behavior Query Discovery in System-Generated
Temporal Graphs" (Zong et al., VLDB 2015).

The package ships five layers:

* :mod:`repro.core` — temporal graphs/patterns and the TGMiner
  discriminative pattern miner with all pruning machinery;
* :mod:`repro.syscall` — a syscall-activity simulator standing in for the
  paper's instrumented servers (training/test data generation);
* :mod:`repro.query` — behavior-query search over monitoring graphs and
  precision/recall evaluation;
* :mod:`repro.serving` — the streaming half: a sliding-window
  :class:`~repro.serving.streaming.StreamingGraph`, the multi-query
  :class:`~repro.serving.registry.QueryRegistry`, the
  :class:`~repro.serving.service.DetectionService` facade, the sharded
  multi-tenant :class:`~repro.serving.fleet.DetectionFleet` — all
  behind one :class:`~repro.serving.Ingestor` protocol — plus the
  versioned :class:`~repro.serving.model_registry.ModelRegistry` and
  the HTTP tier (:func:`~repro.serving.http.serve_http`) with hot
  reload and canary promotion;
* :mod:`repro.api` — the stable SDK tying them together:
  :class:`~repro.api.workspace.Workspace` (generate → mine → query →
  serve) and :class:`~repro.api.model.BehaviorModel`, the versioned
  artifact bundle a mining process saves and a serving process loads.

(:mod:`repro.baselines` adds the paper's Ntemp and NodeSet accuracy
baselines; :mod:`repro.experiments` the benchmark harness.)

Quickstart::

    from repro import Workspace

    ws = Workspace(seed=7)
    train = ws.generate(instances_per_behavior=10, background_graphs=30)
    model = ws.mine(train, behaviors=["sshd-login"], top_k=3)
    print(model.describe())

    model.save("sshd.tgm")          # one deployable artifact ...
    service = ws.serve(model)       # ... served in any process
    for batch in event_batches:
        for detection in service.ingest(batch):
            print(detection.query, detection.span)
"""

from repro._version import __version__
from repro.api import (
    ArtifactError,
    BehaviorEvaluation,
    BehaviorModel,
    BehaviorRecord,
    EvaluationReport,
    HttpError,
    ModelRegistry,
    RegistryEntry,
    RegistryError,
    ServingHandle,
    StatsView,
    Workspace,
    serve_http,
    stats_from_dict,
)
from repro.core import (
    GTest,
    InformationGain,
    LogRatio,
    MinedPattern,
    MinerConfig,
    MiningResult,
    MiningStats,
    ReproError,
    ScoreFunction,
    TemporalEdge,
    TemporalGraph,
    TemporalPattern,
    TGMiner,
    miner_variant,
)
from repro.core.errors import DatasetError
from repro.datasets import CorpusStore
from repro.query import QueryEngine
from repro.serving import (
    BehaviorQuery,
    Detection,
    DetectionFleet,
    DetectionService,
    FleetDetection,
    FleetStats,
    Ingestor,
    QueryRegistry,
    ServiceStats,
    StreamingGraph,
)

__all__ = [
    # data model + mining core
    "TemporalEdge",
    "TemporalGraph",
    "TemporalPattern",
    "TGMiner",
    "MinerConfig",
    "MinedPattern",
    "MiningResult",
    "MiningStats",
    "miner_variant",
    "ScoreFunction",
    "LogRatio",
    "GTest",
    "InformationGain",
    # batch query side
    "QueryEngine",
    # disk-backed corpus store
    "CorpusStore",
    # serving layer
    "BehaviorQuery",
    "Detection",
    "DetectionFleet",
    "DetectionService",
    "FleetDetection",
    "FleetStats",
    "Ingestor",
    "QueryRegistry",
    "ServiceStats",
    "ServingHandle",
    "StatsView",
    "StreamingGraph",
    "stats_from_dict",
    # model registry + HTTP tier
    "ModelRegistry",
    "RegistryEntry",
    "serve_http",
    # SDK (repro.api)
    "Workspace",
    "BehaviorModel",
    "BehaviorRecord",
    "BehaviorEvaluation",
    "EvaluationReport",
    # errors + metadata
    "ReproError",
    "ArtifactError",
    "DatasetError",
    "RegistryError",
    "HttpError",
    "__version__",
]
