"""Consecutive pattern growth with embedding bookkeeping (paper Section 3).

Consecutive growth appends one edge with pattern timestamp ``|E|+1``; in
the data this means a match of the grown pattern extends a match of the
parent by one data edge whose timestamp is strictly larger than every
already-matched edge — i.e. an edge of the parent match's *residual
graph*.  The miner therefore never re-matches patterns from scratch: each
pattern carries its embedding table and children inherit extended
embeddings from one pass over the parent's residual edges — on the
default kernel path a CSR-adjacency walk touching only the edges
incident to each embedding (:mod:`repro.core.kernel`), on the retained
legacy path a linear scan of every residual edge.

Three growth options (Figure 5) keep T-connectivity and cover the whole
pattern space (Theorem 1):

* forward  — ``(u, v)`` with ``u`` mapped, ``v`` new;
* backward — ``(u, v)`` with ``u`` new, ``v`` mapped;
* inward   — both endpoints mapped (multi-edges allowed).

Extension keys identify children uniquely (Lemma 3): two distinct keys
always denote non-identical patterns, and each pattern has exactly one
parent (its edge-prefix), so the depth-first search is repetition-free
without canonical labeling.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, NamedTuple, Sequence

from repro.core.graph import TemporalGraph
from repro.core.kernel import GraphKernel
from repro.core.pattern import TemporalPattern

__all__ = [
    "Embedding",
    "EmbeddingTable",
    "ExtensionKey",
    "seed_patterns",
    "extend_embeddings",
    "child_pattern",
    "cut_points",
]


class Embedding(NamedTuple):
    """A match footprint: node images plus the last matched edge index."""

    nodes: tuple[int, ...]
    last_index: int


# graph index -> set of embeddings of one pattern in that graph.
EmbeddingTable = dict[int, set[Embedding]]

# ("f", src_pattern_node, new_dst_label) | ("b", new_src_label,
# dst_pattern_node) | ("i", src_pattern_node, dst_pattern_node)
ExtensionKey = tuple[str, object, object]


def seed_patterns(
    graphs: Sequence[TemporalGraph],
    use_index: bool = False,
) -> dict[tuple[str, str], EmbeddingTable]:
    """Enumerate one-edge patterns and their embeddings over ``graphs``.

    Returns a mapping from ``(src_label, dst_label)`` to the embedding
    table of the corresponding one-edge pattern.  Self-loop data edges are
    skipped: the pattern model has no self-loops (injective node mapping
    over two distinct pattern nodes can never cover one).

    With ``use_index`` the enumeration walks each frozen graph's one-edge
    label-pair index (:meth:`TemporalGraph.label_pair_index`) instead of
    scanning its edge list, grouping candidate edges per seed pattern
    directly; unfrozen graphs fall back to the scan.  Both paths produce
    identical tables.
    """
    seeds: dict[tuple[str, str], EmbeddingTable] = {}
    for gid, graph in enumerate(graphs):
        edges = graph.edges
        if use_index and graph.frozen:
            for key, idxs in graph.label_pair_index().items():
                for idx in idxs:
                    edge = edges[idx]
                    if edge.src == edge.dst:
                        continue
                    table = seeds.setdefault(key, {})
                    table.setdefault(gid, set()).add(
                        Embedding((edge.src, edge.dst), idx)
                    )
            continue
        labels = graph.labels
        for idx, edge in enumerate(edges):
            if edge.src == edge.dst:
                continue
            key = (labels[edge.src], labels[edge.dst])
            table = seeds.setdefault(key, {})
            table.setdefault(gid, set()).add(Embedding((edge.src, edge.dst), idx))
    return seeds


def extend_embeddings(
    graphs: Sequence[TemporalGraph],
    embeddings: EmbeddingTable,
    kernels: Sequence[GraphKernel] | None = None,
    *,
    use_kernel: bool = True,
) -> dict[ExtensionKey, EmbeddingTable]:
    """Produce all children's embeddings from the parents' residual edges.

    For every embedding, every data edge after its cut point that touches
    at least one mapped node yields a child embedding under the forward /
    backward / inward extension key describing it at pattern level.

    Two implementations produce identical tables:

    * the **kernel path** (default for frozen graphs) walks the CSR
      adjacency of the embedding's mapped nodes, bisecting each incident
      edge run to the cut point — work proportional to the *incident*
      residual edges, not the whole residual graph.  ``kernels`` supplies
      prebuilt per-graph kernels (the miner passes its dataset kernels);
      otherwise each frozen graph's cached kernel is used.
    * the **legacy scan** (``use_kernel=False``, and any unfrozen graph)
      visits every residual edge per embedding — kept callable for the
      cross-implementation equivalence tests and the kernel ablation.
    """
    out: dict[ExtensionKey, EmbeddingTable] = {}
    for gid, emb_set in embeddings.items():
        graph = graphs[gid]
        if use_kernel and graph.frozen:
            kernel = kernels[gid] if kernels is not None else graph.kernel()
            _extend_in_kernel(kernel, gid, emb_set, out)
        else:
            _extend_in_scan(graph, gid, emb_set, out)
    return out


def _extend_in_kernel(
    kernel: GraphKernel,
    gid: int,
    emb_set: set[Embedding],
    out: dict[ExtensionKey, EmbeddingTable],
) -> None:
    """Adjacency-driven extension over one graph's kernel arrays.

    Each edge incident to the embedding is reached exactly once: via the
    out-run of its (mapped) source for forward/inward growth, via the
    in-run of its (mapped) destination — with mapped sources skipped —
    for backward growth.  Self-loops are skipped as in the scan path.
    The far endpoint of each CSR slot is read from the kernel's
    ``out_dsts``/``in_srcs`` twin lists, not from the edge columns —
    list reads beat buffer scalar access in this loop (the columns'
    buffer layout earns its keep in the vectorized matcher and the
    shared-memory corpus, not here).

    Emission is the dominant cost at data scale, so the inner loops cut
    it down: rows are built through the C-level ``tuple.__new__`` (they
    are still :class:`Embedding` instances) and accumulated in a per-graph
    ``key -> rows`` dict that is folded into the shared output once at
    the end — one dict probe per row instead of two ``setdefault`` hops.
    """
    out_indptr = kernel.out_indptr
    out_indices = kernel.out_indices
    out_dsts = kernel.out_dsts
    in_indptr = kernel.in_indptr
    in_indices = kernel.in_indices
    in_srcs = kernel.in_srcs
    labels = kernel.node_labels
    row = tuple.__new__
    local: dict[ExtensionKey, set[Embedding]] = {}
    local_get = local.get
    for emb in emb_set:
        nodes = emb[0]
        cut = emb[1]
        node_to_pattern = {dn: pi for pi, dn in enumerate(nodes)}
        mapped = node_to_pattern.get
        for pi, dn in enumerate(nodes):
            hi = out_indptr[dn + 1]
            for j in range(bisect_right(out_indices, cut, out_indptr[dn], hi), hi):
                dst = out_dsts[j]
                if dst == dn:
                    continue
                idx = out_indices[j]
                dst_p = mapped(dst)
                if dst_p is None:
                    key: ExtensionKey = ("f", pi, labels[dst])
                    new_nodes = nodes + (dst,)
                else:
                    key = ("i", pi, dst_p)
                    new_nodes = nodes
                rows = local_get(key)
                if rows is None:
                    rows = local[key] = set()
                rows.add(row(Embedding, (new_nodes, idx)))
            hi = in_indptr[dn + 1]
            for j in range(bisect_right(in_indices, cut, in_indptr[dn], hi), hi):
                src = in_srcs[j]
                if src == dn or mapped(src) is not None:
                    continue
                idx = in_indices[j]
                key = ("b", labels[src], pi)
                rows = local_get(key)
                if rows is None:
                    rows = local[key] = set()
                rows.add(row(Embedding, (nodes + (src,), idx)))
    for key, rows in local.items():
        out.setdefault(key, {})[gid] = rows


def _extend_in_scan(
    graph: TemporalGraph,
    gid: int,
    emb_set: set[Embedding],
    out: dict[ExtensionKey, EmbeddingTable],
) -> None:
    """Legacy object path: one scan over all residual edges per embedding."""
    edges = graph.edges
    labels = graph.labels
    n_edges = len(edges)
    for emb in emb_set:
        node_to_pattern = {dn: pi for pi, dn in enumerate(emb.nodes)}
        for idx in range(emb.last_index + 1, n_edges):
            edge = edges[idx]
            src_p = node_to_pattern.get(edge.src)
            dst_p = node_to_pattern.get(edge.dst)
            if src_p is None and dst_p is None:
                continue
            if edge.src == edge.dst:
                continue
            if dst_p is None:
                key: ExtensionKey = ("f", src_p, labels[edge.dst])
                new_nodes = emb.nodes + (edge.dst,)
            elif src_p is None:
                key = ("b", labels[edge.src], dst_p)
                new_nodes = emb.nodes + (edge.src,)
            else:
                key = ("i", src_p, dst_p)
                new_nodes = emb.nodes
            table = out.setdefault(key, {})
            table.setdefault(gid, set()).add(Embedding(new_nodes, idx))


def child_pattern(pattern: TemporalPattern, key: ExtensionKey) -> TemporalPattern:
    """Instantiate the child pattern denoted by an extension key."""
    kind, a, b = key
    if kind == "f":
        return pattern.grow_forward(int(a), str(b))
    if kind == "b":
        return pattern.grow_backward(str(a), int(b))
    if kind == "i":
        return pattern.grow_inward(int(a), int(b))
    raise ValueError(f"unknown extension kind {kind!r}")


def cut_points(embeddings: EmbeddingTable) -> Iterable[tuple[int, int]]:
    """Yield ``(graph id, last edge index)`` per embedding (with repeats).

    Rows are consumed positionally (``emb[1]``), which is both the fast
    path for the tuple-of-int rows and agnostic to whether a row was
    built by the kernel or the legacy extension.
    """
    for gid, emb_set in embeddings.items():
        for emb in emb_set:
            yield (gid, emb[1])


def sort_extension_keys(keys: Iterable[ExtensionKey]) -> list[ExtensionKey]:
    """Deterministic ordering of mixed int/str extension keys."""
    return sorted(keys, key=lambda k: (k[0], str(k[1]), str(k[2])))
