"""Discriminative score functions ``F(x, y)`` (paper Problem 1).

A valid score function must satisfy *partial (anti-)monotonicity*:

* for fixed positive frequency ``x``, a smaller negative frequency ``y``
  gives a larger score;
* for fixed ``y``, a larger ``x`` gives a larger score.

The paper names three members of the family, all implemented here:

* :class:`LogRatio` — ``F(x, y) = log(x / (y + ε))``, the function adopted
  from GAIA [11] and used as the default in the experiments;
* :class:`GTest` — the G-test statistic of leap search [30];
* :class:`InformationGain` — reduction of class entropy by the pattern
  indicator feature.

Every function exposes ``upper_bound(x) = F(x, 0)``, the (theoretically
tight, practically weak — Section 4.1) bound on any supergraph's score
used by the naive pruning condition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ScoreFunction", "LogRatio", "GTest", "InformationGain", "resolve_score"]


class ScoreFunction:
    """Interface for discriminative score functions."""

    name: str = "abstract"

    def score(self, pos_freq: float, neg_freq: float) -> float:
        """Score a pattern with the given positive/negative frequencies."""
        raise NotImplementedError

    def upper_bound(self, pos_freq: float) -> float:
        """Largest score any supergraph could reach: ``F(pos_freq, 0)``.

        Supergraphs can only lose positive frequency (anti-monotone) and
        their negative frequency is at best 0, so with partial
        (anti-)monotonicity ``F(x', y') <= F(x, 0)``.
        """
        return self.score(pos_freq, 0.0)

    def __call__(self, pos_freq: float, neg_freq: float) -> float:
        return self.score(pos_freq, neg_freq)


@dataclass(frozen=True)
class LogRatio(ScoreFunction):
    """``F(x, y) = log(x / (y + ε))`` with ``ε = 1e-6`` as in the paper."""

    epsilon: float = 1e-6
    name: str = "log-ratio"

    def score(self, pos_freq: float, neg_freq: float) -> float:
        if pos_freq <= 0.0:
            return float("-inf")
        return math.log(pos_freq / (neg_freq + self.epsilon))


@dataclass(frozen=True)
class GTest(ScoreFunction):
    """G-test score: ``2 n_pos * [x ln(x/y') + (1-x) ln((1-x)/(1-y'))]``.

    ``y`` is clamped into ``[ε, 1-ε]`` so the statistic stays finite and
    partially (anti-)monotone on the discriminative region ``x > y``; the
    leading factor uses the positive-set size when provided, else 1.
    """

    n_pos: int = 1
    epsilon: float = 1e-6
    name: str = "g-test"

    def score(self, pos_freq: float, neg_freq: float) -> float:
        x = min(max(pos_freq, self.epsilon), 1.0 - self.epsilon)
        y = min(max(neg_freq, self.epsilon), 1.0 - self.epsilon)
        g = x * math.log(x / y) + (1.0 - x) * math.log((1.0 - x) / (1.0 - y))
        # Signed statistic: patterns more frequent in the negative set
        # must rank below patterns more frequent in the positive set.
        signed = g if pos_freq >= neg_freq else -g
        return 2.0 * self.n_pos * signed


@dataclass(frozen=True)
class InformationGain(ScoreFunction):
    """Information gain of the pattern-presence feature on the class label.

    Classes are weighted by the set sizes ``n_pos`` / ``n_neg`` (defaults
    model balanced sets).  Patterns present mostly in positive graphs
    maximize the gain; the score is negated when the pattern skews
    negative so that partial (anti-)monotonicity holds where the miner
    operates (``x >= y``).
    """

    n_pos: int = 1
    n_neg: int = 1
    name: str = "info-gain"

    def score(self, pos_freq: float, neg_freq: float) -> float:
        total = self.n_pos + self.n_neg
        p_class = self.n_pos / total
        base = _entropy(p_class)
        # P(pattern), P(class=positive | pattern present/absent).
        p_pattern = (pos_freq * self.n_pos + neg_freq * self.n_neg) / total
        if p_pattern <= 0.0 or p_pattern >= 1.0:
            return 0.0
        p_pos_given_present = (pos_freq * self.n_pos) / (p_pattern * total)
        p_pos_given_absent = ((1.0 - pos_freq) * self.n_pos) / (
            (1.0 - p_pattern) * total
        )
        gain = base - (
            p_pattern * _entropy(p_pos_given_present)
            + (1.0 - p_pattern) * _entropy(p_pos_given_absent)
        )
        return gain if pos_freq >= neg_freq else -gain


def _entropy(p: float) -> float:
    """Binary entropy in nats, safe at the endpoints."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log(p) + (1.0 - p) * math.log(1.0 - p))


def resolve_score(
    spec: str | ScoreFunction,
    n_pos: int = 1,
    n_neg: int = 1,
) -> ScoreFunction:
    """Resolve a score-function spec (name or instance) to an instance.

    Recognized names: ``"log-ratio"``, ``"g-test"``, ``"info-gain"``.
    """
    if isinstance(spec, ScoreFunction):
        return spec
    normalized = spec.lower().replace("_", "-")
    if normalized in ("log-ratio", "logratio", "log"):
        return LogRatio()
    if normalized in ("g-test", "gtest"):
        return GTest(n_pos=n_pos)
    if normalized in ("info-gain", "infogain", "ig"):
        return InformationGain(n_pos=n_pos, n_neg=n_neg)
    raise ValueError(f"unknown score function: {spec!r}")
