"""Temporal graph patterns.

A temporal graph pattern (paper Section 2) is a temporal graph whose
timestamps are *aligned*: the ``i``-th edge in temporal order carries
timestamp ``i`` (1-based), so only the total edge order is kept.

:class:`TemporalPattern` is immutable and stored in **normalized form**:

* edges are listed in temporal order (edge ``i`` has timestamp ``i+1``);
* node ids follow first-visit order under that traversal (for each edge
  the source is visited before the destination).

Lemma 1 of the paper guarantees the match mapping between two identical
patterns is unique, so two patterns are temporally identical (``=t``) iff
their normalized forms are equal — pattern equality and hashing are O(size)
with no isomorphism search.

Patterns grow only through *consecutive growth* (Section 3): the new edge
receives timestamp ``|E|+1`` and must keep the pattern T-connected, which
the three growth constructors (:meth:`TemporalPattern.grow_forward`,
:meth:`TemporalPattern.grow_backward`, :meth:`TemporalPattern.grow_inward`)
enforce by construction.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterator, Sequence

from repro.core.errors import PatternError
from repro.core.graph import TemporalGraph

__all__ = ["TemporalPattern"]


class TemporalPattern:
    """An immutable, normalized T-connected temporal graph pattern.

    Parameters
    ----------
    labels:
        Node labels in first-visit order.
    edges:
        ``(src, dst)`` node-id pairs in temporal order; the ``i``-th entry
        implicitly carries timestamp ``i + 1``.
    _trusted:
        Internal flag set by the growth constructors, which produce
        normalized patterns by construction and skip re-validation.
    """

    __slots__ = ("_labels", "_edges", "_hash", "__dict__")

    def __init__(
        self,
        labels: Sequence[str],
        edges: Sequence[tuple[int, int]],
        _trusted: bool = False,
    ) -> None:
        self._labels: tuple[str, ...] = tuple(labels)
        self._edges: tuple[tuple[int, int], ...] = tuple(
            (int(u), int(v)) for u, v in edges
        )
        self._hash: int | None = None
        if not _trusted:
            self._validate()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def single_edge(cls, src_label: str, dst_label: str) -> "TemporalPattern":
        """The one-edge pattern ``src_label -> dst_label``.

        A self-loop-like pattern with equal labels still has two distinct
        nodes; use ids 0 and 1.
        """
        return cls((src_label, dst_label), ((0, 1),), _trusted=True)

    @classmethod
    def from_graph(cls, graph: TemporalGraph) -> "TemporalPattern":
        """Align ``graph`` into a pattern (timestamps -> 1..|E|).

        Node ids are renumbered to first-visit order.  Raises
        :class:`PatternError` if the graph is not T-connected, because only
        T-connected patterns participate in mining (Section 2).
        """
        if not graph.frozen:
            graph.freeze()
        remap: dict[int, int] = {}
        labels: list[str] = []
        edges: list[tuple[int, int]] = []

        def visit(node: int) -> int:
            if node not in remap:
                remap[node] = len(labels)
                labels.append(graph.label(node))
            return remap[node]

        for edge in graph.edges:
            edges.append((visit(edge.src), visit(edge.dst)))
        return cls(labels, edges)

    # ------------------------------------------------------------------
    # growth (consecutive growth, Section 3)
    # ------------------------------------------------------------------
    def grow_forward(self, src: int, new_label: str) -> "TemporalPattern":
        """Forward growth: new edge from existing ``src`` to a new node."""
        if not (0 <= src < self.num_nodes):
            raise PatternError(f"forward growth from unknown node {src}")
        labels = self._labels + (new_label,)
        edges = self._edges + ((src, self.num_nodes),)
        return TemporalPattern(labels, edges, _trusted=True)

    def grow_backward(self, new_label: str, dst: int) -> "TemporalPattern":
        """Backward growth: new edge from a new node to existing ``dst``."""
        if not (0 <= dst < self.num_nodes):
            raise PatternError(f"backward growth into unknown node {dst}")
        labels = self._labels + (new_label,)
        edges = self._edges + ((self.num_nodes, dst),)
        return TemporalPattern(labels, edges, _trusted=True)

    def grow_inward(self, src: int, dst: int) -> "TemporalPattern":
        """Inward growth: new edge between two existing nodes.

        Multi-edges (including repeats of an existing ``(src, dst)`` pair)
        are allowed, mirroring Figure 5 of the paper.
        """
        n = self.num_nodes
        if not (0 <= src < n and 0 <= dst < n):
            raise PatternError(f"inward growth with unknown endpoint ({src}, {dst})")
        if src == dst:
            raise PatternError("self-loop edges are not part of the pattern model")
        return TemporalPattern(self._labels, self._edges + ((src, dst),), _trusted=True)

    def prefix(self, num_edges: int) -> "TemporalPattern":
        """The pattern formed by the first ``num_edges`` edges.

        Every prefix of a T-connected pattern is itself T-connected, so
        this is the (unique) ancestor at that depth in the growth tree.
        """
        if not (1 <= num_edges <= self.num_edges):
            raise PatternError(f"prefix size {num_edges} out of range")
        edges = self._edges[:num_edges]
        used = max(max(u, v) for u, v in edges) + 1
        return TemporalPattern(self._labels[:used], edges, _trusted=True)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def labels(self) -> tuple[str, ...]:
        """Node labels in first-visit order."""
        return self._labels

    @property
    def edges(self) -> tuple[tuple[int, int], ...]:
        """``(src, dst)`` pairs in temporal order (timestamp = index + 1)."""
        return self._edges

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of edges; also the largest timestamp."""
        return len(self._edges)

    def label(self, node: int) -> str:
        """Label of pattern node ``node``."""
        return self._labels[node]

    def label_set(self) -> frozenset[str]:
        """Set of distinct node labels."""
        return frozenset(self._labels)

    @cached_property
    def out_degrees(self) -> tuple[int, ...]:
        """Out-degree per node (multi-edges counted)."""
        deg = [0] * self.num_nodes
        for u, _v in self._edges:
            deg[u] += 1
        return tuple(deg)

    @cached_property
    def in_degrees(self) -> tuple[int, ...]:
        """In-degree per node (multi-edges counted)."""
        deg = [0] * self.num_nodes
        for _u, v in self._edges:
            deg[v] += 1
        return tuple(deg)

    def iter_timed_edges(self) -> Iterator[tuple[int, int, int]]:
        """Yield ``(src, dst, timestamp)`` with aligned timestamps."""
        for i, (u, v) in enumerate(self._edges):
            yield (u, v, i + 1)

    def as_temporal_graph(self, name: str = "") -> TemporalGraph:
        """Materialize this pattern as a frozen :class:`TemporalGraph`."""
        graph = TemporalGraph(name=name)
        for label in self._labels:
            graph.add_node(label)
        for u, v, t in self.iter_timed_edges():
            graph.add_edge(u, v, t)
        return graph.freeze()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n = self.num_nodes
        if n == 0 or not self._edges:
            raise PatternError("patterns must have at least one edge")
        seen: set[int] = set()
        expected_next = 0
        for idx, (u, v) in enumerate(self._edges):
            if not (0 <= u < n and 0 <= v < n):
                raise PatternError(f"edge {idx} references unknown node")
            if u == v:
                raise PatternError("self-loop edges are not part of the pattern model")
            for node in (u, v):
                if node not in seen:
                    if node != expected_next:
                        raise PatternError(
                            "node ids must follow first-visit order "
                            f"(saw {node}, expected {expected_next})"
                        )
                    seen.add(node)
                    expected_next += 1
            if idx > 0 and u not in seen_before and v not in seen_before:
                raise PatternError("pattern is not T-connected")
            seen_before = set(seen)
        if expected_next != n:
            raise PatternError("pattern has isolated nodes")
        # T-connectivity: after each edge, the touched-node set must stay
        # connected.  First-visit ordering already forbids an edge whose
        # both endpoints are new (except the first edge), which is exactly
        # the T-connectivity condition for incremental growth.
        for idx in range(1, len(self._edges)):
            u, v = self._edges[idx]
            prior = {x for e in self._edges[:idx] for x in e}
            if u not in prior and v not in prior:
                raise PatternError("pattern is not T-connected")

    # ------------------------------------------------------------------
    # identity (=t) — Lemma 1 / Lemma 2
    # ------------------------------------------------------------------
    def key(self) -> tuple:
        """A hashable identity key; equal keys iff patterns match (``=t``)."""
        return (self._labels, self._edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalPattern):
            return NotImplemented
        return self._labels == other._labels and self._edges == other._edges

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._labels, self._edges))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edge_strs = ", ".join(
            f"{self._labels[u]}({u})->{self._labels[v]}({v})@{t}"
            for u, v, t in self.iter_timed_edges()
        )
        return f"TemporalPattern[{edge_strs}]"

    def describe(self) -> str:
        """Human-readable multi-line rendering used by examples/benchmarks."""
        lines = [f"pattern with {self.num_nodes} nodes, {self.num_edges} edges:"]
        for u, v, t in self.iter_timed_edges():
            lines.append(f"  t={t}: {self._labels[u]} ({u}) -> {self._labels[v]} ({v})")
        return "\n".join(lines)
