"""Residual graphs and residual-graph-set equivalence (paper Section 4.2/4.4).

For a match ``G'`` of a pattern in data graph ``G``, the *residual graph*
``R(G, G')`` keeps exactly the edges of ``G`` whose timestamp exceeds the
largest matched timestamp — the edges still available for consecutive
growth.  Because edges are totally ordered, a residual graph is fully
determined by the pair ``(graph id, cut index)`` where the cut index is
the data-edge position right after the last matched edge.  A pattern's
*residual graph set* ``R(G, g)`` is the set of such pairs over all matches
in all graphs of ``G``.

Lemma 6 shows that for ``g1 ⊆t g2`` the residual sets are equal iff the
integers ``I(G, g) = Σ_{R ∈ R(G,g)} |R|`` are equal, so TGMiner compares
residual sets in O(1) after a single linear scan.  The ``LinearScan``
baseline instead stores the cut-pair sets explicitly and compares them
element by element.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.graph import TemporalGraph
from repro.core.kernel import GraphKernel

__all__ = ["ResidualSummary", "summarize_residuals", "linear_scan_equal"]


@dataclass(frozen=True)
class ResidualSummary:
    """Pre-computed residual information of one pattern w.r.t. one graph set.

    Attributes
    ----------
    i_value:
        ``I(G, g)`` — total edge count across the (distinct) residual
        graphs; the integer-compressed representation of the set.
    cut_pairs:
        Sorted tuple of ``(graph index, cut edge index)`` pairs uniquely
        identifying each residual graph.  Only materialized when the
        linear-scan baseline needs it (``None`` otherwise).
    label_set:
        The residual node label set ``L(G, g)`` — union of labels of
        nodes incident to residual edges (used by subgraph pruning's
        condition (3)).  Label *strings* on the legacy path; dense
        interned label *ids* when the summary was built over kernels
        (the miner's default) — only membership/intersection against
        sets from the same interner is meaningful either way.
    """

    i_value: int
    cut_pairs: tuple[tuple[int, int], ...] | None
    label_set: frozenset[str] | frozenset[int]


def summarize_residuals(
    graphs: Sequence[TemporalGraph],
    cut_points: Iterable[tuple[int, int]],
    keep_cut_pairs: bool = False,
    with_labels: bool = True,
    kernels: Sequence[GraphKernel] | None = None,
) -> ResidualSummary:
    """Aggregate residual information from match cut points.

    Parameters
    ----------
    graphs:
        The data graph set ``G`` (indexable by graph id).
    cut_points:
        ``(graph id, last matched edge index)`` per match; duplicates are
        collapsed because residual graphs form a *set*.
    keep_cut_pairs:
        Materialize the explicit cut-pair tuple for linear-scan equality.
    with_labels:
        Compute the residual node label set (skippable for negative sets,
        where subgraph pruning never consults labels).
    kernels:
        Per-graph kernels sharing one dataset interner (the miner's
        path).  When given, ``label_set`` holds interned label ids from
        the kernels' precomputed suffix sets; ``i_value`` and
        ``cut_pairs`` are identical either way.
    """
    distinct = sorted(set(cut_points))
    i_value = 0
    labels: set = set()
    if kernels is not None:
        for gid, cut in distinct:
            kernel = kernels[gid]
            i_value += kernel.num_edges - (cut + 1)
            if with_labels:
                labels |= kernel.suffix_label_ids[cut + 1]
    else:
        for gid, cut in distinct:
            graph = graphs[gid]
            i_value += graph.num_edges - (cut + 1)
            if with_labels:
                labels |= graph.suffix_label_set(cut + 1)
    return ResidualSummary(
        i_value=i_value,
        cut_pairs=tuple(distinct) if keep_cut_pairs else None,
        label_set=frozenset(labels) if with_labels else frozenset(),
    )


def linear_scan_equal(
    left: tuple[tuple[int, int], ...], right: tuple[tuple[int, int], ...]
) -> bool:
    """Element-wise residual-set comparison (the ``LinearScan`` baseline).

    Deliberately compares pair by pair instead of hashing whole tuples so
    the per-test cost is linear in the residual-set size, as in the
    paper's baseline.
    """
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if a != b:
            return False
    return True
