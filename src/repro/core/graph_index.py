"""Graph-index based temporal matcher (the ``PruneGI`` baseline and the
query-engine core).

The matcher indexes *one-edge substructures* of the data graph — for every
ordered label pair the time-sorted list of data edges carrying those
endpoint labels — and joins partial matches edge by edge in temporal
order, exactly the strategy of the paper's ``PruneGI`` baseline (which
adapts the subgraph-matching engine of [38] to temporal constraints).

Joining in temporal order makes the total-order constraint free: pattern
edge ``k+1`` may only join data edges whose index is strictly larger than
the index matched for edge ``k``, so each partial match carries a frontier
index and candidate lists are consumed via binary search.

Two client roles:

* ``PruneGI`` miner variant: pattern-vs-pattern tests materialize the
  larger pattern as a temporal graph and (re)build its index per test —
  deliberately keeping the per-test index-construction overhead the paper
  identifies as the baseline's weakness.
* :mod:`repro.query.engine`: pattern-vs-log search over large graphs,
  where the index is built once and reused, with an optional time-window
  cap (``max_span``) reflecting bounded behavior durations.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.brute import Match
from repro.core.graph import TemporalGraph
from repro.core.pattern import TemporalPattern

__all__ = ["find_matches", "GraphIndexTester", "match_span"]


def find_matches(
    pattern: TemporalPattern,
    graph: TemporalGraph,
    max_span: int | None = None,
    limit: int | None = None,
) -> Iterator[Match]:
    """Yield matches of ``pattern`` in ``graph`` via index joins.

    Parameters
    ----------
    pattern:
        The temporal pattern (behavior query skeleton) to search for.
    graph:
        A frozen temporal graph; its one-edge label-pair index is used.
    max_span:
        When given, a match's time span (last matched timestamp minus
        first matched timestamp) may not exceed this value.  Behavior
        instances execute within a bounded wall-clock window, so the query
        engine passes the longest observed behavior duration here.
    limit:
        Stop after this many matches.
    """
    if not graph.frozen:
        graph.freeze()
    m = pattern.num_edges
    if m > graph.num_edges:
        return
    p_edges = pattern.edges
    p_labels = pattern.labels
    edges = graph.edges
    candidate_lists = []
    for u, v in p_edges:
        lst = graph.edges_between(p_labels[u], p_labels[v])
        if not lst:
            return
        candidate_lists.append(lst)

    assignment: dict[int, int] = {}
    used: set[int] = set()
    chosen: list[int] = []
    emitted = 0

    def join(edge_pos: int, frontier: int, start_time: int) -> Iterator[Match]:
        nonlocal emitted
        if edge_pos == m:
            nodes = tuple(assignment[i] for i in range(pattern.num_nodes))
            yield Match(nodes, tuple(chosen))
            emitted += 1
            return
        pu, pv = p_edges[edge_pos]
        cands = candidate_lists[edge_pos]
        lo = bisect_right(cands, frontier)
        for pos in range(lo, len(cands)):
            idx = cands[pos]
            edge = edges[idx]
            if max_span is not None and edge_pos > 0:
                if edge.time - start_time > max_span:
                    break
            du, dv = edge.src, edge.dst
            bind_u = pu not in assignment
            bind_v = pv not in assignment
            if not bind_u and assignment[pu] != du:
                continue
            if not bind_v and assignment[pv] != dv:
                continue
            if bind_u and du in used:
                continue
            if bind_v and (dv in used or (bind_u and du == dv)):
                continue
            if bind_u:
                assignment[pu] = du
                used.add(du)
            if bind_v:
                assignment[pv] = dv
                used.add(dv)
            chosen.append(idx)
            first_time = edge.time if edge_pos == 0 else start_time
            yield from join(edge_pos + 1, idx, first_time)
            chosen.pop()
            if bind_u:
                del assignment[pu]
                used.discard(du)
            if bind_v:
                del assignment[pv]
                used.discard(dv)
            if limit is not None and emitted >= limit:
                return

    yield from join(0, -1, 0)


def match_span(match: Match, graph: TemporalGraph) -> tuple[int, int]:
    """Return ``(start_time, end_time)`` of a match in ``graph``."""
    first = graph.edges[match.edge_indexes[0]].time
    last = graph.edges[match.edge_indexes[-1]].time
    return (first, last)


@dataclass
class GIStats:
    """Counters for the efficiency experiments (index-build overhead)."""

    tests: int = 0
    indexes_built: int = 0


@dataclass
class GraphIndexTester:
    """Pattern-vs-pattern tester used by the ``PruneGI`` miner variant.

    Every test materializes the *big* pattern as a temporal graph and
    freezes it, which (re)builds its one-edge index — reproducing the
    per-discovered-pattern index-construction overhead the paper blames
    for ``PruneGI``'s slowdown.
    """

    stats: GIStats = field(default_factory=GIStats)

    def contains(self, small: TemporalPattern, big: TemporalPattern) -> bool:
        """Return whether ``small ⊆t big``."""
        return self.mapping(small, big) is not None

    def mapping(
        self, small: TemporalPattern, big: TemporalPattern
    ) -> tuple[int, ...] | None:
        """Return a witness node mapping for ``small ⊆t big`` or ``None``."""
        self.stats.tests += 1
        if small.num_edges > big.num_edges or small.num_nodes > big.num_nodes:
            return None
        big_graph = big.as_temporal_graph()
        self.stats.indexes_built += 1
        match = next(find_matches(small, big_graph, limit=1), None)
        if match is None:
            return None
        return match.nodes
