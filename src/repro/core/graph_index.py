"""Graph-index based temporal matcher (the ``PruneGI`` baseline and the
query-engine core).

The matcher indexes *one-edge substructures* of the data graph — for every
ordered label pair the time-sorted list of data edges carrying those
endpoint labels — and joins partial matches edge by edge in temporal
order, exactly the strategy of the paper's ``PruneGI`` baseline (which
adapts the subgraph-matching engine of [38] to temporal constraints).

Joining in temporal order makes the total-order constraint free: pattern
edge ``k+1`` may only join data edges whose index is strictly larger than
the index matched for edge ``k``, so each partial match carries a frontier
index and candidate lists are consumed via binary search.

Two client roles:

* ``PruneGI`` miner variant: pattern-vs-pattern tests materialize the
  larger pattern as a temporal graph and (re)build its index per test —
  deliberately keeping the per-test index-construction overhead the paper
  identifies as the baseline's weakness.
* :mod:`repro.query.engine`: pattern-vs-log search over large graphs,
  where the index is built once and reused, with an optional time-window
  cap (``max_span``) reflecting bounded behavior durations.

Besides the matcher, this module hosts the **candidate-pruning prefilter**
used across the mining stack: :class:`Signature` summarizes a pattern or
graph as its node-label multiset plus edge-label-pair multiset, and
:class:`CandidateFilter` caches signatures and answers "can ``small``
possibly embed in ``big``?" in O(|signature|) via multiset containment —
a sound necessary condition for any injective label-preserving mapping.
The miner consults it before every subgraph-isomorphism test, the VF2
matcher seeds its per-node candidate lists from the filter's label index,
and the query engine rejects pattern-vs-log searches whose signature
cannot occur in the log at all.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator, Protocol, Sequence, runtime_checkable

from repro.core.brute import Match
from repro.core.buffers import active_numpy, as_ndarray
from repro.core.graph import TemporalEdge, TemporalGraph
from repro.core.kernel import LabelInterner
from repro.core.pattern import TemporalPattern

__all__ = [
    "DEFAULT_MATCH_LIMIT",
    "EdgeIndexedSource",
    "find_matches",
    "GraphIndexTester",
    "match_span",
    "Signature",
    "CandidateFilter",
    "FilterStats",
    "pattern_signature",
    "graph_signature",
    "signature_contains",
]


#: Safety valve on match enumeration, shared by the batch engine and the
#: streaming service so their span sets stay identical up to the same
#: cutoff (a pathological query with more matches than this is truncated
#: the same way on both paths).
DEFAULT_MATCH_LIMIT = 200_000


@runtime_checkable
class EdgeIndexedSource(Protocol):
    """What :func:`find_matches` needs from a data graph.

    A frozen :class:`TemporalGraph` satisfies this, and so does the live
    :class:`~repro.serving.streaming.StreamingGraph`, whose edge ids are
    global ingest positions (``edges[id]`` stays valid for any live id
    even after older edges were evicted).  ``edges_between`` lists must be
    sorted ascending and id order must equal time order — the temporal
    join relies on it for the frontier bisects and the span-cap break.
    """

    @property
    def num_edges(self) -> int: ...

    @property
    def edges(self) -> Sequence[TemporalEdge]: ...

    def edges_between(self, src_label: str, dst_label: str) -> Sequence[int]: ...

    # Optional fast path (duck-typed, not part of the required protocol):
    # an ``edge_arrays()`` method returning ``(base, src, dst, time)``
    # flat columns — position ``id - base`` describes edge ``id`` — lets
    # the matcher join over compact arrays instead of edge objects.
    # Frozen TemporalGraphs provide it from their kernel; StreamingGraph
    # maintains the columns incrementally across ingest/evict.


def find_matches(
    pattern: TemporalPattern,
    graph: "TemporalGraph | EdgeIndexedSource",
    max_span: int | None = None,
    limit: int | None = None,
    start_index: int = 0,
    min_last_index: int = 0,
    *,
    use_kernel: bool = True,
) -> Iterator[Match]:
    """Yield matches of ``pattern`` in ``graph`` via index joins.

    This is the one matching core shared by the batch
    :class:`~repro.query.engine.QueryEngine` and the streaming
    :class:`~repro.serving.streaming.StreamingGraph` — any *edge-indexed
    source* works: an object exposing ``num_edges``, an ``edges`` sequence
    indexable by edge id, and ``edges_between(src_label, dst_label)``
    returning time-sorted edge ids.

    Parameters
    ----------
    pattern:
        The temporal pattern (behavior query skeleton) to search for.
    graph:
        A frozen temporal graph (frozen on demand) or any other
        edge-indexed source such as a live :class:`StreamingGraph`.
    max_span:
        When given, a match's time span (last matched timestamp minus
        first matched timestamp) may not exceed this value.  Behavior
        instances execute within a bounded wall-clock window, so the query
        engine passes the longest observed behavior duration here.
    limit:
        Stop after this many matches.
    start_index:
        Only consider data edges with id ``>= start_index``.  Streaming
        sources pass their window start (evicted ids below it must never
        be touched) tightened to the earliest edge that could still start
        an in-cap match ending in the new delta.
    min_last_index:
        Require the match's *last* edge to have id ``>= min_last_index``.
        Incremental evaluation passes the first newly-ingested id: every
        match whose last edge predates the delta was already reported by
        an earlier batch, so only genuinely new matches are enumerated.
    use_kernel:
        Join over the source's flat edge columns (``edge_arrays()``)
        when it offers them — the kernel fast path.  ``False`` forces
        the legacy per-edge-object join; both enumerate byte-identical
        match sequences (the equivalence `tests/test_kernel.py` pins).
    """
    if not getattr(graph, "frozen", True):
        graph.freeze()
    m = pattern.num_edges
    if m > graph.num_edges:
        return
    p_edges = pattern.edges
    p_labels = pattern.labels
    candidate_lists = []
    for u, v in p_edges:
        lst = graph.edges_between(p_labels[u], p_labels[v])
        if not lst:
            return
        candidate_lists.append(lst)
    arrays = getattr(graph, "edge_arrays", None) if use_kernel else None
    if arrays is not None:
        yield from _join_arrays(
            pattern, arrays(), candidate_lists,
            max_span, limit, start_index, min_last_index,
        )
    else:
        yield from _join_objects(
            pattern, graph.edges, candidate_lists,
            max_span, limit, start_index, min_last_index,
        )


def _join_arrays(
    pattern: TemporalPattern,
    arrays: tuple[int, Sequence[int], Sequence[int], Sequence[int]],
    candidate_lists: list[Sequence[int]],
    max_span: int | None,
    limit: int | None,
    start_index: int,
    min_last_index: int,
) -> Iterator[Match]:
    """Temporal index join over flat ``(base, src, dst, time)`` columns.

    Dispatches on the active buffer backend: with numpy available (and a
    candidate set big enough to amortize the batch gather) the
    :func:`_join_vectorized` candidate join runs; otherwise the scalar
    :func:`_join_buffers` loop walks the same buffers.  Both enumerate
    the same match sequence as :func:`_join_objects`, byte for byte —
    the randomized harness in ``tests/test_properties.py`` pins all
    three against each other.
    """
    np = active_numpy()
    if np is not None and (
        sum(len(lst) for lst in candidate_lists) >= _VECTOR_MIN_CANDIDATES
    ):
        yield from _join_vectorized(
            np, pattern, arrays, candidate_lists,
            max_span, limit, start_index, min_last_index,
        )
    else:
        yield from _join_buffers(
            pattern, arrays, candidate_lists,
            max_span, limit, start_index, min_last_index,
        )


#: Below this many total candidate edges the batch gather of
#: :func:`_join_vectorized` costs more than it saves and the scalar
#: buffer join runs instead (tiny pattern-vs-pattern containment tests
#: stay on the cheap path).  Byte identity is unaffected — only speed.
_VECTOR_MIN_CANDIDATES = 64

#: Scan windows shorter than this are walked scalar even inside the
#: vectorized join: a boolean mask + ``flatnonzero`` carries a fixed
#: numpy dispatch cost that only pays off once enough candidates are
#: rejected per C-speed pass.
_VECTOR_MIN_WINDOW = 24


def _join_vectorized(
    np,
    pattern: TemporalPattern,
    arrays: tuple[int, Sequence[int], Sequence[int], Sequence[int]],
    candidate_lists: list[Sequence[int]],
    max_span: int | None,
    limit: int | None,
    start_index: int,
    min_last_index: int,
) -> Iterator[Match]:
    """Batched temporal index join over gathered candidate columns.

    Per pattern edge the candidate ids are gathered *once* into dense
    ``(id, src, dst, time)`` columns by fancy-indexing the zero-copy
    numpy views of the edge buffers — the join then never touches the
    full columns again.  Each gathered column is kept in two forms:

    * an int64 ndarray, so a recursion level with a bound endpoint can
      reject a large scan window with one boolean mask +
      ``flatnonzero`` instead of a per-candidate Python loop;
    * a plain-list twin (one ``.tolist()`` at gather time), so frontier
      and span-cap resolution stay cheap ``bisect`` calls, small
      windows are walked scalar without numpy dispatch overhead, and
      every value entering ``assignment``/:class:`Match` is already a
      Python int (no numpy scalars leak out).

    Candidates are always visited in ascending id order, so the
    enumeration — and hence byte identity with :func:`_join_buffers`
    and :func:`_join_objects` — is preserved; only the rejection
    mechanics differ.
    """
    base, e_src, e_dst, e_time = arrays
    src_col = as_ndarray(e_src)
    dst_col = as_ndarray(e_dst)
    time_col = as_ndarray(e_time)
    p_edges = pattern.edges
    m = pattern.num_edges
    last_pos = m - 1
    last_floor = min_last_index - 1
    flatnonzero = np.flatnonzero

    # Gather each pattern edge's candidate columns once.  Candidate ids
    # below ``base`` were compacted away by a streaming source — they
    # are kept as a count so a frontier landing in the dead prefix
    # raises exactly like the scalar paths, but never gathered.
    dead_counts: list[int] = []
    src_np: list = []
    dst_np: list = []
    id_lists: list[list[int]] = []
    src_lists: list[list[int]] = []
    dst_lists: list[list[int]] = []
    time_lists: list[list[int]] = []
    for lst in candidate_lists:
        ids = np.asarray(lst, dtype=np.int64)
        dead = int(np.searchsorted(ids, base, side="left")) if base else 0
        live = ids[dead:]
        offsets = live - base
        srcs = src_col[offsets]
        dsts = dst_col[offsets]
        times = time_col[offsets]
        dead_counts.append(dead)
        src_np.append(srcs)
        dst_np.append(dsts)
        id_lists.append(live.tolist())
        src_lists.append(srcs.tolist())
        dst_lists.append(dsts.tolist())
        time_lists.append(times.tolist())

    assignment: dict[int, int] = {}
    used: set[int] = set()
    chosen: list[int] = []
    emitted = 0

    def join(edge_pos: int, frontier: int, start_time: int) -> Iterator[Match]:
        nonlocal emitted
        if edge_pos == m:
            nodes = tuple(assignment[i] for i in range(pattern.num_nodes))
            yield Match(nodes, tuple(chosen))
            emitted += 1
            return
        pu, pv = p_edges[edge_pos]
        cands = candidate_lists[edge_pos]
        if edge_pos == last_pos and frontier < last_floor:
            frontier = last_floor
        lo_full = bisect_right(cands, frontier)
        dead = dead_counts[edge_pos]
        if lo_full < dead:
            # mirrors the streaming edge view's defense: a candidate
            # below the compaction base means the caller's frontier
            # was wrong, never silently read a recycled slot
            raise IndexError(f"edge {cands[lo_full]} was compacted away")
        lo = lo_full - dead
        times = time_lists[edge_pos]
        n = len(times)
        if lo >= n:
            return
        if max_span is not None and edge_pos > 0:
            hi = bisect_right(times, start_time + max_span, lo)
            if hi <= lo:
                return
        else:
            hi = n
        ids_l = id_lists[edge_pos]
        srcs_l = src_lists[edge_pos]
        dsts_l = dst_lists[edge_pos]
        bind_u = pu not in assignment
        bind_v = pv not in assignment
        if (bind_u and bind_v) or hi - lo < _VECTOR_MIN_WINDOW:
            # Scalar walk of the gathered lists: every candidate of a
            # doubly-unbound edge recurses anyway (nothing to mask),
            # and short windows don't amortize a mask.  Twin of the
            # :func:`_join_buffers` loop body.
            for pos in range(lo, hi):
                du = srcs_l[pos]
                dv = dsts_l[pos]
                if not bind_u and assignment[pu] != du:
                    continue
                if not bind_v and assignment[pv] != dv:
                    continue
                if bind_u and du in used:
                    continue
                if bind_v and (dv in used or (bind_u and du == dv)):
                    continue
                if bind_u:
                    assignment[pu] = du
                    used.add(du)
                if bind_v:
                    assignment[pv] = dv
                    used.add(dv)
                idx = ids_l[pos]
                chosen.append(idx)
                first_time = times[pos] if edge_pos == 0 else start_time
                yield from join(edge_pos + 1, idx, first_time)
                chosen.pop()
                if bind_u:
                    del assignment[pu]
                    used.discard(du)
                if bind_v:
                    del assignment[pv]
                    used.discard(dv)
                if limit is not None and emitted >= limit:
                    return
        elif not bind_u and not bind_v:
            srcs = src_np[edge_pos]
            dsts = dst_np[edge_pos]
            mask = (srcs[lo:hi] == assignment[pu]) & (dsts[lo:hi] == assignment[pv])
            for k in flatnonzero(mask).tolist():
                pos = lo + k
                idx = ids_l[pos]
                chosen.append(idx)
                first_time = times[pos] if edge_pos == 0 else start_time
                yield from join(edge_pos + 1, idx, first_time)
                chosen.pop()
                if limit is not None and emitted >= limit:
                    return
        elif not bind_u:
            mask = src_np[edge_pos][lo:hi] == assignment[pu]
            for k in flatnonzero(mask).tolist():
                pos = lo + k
                dv = dsts_l[pos]
                if dv in used:
                    continue
                assignment[pv] = dv
                used.add(dv)
                idx = ids_l[pos]
                chosen.append(idx)
                first_time = times[pos] if edge_pos == 0 else start_time
                yield from join(edge_pos + 1, idx, first_time)
                chosen.pop()
                del assignment[pv]
                used.discard(dv)
                if limit is not None and emitted >= limit:
                    return
        else:
            mask = dst_np[edge_pos][lo:hi] == assignment[pv]
            for k in flatnonzero(mask).tolist():
                pos = lo + k
                du = srcs_l[pos]
                if du in used:
                    continue
                assignment[pu] = du
                used.add(du)
                idx = ids_l[pos]
                chosen.append(idx)
                first_time = times[pos] if edge_pos == 0 else start_time
                yield from join(edge_pos + 1, idx, first_time)
                chosen.pop()
                del assignment[pu]
                used.discard(du)
                if limit is not None and emitted >= limit:
                    return

    yield from join(0, start_index - 1, 0)


def _join_buffers(
    pattern: TemporalPattern,
    arrays: tuple[int, Sequence[int], Sequence[int], Sequence[int]],
    candidate_lists: list[Sequence[int]],
    max_span: int | None,
    limit: int | None,
    start_index: int,
    min_last_index: int,
) -> Iterator[Match]:
    """Scalar temporal index join over the flat columns (stdlib fallback).

    The twin of :func:`_join_objects` with per-edge object fetches
    replaced by three buffer index reads; the control flow is mirrored
    line by line so the enumeration order is identical.
    """
    base, e_src, e_dst, e_time = arrays
    p_edges = pattern.edges
    m = pattern.num_edges
    last_pos = m - 1
    last_floor = min_last_index - 1

    assignment: dict[int, int] = {}
    used: set[int] = set()
    chosen: list[int] = []
    emitted = 0

    def join(edge_pos: int, frontier: int, start_time: int) -> Iterator[Match]:
        nonlocal emitted
        if edge_pos == m:
            nodes = tuple(assignment[i] for i in range(pattern.num_nodes))
            yield Match(nodes, tuple(chosen))
            emitted += 1
            return
        pu, pv = p_edges[edge_pos]
        cands = candidate_lists[edge_pos]
        if edge_pos == last_pos and frontier < last_floor:
            frontier = last_floor
        lo = bisect_right(cands, frontier)
        for pos in range(lo, len(cands)):
            idx = cands[pos]
            offset = idx - base
            if offset < 0:
                # mirrors the streaming edge view's defense: a candidate
                # below the compaction base means the caller's frontier
                # was wrong, never silently read a recycled slot
                raise IndexError(f"edge {idx} was compacted away")
            t = e_time[offset]
            if max_span is not None and edge_pos > 0:
                if t - start_time > max_span:
                    break
            du = e_src[offset]
            dv = e_dst[offset]
            bind_u = pu not in assignment
            bind_v = pv not in assignment
            if not bind_u and assignment[pu] != du:
                continue
            if not bind_v and assignment[pv] != dv:
                continue
            if bind_u and du in used:
                continue
            if bind_v and (dv in used or (bind_u and du == dv)):
                continue
            if bind_u:
                assignment[pu] = du
                used.add(du)
            if bind_v:
                assignment[pv] = dv
                used.add(dv)
            chosen.append(idx)
            first_time = t if edge_pos == 0 else start_time
            yield from join(edge_pos + 1, idx, first_time)
            chosen.pop()
            if bind_u:
                del assignment[pu]
                used.discard(du)
            if bind_v:
                del assignment[pv]
                used.discard(dv)
            if limit is not None and emitted >= limit:
                return

    yield from join(0, start_index - 1, 0)


def _join_objects(
    pattern: TemporalPattern,
    edges: Sequence[TemporalEdge],
    candidate_lists: list[Sequence[int]],
    max_span: int | None,
    limit: int | None,
    start_index: int,
    min_last_index: int,
) -> Iterator[Match]:
    """Legacy temporal index join over per-edge objects.

    Kept callable (``find_matches(..., use_kernel=False)``) for sources
    without flat columns and for the kernel equivalence tests/ablation.
    """
    p_edges = pattern.edges
    m = pattern.num_edges
    last_pos = m - 1
    last_floor = min_last_index - 1

    assignment: dict[int, int] = {}
    used: set[int] = set()
    chosen: list[int] = []
    emitted = 0

    def join(edge_pos: int, frontier: int, start_time: int) -> Iterator[Match]:
        nonlocal emitted
        if edge_pos == m:
            nodes = tuple(assignment[i] for i in range(pattern.num_nodes))
            yield Match(nodes, tuple(chosen))
            emitted += 1
            return
        pu, pv = p_edges[edge_pos]
        cands = candidate_lists[edge_pos]
        if edge_pos == last_pos and frontier < last_floor:
            frontier = last_floor
        lo = bisect_right(cands, frontier)
        for pos in range(lo, len(cands)):
            idx = cands[pos]
            edge = edges[idx]
            if max_span is not None and edge_pos > 0:
                if edge.time - start_time > max_span:
                    break
            du, dv = edge.src, edge.dst
            bind_u = pu not in assignment
            bind_v = pv not in assignment
            if not bind_u and assignment[pu] != du:
                continue
            if not bind_v and assignment[pv] != dv:
                continue
            if bind_u and du in used:
                continue
            if bind_v and (dv in used or (bind_u and du == dv)):
                continue
            if bind_u:
                assignment[pu] = du
                used.add(du)
            if bind_v:
                assignment[pv] = dv
                used.add(dv)
            chosen.append(idx)
            first_time = edge.time if edge_pos == 0 else start_time
            yield from join(edge_pos + 1, idx, first_time)
            chosen.pop()
            if bind_u:
                del assignment[pu]
                used.discard(du)
            if bind_v:
                del assignment[pv]
                used.discard(dv)
            if limit is not None and emitted >= limit:
                return

    yield from join(0, start_index - 1, 0)


def match_span(
    match: Match, graph: "TemporalGraph | EdgeIndexedSource"
) -> tuple[int, int]:
    """Return ``(start_time, end_time)`` of a match in ``graph``."""
    first = graph.edges[match.edge_indexes[0]].time
    last = graph.edges[match.edge_indexes[-1]].time
    return (first, last)


@dataclass
class GIStats:
    """Counters for the efficiency experiments (index-build overhead)."""

    tests: int = 0
    indexes_built: int = 0
    prefilter_rejections: int = 0


@dataclass
class GraphIndexTester:
    """Pattern-vs-pattern tester used by the ``PruneGI`` miner variant.

    Every test materializes the *big* pattern as a temporal graph and
    freezes it, which (re)builds its one-edge index — reproducing the
    per-discovered-pattern index-construction overhead the paper blames
    for ``PruneGI``'s slowdown.  An optional :class:`CandidateFilter`
    rejects impossible pairs by signature before any index is built.
    """

    prefilter: "CandidateFilter | None" = None
    stats: GIStats = field(default_factory=GIStats)

    def contains(self, small: TemporalPattern, big: TemporalPattern) -> bool:
        """Return whether ``small ⊆t big``."""
        return self.mapping(small, big) is not None

    def mapping(
        self, small: TemporalPattern, big: TemporalPattern
    ) -> tuple[int, ...] | None:
        """Return a witness node mapping for ``small ⊆t big`` or ``None``."""
        self.stats.tests += 1
        if small.num_edges > big.num_edges or small.num_nodes > big.num_nodes:
            return None
        if self.prefilter is not None and not self.prefilter.pattern_vs_pattern(
            small, big
        ):
            self.stats.prefilter_rejections += 1
            return None
        big_graph = big.as_temporal_graph()
        self.stats.indexes_built += 1
        match = next(find_matches(small, big_graph, limit=1), None)
        if match is None:
            return None
        return match.nodes


# ----------------------------------------------------------------------
# candidate-pruning prefilter
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Signature:
    """Label summary of a pattern or graph used for containment pretests.

    ``node_labels`` counts nodes per label; ``edge_labels`` counts edges
    per ``(src_label, dst_label)`` pair.  Both are plain dicts — the
    signature is built once per object and only read afterwards.  Keys
    are label strings at the public API; :class:`CandidateFilter`
    internally re-keys its cached signatures to interned int ids (see
    :class:`~repro.core.kernel.LabelInterner`), which
    :func:`signature_contains` handles identically.
    """

    node_labels: dict[str, int]
    edge_labels: dict[tuple[str, str], int]


def pattern_signature(pattern: TemporalPattern) -> Signature:
    """Compute the label signature of a pattern."""
    labels = pattern.labels
    edge_pairs = Counter((labels[u], labels[v]) for u, v in pattern.edges)
    return Signature(dict(Counter(labels)), dict(edge_pairs))


def graph_signature(graph: TemporalGraph) -> Signature:
    """Compute the label signature of a (frozen) temporal graph.

    Reads the per-label-pair edge index built at freeze time, so the cost
    is proportional to the number of distinct labels and label pairs, not
    the number of edges.
    """
    if not graph.frozen:
        graph.freeze()
    node_labels = dict(Counter(graph.labels))
    edge_labels = {
        pair: len(idxs) for pair, idxs in graph.label_pair_index().items()
    }
    return Signature(node_labels, edge_labels)


def signature_contains(big: Signature, small: Signature) -> bool:
    """Whether ``big``'s signature can cover ``small``'s (multiset-wise).

    A necessary condition for ``small ⊆t big`` (and for any injective
    label-preserving node mapping): each node label and each edge label
    pair must occur in ``big`` at least as often as in ``small``.
    """
    big_nodes = big.node_labels
    for label, need in small.node_labels.items():
        if big_nodes.get(label, 0) < need:
            return False
    big_edges = big.edge_labels
    for pair, need in small.edge_labels.items():
        if big_edges.get(pair, 0) < need:
            return False
    return True


@dataclass
class FilterStats:
    """Counters for the index-prefilter ablation."""

    checks: int = 0
    rejections: int = 0

    def rejection_rate(self) -> float:
        """Fraction of containment checks answered without any search."""
        if self.checks == 0:
            return 0.0
        return self.rejections / self.checks


class CandidateFilter:
    """Signature cache answering "can ``small`` possibly embed in ``big``?".

    One filter instance lives per mining run / query engine; it memoizes
    pattern and graph signatures (patterns are immutable and hashable,
    graphs are keyed by identity) plus per-pattern label→nodes indexes
    used to seed VF2 candidate lists.

    Internally the containment pretests run over *interned* signatures:
    the filter owns a :class:`~repro.core.kernel.LabelInterner` and every
    pattern/graph signature is re-keyed to dense int ids through it, so
    the per-test multiset comparison hashes ints instead of strings.
    Interning is a bijection within one filter, hence every pretest
    answer is identical to the string-keyed comparison; the public
    :meth:`signature_of_pattern` / :meth:`signature_of_graph` accessors
    keep returning string-keyed signatures.
    """

    def __init__(self) -> None:
        self.stats = FilterStats()
        self._interner = LabelInterner()
        self._pattern_sigs: dict[TemporalPattern, Signature] = {}
        self._graph_sigs: dict[int, Signature] = {}
        self._graph_refs: dict[int, TemporalGraph] = {}
        self._label_nodes: dict[TemporalPattern, dict[str, list[int]]] = {}
        # interned twins, memoized by the same keys as the string caches
        self._pattern_int_sigs: dict[TemporalPattern, Signature] = {}
        self._graph_int_sigs: dict[int, Signature] = {}

    # -- signature access ------------------------------------------------
    def signature_of_pattern(self, pattern: TemporalPattern) -> Signature:
        """Cached label signature of a pattern."""
        sig = self._pattern_sigs.get(pattern)
        if sig is None:
            sig = pattern_signature(pattern)
            self._pattern_sigs[pattern] = sig
        return sig

    def signature_of_graph(self, graph: TemporalGraph) -> Signature:
        """Cached label signature of a graph (keyed by identity)."""
        key = id(graph)
        sig = self._graph_sigs.get(key)
        if sig is None:
            sig = graph_signature(graph)
            self._graph_sigs[key] = sig
            self._graph_refs[key] = graph  # pin identity for the cache key
        return sig

    def label_nodes(self, pattern: TemporalPattern) -> dict[str, list[int]]:
        """Cached label → node-id index of a pattern (VF2 candidate seed)."""
        index = self._label_nodes.get(pattern)
        if index is None:
            index = {}
            for node, label in enumerate(pattern.labels):
                index.setdefault(label, []).append(node)
            self._label_nodes[pattern] = index
        return index

    # -- interned signatures ---------------------------------------------
    def _intern_signature(self, sig: Signature) -> Signature:
        """Re-key a string signature to this filter's interned id space."""
        intern = self._interner.intern
        return Signature(
            {intern(label): count for label, count in sig.node_labels.items()},
            {
                (intern(src), intern(dst)): count
                for (src, dst), count in sig.edge_labels.items()
            },
        )

    def _int_sig_of_pattern(self, pattern: TemporalPattern) -> Signature:
        sig = self._pattern_int_sigs.get(pattern)
        if sig is None:
            sig = self._intern_signature(self.signature_of_pattern(pattern))
            self._pattern_int_sigs[pattern] = sig
        return sig

    def _int_sig_of_graph(self, graph: TemporalGraph) -> Signature:
        key = id(graph)
        sig = self._graph_int_sigs.get(key)
        if sig is None:
            sig = self._intern_signature(self.signature_of_graph(graph))
            self._graph_int_sigs[key] = sig
        return sig

    # -- containment pretests --------------------------------------------
    def pattern_vs_pattern(self, small: TemporalPattern, big: TemporalPattern) -> bool:
        """Whether ``small ⊆t big`` is possible by signature containment."""
        return self._check(
            self._int_sig_of_pattern(big), self._int_sig_of_pattern(small)
        )

    def pattern_vs_graph(self, pattern: TemporalPattern, graph: TemporalGraph) -> bool:
        """Whether ``pattern`` can possibly match inside ``graph``."""
        return self._check(
            self._int_sig_of_graph(graph), self._int_sig_of_pattern(pattern)
        )

    def labels_vs_graph(
        self,
        node_labels: Counter,
        edge_label_pairs: set[tuple[str, str]],
        graph: TemporalGraph,
    ) -> bool:
        """Order-free pretest for non-temporal queries.

        ``node_labels`` must be coverable multiset-wise (node mappings are
        injective even without edge order) and every *distinct* edge label
        pair must occur in the graph; multi-edge counts are deliberately
        not compared because an order-free match may reuse one data
        adjacency for several pattern edges.
        """
        small = self._intern_signature(
            Signature(dict(node_labels), {pair: 1 for pair in edge_label_pairs})
        )
        return self._check(self._int_sig_of_graph(graph), small)

    def _check(self, big: Signature, small: Signature) -> bool:
        self.stats.checks += 1
        ok = signature_contains(big, small)
        if not ok:
            self.stats.rejections += 1
        return ok
