"""Modified VF2 temporal subgraph test (the ``PruneVF2`` baseline).

The paper's ``PruneVF2`` baseline performs temporal subgraph tests with a
VF2-style algorithm [Cordella et al. 2004] adapted to temporal graphs: the
classic state-space search maps *nodes* first (with label and degree
feasibility rules) and only afterwards verifies that an order-preserving
edge mapping ``τ`` exists for the candidate node mapping.

Because node-first search ignores the total edge order until verification,
it explores many states a temporal-order-aware algorithm would never
visit — which is exactly why the paper reports it up to 32x slower than
the subsequence-test algorithm.  We keep the implementation faithful to
that structure rather than "fixing" it.

The one optional deviation is the index-backed candidate seeding: with a
:class:`~repro.core.graph_index.CandidateFilter` supplied, impossible
pairs are rejected by signature containment before any state search, and
per-node candidate lists are seeded from the filter's label → nodes
index of the big pattern instead of scanning all of its nodes.  Both are
pure candidate pruning — the accepted mappings are identical.  The bare
tester carries no filter, and :func:`repro.core.miner.miner_variant`
builds the ``PruneVF2`` baseline without one, so the paper's unfiltered
cost profile stays reproducible; only ``TGMiner`` configs with
``index_prefilter`` enabled attach a filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pattern import TemporalPattern

__all__ = ["VF2SubgraphTester"]


@dataclass
class VF2Stats:
    """Counters for the efficiency experiments."""

    tests: int = 0
    states_visited: int = 0
    verifications: int = 0
    prefilter_rejections: int = 0


@dataclass
class VF2SubgraphTester:
    """VF2-style tester with the same interface as the sequence tester."""

    prefilter: object | None = None
    stats: VF2Stats = field(default_factory=VF2Stats)

    def contains(self, small: TemporalPattern, big: TemporalPattern) -> bool:
        """Return whether ``small ⊆t big``."""
        return self.mapping(small, big) is not None

    def mapping(
        self, small: TemporalPattern, big: TemporalPattern
    ) -> tuple[int, ...] | None:
        """Return a witness node mapping for ``small ⊆t big`` or ``None``."""
        self.stats.tests += 1
        if small.num_edges > big.num_edges or small.num_nodes > big.num_nodes:
            return None
        if self.prefilter is not None and not self.prefilter.pattern_vs_pattern(
            small, big
        ):
            self.stats.prefilter_rejections += 1
            return None
        # Static structures.
        small_adj = _adjacency(small)
        big_adj = _adjacency(big)
        small_out, small_in = small.out_degrees, small.in_degrees
        big_out, big_in = big.out_degrees, big.in_degrees
        n_small = small.num_nodes

        # Candidate big nodes per small node, filtered by label + degree.
        # With a filter, candidates come from its label → nodes index of
        # `big` (same lists, in the same node order, without the scan).
        by_label = (
            self.prefilter.label_nodes(big) if self.prefilter is not None else None
        )
        candidates: list[list[int]] = []
        for a in range(n_small):
            pool = (
                by_label.get(small.label(a), ())
                if by_label is not None
                else range(big.num_nodes)
            )
            options = [
                b
                for b in pool
                if big.label(b) == small.label(a)
                and big_out[b] >= small_out[a]
                and big_in[b] >= small_in[a]
            ]
            if not options:
                return None
            candidates.append(options)

        assignment: list[int] = [-1] * n_small
        used: set[int] = set()
        order = sorted(range(n_small), key=lambda a: len(candidates[a]))

        def feasible(a: int, b: int) -> bool:
            # Every already-mapped neighbor relation must exist in `big`
            # (multi-edge counts checked multiset-wise).
            for other, need in small_adj.get(a, {}).items():
                mapped = assignment[other]
                if mapped != -1 and big_adj.get(b, {}).get(mapped, 0) < need:
                    return False
            for other, need in small_adj.get(-a - 1, {}).items():
                mapped = assignment[other]
                if mapped != -1 and big_adj.get(-b - 1, {}).get(mapped, 0) < need:
                    return False
            return True

        def verify() -> bool:
            # Greedy order-embedding of small's edge list into big's.
            self.stats.verifications += 1
            pos = 0
            big_edges = big.edges
            for u, v in small.edges:
                want = (assignment[u], assignment[v])
                while pos < len(big_edges) and big_edges[pos] != want:
                    pos += 1
                if pos == len(big_edges):
                    return False
                pos += 1
            return True

        def search(depth: int) -> bool:
            self.stats.states_visited += 1
            if depth == n_small:
                return verify()
            a = order[depth]
            for b in candidates[a]:
                if b in used or not feasible(a, b):
                    continue
                assignment[a] = b
                used.add(b)
                if search(depth + 1):
                    return True
                used.discard(b)
                assignment[a] = -1
            return False

        if search(0):
            return tuple(assignment)
        return None


def _adjacency(pattern: TemporalPattern) -> dict[int, dict[int, int]]:
    """Multiset adjacency: ``adj[u][v]`` counts ``u -> v`` edges.

    Incoming relations are stored under the key ``-u - 1`` so a single
    dict covers both directions.
    """
    adj: dict[int, dict[int, int]] = {}
    for u, v in pattern.edges:
        adj.setdefault(u, {})
        adj[u][v] = adj[u].get(v, 0) + 1
        adj.setdefault(-v - 1, {})
        adj[-v - 1][u] = adj[-v - 1].get(u, 0) + 1
    return adj
