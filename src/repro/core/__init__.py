"""Core algorithms: temporal graphs, patterns, matching, and TGMiner."""

from repro.core.errors import (
    DatasetError,
    GraphError,
    MiningError,
    PatternError,
    QueryError,
    ReproError,
    TimestampOrderError,
)
from repro.core.graph import TemporalEdge, TemporalGraph
from repro.core.kernel import GraphKernel, LabelInterner
from repro.core.miner import (
    MinedPattern,
    MinerConfig,
    MiningResult,
    MiningStats,
    TGMiner,
    miner_variant,
    VARIANT_NAMES,
)
from repro.core.parallel import ParallelMiner, merge_seed_results, mining_fingerprint
from repro.core.pattern import TemporalPattern
from repro.core.scoring import GTest, InformationGain, LogRatio, ScoreFunction
from repro.core.subgraph import (
    SequenceSubgraphTester,
    find_mapping,
    is_temporal_subgraph,
)

__all__ = [
    "DatasetError",
    "GraphError",
    "MiningError",
    "PatternError",
    "QueryError",
    "ReproError",
    "TimestampOrderError",
    "TemporalEdge",
    "TemporalGraph",
    "TemporalPattern",
    "GraphKernel",
    "LabelInterner",
    "TGMiner",
    "MinerConfig",
    "MinedPattern",
    "MiningResult",
    "MiningStats",
    "miner_variant",
    "VARIANT_NAMES",
    "ParallelMiner",
    "merge_seed_results",
    "mining_fingerprint",
    "ScoreFunction",
    "LogRatio",
    "GTest",
    "InformationGain",
    "SequenceSubgraphTester",
    "is_temporal_subgraph",
    "find_mapping",
]
