"""Sequence-based temporal graph representation (paper Section 4.3).

Because edges of a temporal graph are totally ordered, a pattern can be
encoded losslessly by two sequences:

* ``nodeseq(g)`` — nodes ordered by first-visit time under temporal edge
  traversal (source before destination within one edge); each node occurs
  exactly once.  In our normalized :class:`~repro.core.pattern.TemporalPattern`
  representation this is simply ``0, 1, ..., n-1``.
* ``edgeseq(g)`` — the ``(src, dst)`` node-id pairs in temporal order.

``nodeseq(g1) ⊑ nodeseq(g2)`` can fail even when ``g1 ⊆t g2`` (Figure 9 of
the paper), so the *enhanced node sequence* ``enhseq(g)`` re-records nodes:
processing edges in temporal order, the source is appended unless it was
the node appended immediately before or the source of the previous edge,
and the destination is always appended.  Lemma 5 then reduces the
NP-complete temporal subgraph test to guided subsequence matching:

    g1 ⊆t g2  iff  there is an injective node mapping ``fs`` with
    ``nodeseq(g1) ⊑ enhseq(g2)`` and ``fs(edgeseq(g1)) ⊑ edgeseq(g2)``.

This module computes the encodings; :mod:`repro.core.subgraph` implements
the subsequence-test algorithm on top of them.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.kernel import LabelInterner
from repro.core.pattern import TemporalPattern

__all__ = [
    "node_sequence",
    "edge_sequence",
    "enhanced_node_sequence",
    "label_subsequence",
    "SequenceEncoding",
    "encode",
]


def node_sequence(pattern: TemporalPattern) -> tuple[int, ...]:
    """Return ``nodeseq(g)`` as a tuple of node ids.

    Normalized patterns number nodes in first-visit order, so the node
    sequence is the identity sequence; it is materialized explicitly to
    keep the Lemma 5 implementation readable.
    """
    return tuple(range(pattern.num_nodes))


def edge_sequence(pattern: TemporalPattern) -> tuple[tuple[int, int], ...]:
    """Return ``edgeseq(g)``: ``(src, dst)`` pairs in temporal order."""
    return pattern.edges


def enhanced_node_sequence(pattern: TemporalPattern) -> tuple[int, ...]:
    """Return ``enhseq(g)`` as a tuple of node ids (repeats possible).

    Construction from the paper, processing edges in temporal order:

    1. the source is skipped if it is the most recently appended node or
       the source of the previous edge, otherwise it is appended;
    2. the destination is always appended.
    """
    seq: list[int] = []
    prev_src: int | None = None
    for u, v in pattern.edges:
        last_added = seq[-1] if seq else None
        if u != last_added and u != prev_src:
            seq.append(u)
        seq.append(v)
        prev_src = u
    return tuple(seq)


def label_subsequence(needle: tuple, haystack: tuple) -> bool:
    """Greedy test that ``needle`` is a subsequence of ``haystack``.

    Used by the label-sequence pre-test (Appendix J): node ids are replaced
    by labels, and a failed label-level subsequence test proves no temporal
    subgraph relation can exist.  Elements are only compared for equality,
    so label strings and interned label ids work interchangeably.
    """
    it = iter(haystack)
    return all(any(item == other for other in it) for item in needle)


#: Process-wide interner for pattern-label projections.  Sequence
#: encodings only ever compare labels for *equality* (subsequence tests,
#: candidate filtering), never for order, so a single shared id space is
#: sound: within one process, equal ids ⟺ equal strings, and the test
#: outcomes are identical to the string comparisons.
_SEQUENCE_INTERNER = LabelInterner()


class SequenceEncoding:
    """All sequence encodings of one pattern, plus label projections.

    Encoding a pattern is pure and patterns are immutable, so instances
    are cached via :func:`encode`.  Besides the label-string projections,
    interned-id twins (``*_ids``) are precomputed for the subsequence
    tester's hot comparisons.
    """

    __slots__ = (
        "pattern",
        "nodeseq",
        "edgeseq",
        "enhseq",
        "node_labels",
        "enh_labels",
        "edge_label_pairs",
        "node_label_ids",
        "enh_label_ids",
        "edge_label_pair_ids",
    )

    def __init__(self, pattern: TemporalPattern) -> None:
        self.pattern = pattern
        self.nodeseq = node_sequence(pattern)
        self.edgeseq = edge_sequence(pattern)
        self.enhseq = enhanced_node_sequence(pattern)
        self.node_labels = tuple(pattern.label(n) for n in self.nodeseq)
        self.enh_labels = tuple(pattern.label(n) for n in self.enhseq)
        self.edge_label_pairs = tuple(
            (pattern.label(u), pattern.label(v)) for u, v in self.edgeseq
        )
        intern = _SEQUENCE_INTERNER.intern
        label_ids = tuple(intern(label) for label in pattern.labels)
        self.node_label_ids = tuple(label_ids[n] for n in self.nodeseq)
        self.enh_label_ids = tuple(label_ids[n] for n in self.enhseq)
        self.edge_label_pair_ids = tuple(
            (label_ids[u], label_ids[v]) for u, v in self.edgeseq
        )


@lru_cache(maxsize=65536)
def encode(pattern: TemporalPattern) -> SequenceEncoding:
    """Return the (cached) :class:`SequenceEncoding` of ``pattern``."""
    return SequenceEncoding(pattern)
