"""Deterministic fault injection for the serving tier.

Crash-recovery code is only trustworthy if every failure path can be
exercised on demand, in-process, with a reproducible trigger point.  This
module provides that trigger: a :class:`FaultPlan` is a picklable bag of
:class:`FaultSpec` rules, each naming an injection *site* (a string like
``"worker.kill"``), an ordinal *at* which the site fires, and optional
scoping (shard, tenant, worker incarnation).  Production code calls
:meth:`FaultPlan.fire` (or :meth:`FaultPlan.check`) at well-defined hook
points; with no plan installed the hooks are no-ops.

Sites used by the serving tier:

``worker.kill``
    Hard-kill the spawn worker process (``os._exit(137)``) just before it
    would reply to the *at*-th batch — simulates ``kill -9`` / OOM.
``worker.stall``
    Sleep ``delay`` seconds before replying to the *at*-th batch —
    simulates a wedged queue consumer so timeout/supervision paths fire.
``service.slow_batch``
    Sleep ``delay`` seconds inside :meth:`DetectionService.ingest`.
``service.poison``
    Raise :class:`~repro.core.errors.ServingError` from inside ingest for
    the *at*-th batch — a poisoned batch that should quarantine the tenant
    rather than kill the shard.
``wal.torn``
    Truncate the write-ahead log mid-record while appending the *at*-th
    record, then crash (raise) — simulates power loss during a write.
``snapshot.corrupt``
    Flip bytes in the snapshot file just after it is atomically published —
    simulates on-disk corruption that recovery must detect and skip.

Counters are per (site, shard, tenant) key and advance on every ``fire``
call, so "fire at the 3rd WAL append" is deterministic regardless of wall
clock.  ``incarnation`` scopes a rule to a specific respawn generation of
a shard worker (0 = the first process); respawned workers receive the
plan re-scoped to their own generation, which prevents a ``worker.kill``
or ``wal.torn`` rule from re-firing forever in each restarted worker.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from .errors import ReproError

__all__ = ["FaultSpec", "FaultPlan", "FaultInjected", "KNOWN_SITES"]

KNOWN_SITES = (
    "worker.kill",
    "worker.stall",
    "service.slow_batch",
    "service.poison",
    "wal.torn",
    "snapshot.corrupt",
)


class FaultInjected(ReproError):
    """Raised by fault hooks whose site semantics are "crash here"."""


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault rule.

    ``site``
        Injection point name (see module docstring / :data:`KNOWN_SITES`).
    ``at``
        1-based ordinal of the hook invocation (within this spec's scope)
        at which the fault first fires.
    ``shard`` / ``tenant``
        Restrict the rule to one shard id / tenant key (``None`` = any).
    ``times``
        How many consecutive firings starting at ``at`` (default 1).
    ``delay``
        Sleep duration for stall/slow sites, seconds.
    ``incarnation``
        Only fire in the given respawn generation of the shard worker
        process (0 = original worker, 1 = first restart, ...).  Plans
        used outside a supervised worker are never re-scoped, so the
        default of 0 fires everywhere there.
    """

    site: str
    at: int = 1
    shard: int | None = None
    tenant: str | None = None
    times: int = 1
    delay: float = 0.0
    incarnation: int = 0

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {KNOWN_SITES}")
        if self.at < 1:
            raise ValueError("fault 'at' ordinal is 1-based and must be >= 1")
        if self.times < 1:
            raise ValueError("fault 'times' must be >= 1")


@dataclass
class FaultPlan:
    """A picklable, deterministic collection of fault rules.

    The plan keeps one invocation counter per ``(site, shard, tenant)``
    scope key; :meth:`fire` bumps the counter and returns the matching
    spec when a rule covers that ordinal.  Plans cross process boundaries
    by pickling (counters reset in the child, which is what we want: the
    child worker counts its own batches from 1).
    """

    specs: tuple[FaultSpec, ...] = ()
    _counters: dict[tuple[str, int | None, str | None], int] = field(
        default_factory=dict, repr=False, compare=False)

    def __init__(self, specs: "tuple[FaultSpec, ...] | list[FaultSpec]" = ()):
        object.__setattr__(self, "specs", tuple(specs))
        object.__setattr__(self, "_counters", {})

    def __getstate__(self) -> dict:
        # Counters are per-process scratch state: a freshly unpickled plan
        # (e.g. shipped to a respawned worker) starts counting from zero.
        return {"specs": self.specs}

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "specs", state["specs"])
        object.__setattr__(self, "_counters", {})

    def scoped(self, *, incarnation: int) -> "FaultPlan":
        """Plan containing only rules for the given worker incarnation.

        Applied when (re)spawning a shard worker: a respawned process
        starts its counters over, so without this filter a ``worker.kill``
        (or ``wal.torn``, ...) rule for the original worker would re-fire
        in every restart and burn the whole restart budget by design.
        """
        keep = [s for s in self.specs if s.incarnation == incarnation]
        return FaultPlan(keep)

    def fire(self, site: str, *, shard: int | None = None,
             tenant: str | None = None) -> FaultSpec | None:
        """Advance the counter for ``site`` in this scope; return the spec
        that covers the new ordinal, or ``None``.

        Specs with a ``shard``/``tenant`` restriction only match (and only
        consume ordinals from) the matching scope's counter, so "kill shard
        1 at its 3rd batch" is unaffected by traffic on other shards.
        """
        hit: FaultSpec | None = None
        for spec in self.specs:
            if spec.site != site:
                continue
            if spec.shard is not None and spec.shard != shard:
                continue
            if spec.tenant is not None and spec.tenant != tenant:
                continue
            key = (site, spec.shard, spec.tenant)
            count = self._counters.get(key, 0) + 1
            self._counters[key] = count
            if spec.at <= count < spec.at + spec.times and hit is None:
                hit = spec
        return hit

    # -- convenience wrappers used at the hook sites -------------------

    def maybe_sleep(self, site: str, *, shard: int | None = None,
                    tenant: str | None = None) -> bool:
        spec = self.fire(site, shard=shard, tenant=tenant)
        if spec is None:
            return False
        if spec.delay > 0:
            time.sleep(spec.delay)
        return True

    def maybe_exit(self, site: str, *, shard: int | None = None,
                   tenant: str | None = None, code: int = 137,
                   flush=None) -> None:
        if self.fire(site, shard=shard, tenant=tenant) is not None:
            # os._exit skips atexit/finally so the queue feeder dies with
            # us — the closest in-process stand-in for SIGKILL.  ``flush``
            # (when given) runs first: dying mid-write inside a
            # multiprocessing queue would wedge the *channel*, which is a
            # simulation artifact — the site under test is the process.
            if flush is not None:
                flush()
            os._exit(code)

    def maybe_raise(self, site: str, message: str, *,
                    shard: int | None = None,
                    tenant: str | None = None) -> None:
        if self.fire(site, shard=shard, tenant=tenant) is not None:
            raise FaultInjected(f"injected fault at {site}: {message}")


def fire(plan: FaultPlan | None, site: str, **scope) -> FaultSpec | None:
    """Null-safe hook helper: ``fire(None, ...)`` is a no-op."""
    if plan is None:
        return None
    return plan.fire(site, **scope)
