"""Concurrent-edge handling (paper Section 5).

Systems with parallelism emit *concurrent edges* — events sharing one
timestamp — which violate the total-order model TGMiner mines over.  The
paper offers two remedies, both implemented here:

1. **Sequentialization** (:func:`sequentialize`): data collectors impose an
   artificial total order on each concurrent block using a pre-defined
   policy.  When concurrent edges are rare this approximates the original
   data with minor accuracy loss and lets TGMiner run unmodified.  Three
   policies are provided:

   * ``"stable"``  — keep collection (insertion) order within a block,
   * ``"random"``  — a seeded random order per block,
   * ``"by-endpoint"`` — order by ``(src label, dst label, src, dst)``,
     a deterministic content-based policy.

2. **Concurrent-block representation** (:func:`concurrent_blocks`,
   :class:`ConcurrentBlockSequence`): re-encode a graph as a sequence of
   concurrent subgraphs (all edges sharing a timestamp) for algorithms
   that, like the extended TGMiner sketched in Section 5, treat each block
   as an unordered unit.  The block sequence supports a conservative
   containment pre-test used to bound the loss of sequentialization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import GraphError
from repro.core.graph import TemporalEdge, TemporalGraph

__all__ = [
    "sequentialize",
    "concurrent_blocks",
    "ConcurrentBlockSequence",
    "has_concurrent_edges",
    "concurrency_ratio",
]

_POLICIES = ("stable", "random", "by-endpoint")


def has_concurrent_edges(edges: Sequence[TemporalEdge]) -> bool:
    """Whether two edges share a timestamp."""
    seen: set[int] = set()
    for edge in edges:
        if edge.time in seen:
            return True
        seen.add(edge.time)
    return False


def concurrency_ratio(edges: Sequence[TemporalEdge]) -> float:
    """Fraction of edges that share their timestamp with another edge."""
    if not edges:
        return 0.0
    counts: dict[int, int] = {}
    for edge in edges:
        counts[edge.time] = counts.get(edge.time, 0) + 1
    concurrent = sum(c for c in counts.values() if c > 1)
    return concurrent / len(edges)


def sequentialize(
    edges: Sequence[TemporalEdge],
    labels: Sequence[str],
    policy: str = "stable",
    seed: int = 0,
    name: str = "",
) -> TemporalGraph:
    """Build a totally-ordered :class:`TemporalGraph` from concurrent events.

    Parameters
    ----------
    edges:
        Raw events, possibly with duplicate timestamps; node ids must be
        dense and consistent with ``labels``.
    labels:
        Node labels indexed by node id.
    policy:
        Tie-breaking policy: ``"stable"``, ``"random"``, or
        ``"by-endpoint"`` (see module docstring).
    seed:
        RNG seed for the ``"random"`` policy (per-call determinism).
    """
    if policy not in _POLICIES:
        raise GraphError(f"unknown sequentialization policy {policy!r}")
    rng = random.Random(seed)
    blocks: dict[int, list[TemporalEdge]] = {}
    for edge in edges:
        blocks.setdefault(edge.time, []).append(edge)

    graph = TemporalGraph(name=name)
    for label in labels:
        graph.add_node(label)
    next_time = 0
    for time_key in sorted(blocks):
        block = blocks[time_key]
        if policy == "random":
            rng.shuffle(block)
        elif policy == "by-endpoint":
            block.sort(key=lambda e: (labels[e.src], labels[e.dst], e.src, e.dst))
        for edge in block:
            graph.add_edge(edge.src, edge.dst, next_time)
            next_time += 1
    return graph.freeze()


@dataclass(frozen=True)
class ConcurrentBlock:
    """All edges sharing one original timestamp."""

    time: int
    edges: tuple[TemporalEdge, ...]

    def label_pair_multiset(self, labels: Sequence[str]) -> tuple[tuple[str, str], ...]:
        """Sorted multiset of endpoint-label pairs (block fingerprint)."""
        return tuple(sorted((labels[e.src], labels[e.dst]) for e in self.edges))


@dataclass(frozen=True)
class ConcurrentBlockSequence:
    """A temporal graph viewed as a sequence of concurrent subgraphs.

    This is the representation the extended TGMiner of Section 5 would
    mine over; here it powers a conservative containment pre-test that
    ignores node identity across blocks (a necessary condition for true
    containment, analogous to the label sequence test of Appendix J).
    """

    labels: tuple[str, ...]
    blocks: tuple[ConcurrentBlock, ...]

    @property
    def num_blocks(self) -> int:
        """Number of concurrent blocks."""
        return len(self.blocks)

    def may_contain(self, other: "ConcurrentBlockSequence") -> bool:
        """Necessary condition for ``other`` to embed into ``self``.

        Each of ``other``'s blocks must map to a later block of ``self``
        whose label-pair multiset covers it (greedy earliest placement).
        """
        pos = 0
        for block in other.blocks:
            need = block.label_pair_multiset(other.labels)
            while pos < len(self.blocks):
                have = self.blocks[pos].label_pair_multiset(self.labels)
                pos += 1
                if _multiset_covers(have, need):
                    break
            else:
                return False
        return True


def concurrent_blocks(
    edges: Sequence[TemporalEdge], labels: Sequence[str]
) -> ConcurrentBlockSequence:
    """Group raw events into a :class:`ConcurrentBlockSequence`."""
    grouped: dict[int, list[TemporalEdge]] = {}
    for edge in edges:
        grouped.setdefault(edge.time, []).append(edge)
    blocks = tuple(
        ConcurrentBlock(time, tuple(grouped[time])) for time in sorted(grouped)
    )
    return ConcurrentBlockSequence(labels=tuple(labels), blocks=blocks)


def _multiset_covers(
    have: tuple[tuple[str, str], ...], need: tuple[tuple[str, str], ...]
) -> bool:
    """Whether sorted multiset ``have`` covers sorted multiset ``need``."""
    i = 0
    for item in need:
        while i < len(have) and have[i] < item:
            i += 1
        if i == len(have) or have[i] != item:
            return False
        i += 1
    return True
