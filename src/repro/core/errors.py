"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid temporal graphs or patterns."""


class TimestampOrderError(GraphError):
    """Raised when edge timestamps violate the total-order requirement.

    The paper's data model (Section 2) requires edges of a temporal graph
    to be totally ordered by timestamp.  Data with concurrent edges must be
    sequentialized first (see :mod:`repro.core.concurrent`).
    """


class PatternError(GraphError):
    """Raised for invalid temporal graph patterns (e.g. bad growth step)."""


class MiningError(ReproError):
    """Raised when a mining run is misconfigured or fails invariants."""


class QueryError(ReproError):
    """Raised for malformed behavior queries or query-engine misuse."""


class ServingError(ReproError):
    """Raised by the streaming detection service for invalid ingestion
    (timestamp collisions inside the live window) or misconfiguration
    (an eviction window shorter than a registered query's span cap)."""


class DatasetError(ReproError):
    """Raised by dataset builders, loaders, and the syscall simulator."""


class ArtifactError(ReproError):
    """Raised for invalid :class:`~repro.api.model.BehaviorModel` bundles:
    unreadable or structurally corrupt files, missing bundle members, or a
    schema version this library release cannot interpret."""
