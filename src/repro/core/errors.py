"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid temporal graphs or patterns."""


class TimestampOrderError(GraphError):
    """Raised when edge timestamps violate the total-order requirement.

    The paper's data model (Section 2) requires edges of a temporal graph
    to be totally ordered by timestamp.  Data with concurrent edges must be
    sequentialized first (see :mod:`repro.core.concurrent`).
    """


class PatternError(GraphError):
    """Raised for invalid temporal graph patterns (e.g. bad growth step)."""


class MiningError(ReproError):
    """Raised when a mining run is misconfigured or fails invariants."""


class QueryError(ReproError):
    """Raised for malformed behavior queries or query-engine misuse."""


class ServingError(ReproError):
    """Raised by the streaming detection service for invalid ingestion
    (timestamp collisions inside the live window) or misconfiguration
    (an eviction window shorter than a registered query's span cap)."""


class CheckpointError(ReproError):
    """Raised by :mod:`repro.serving.checkpoint` for unrecoverable durability
    failures: a checkpoint directory that cannot be created or written, or a
    recovery attempt where every snapshot generation *and* the genesis WAL
    are corrupt.  Torn WAL tails and single corrupt snapshots are expected
    crash artifacts and are handled silently by falling back a generation;
    this error means there is nothing left to fall back to."""


class ShardTimeoutError(ServingError):
    """Raised when a :class:`~repro.serving.fleet.DetectionFleet` shard
    stops producing results within ``result_timeout`` seconds and cannot be
    restarted (or supervision is disabled).

    Carries enough context for structured reporting instead of a raw
    traceback: the stalled ``shard`` id (``None`` when unknown) and
    ``last_acked_seq``, the highest submit sequence number the fleet had
    collected a result for when it gave up.
    """

    def __init__(self, message: str, *, shard: int | None = None,
                 last_acked_seq: int | None = None) -> None:
        super().__init__(message)
        self.shard = shard
        self.last_acked_seq = last_acked_seq


class DatasetError(ReproError):
    """Raised by dataset builders, loaders, and the syscall simulator."""


class ArtifactError(ReproError):
    """Raised for invalid :class:`~repro.api.model.BehaviorModel` bundles:
    unreadable or structurally corrupt files, missing bundle members, or a
    schema version this library release cannot interpret."""


class RegistryError(ReproError):
    """Raised by the :class:`~repro.serving.model_registry.ModelRegistry`
    for invalid registry state: an unreadable or unwritable registry
    directory, a corrupt manifest, an unknown version, or a promotion
    that violates the candidate -> active -> retired state machine."""


class HttpError(ReproError):
    """A serving-tier request error carrying its HTTP status code.

    Raised by :class:`~repro.serving.http.DetectionServer` operations for
    conditions that map directly onto a client-visible response (unknown
    route or version -> 404, malformed payload -> 400, canary/promotion
    conflicts -> 409).  The HTTP handler turns any :class:`ReproError`
    into a JSON error response; this subclass just pins the status.

    ``retry_after`` (seconds) is set on overload responses (429) and is
    emitted as a ``Retry-After`` header by the HTTP handler.
    """

    def __init__(self, status: int, message: str,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.status = int(status)
        self.retry_after = retry_after
