"""Brute-force temporal subgraph matcher (reference oracle).

This module enumerates *all* matches of a temporal pattern inside a
temporal graph by straightforward backtracking over the pattern's edges in
temporal order.  It makes no use of the paper's sequence encodings, so it
serves as the correctness oracle for:

* :mod:`repro.core.subgraph` (subsequence-test algorithm, Lemma 5),
* :mod:`repro.core.vf2` (modified VF2 baseline),
* :mod:`repro.core.graph_index` (index-join matcher),
* the miner's incremental embedding bookkeeping.

Matching a pattern edge to a data edge must preserve the total edge order,
so each successive pattern edge may only map to a data edge with a strictly
larger timestamp than the previously matched one — which is why the search
walks data edges left to right.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.graph import TemporalGraph
from repro.core.pattern import TemporalPattern

__all__ = ["enumerate_matches", "count_matches", "contains_pattern", "Match"]


class Match:
    """One match of a pattern in a data graph.

    Attributes
    ----------
    nodes:
        Tuple mapping pattern node id -> data node id (injective).
    edge_indexes:
        Tuple mapping pattern edge position -> data edge index, strictly
        increasing (order-preserving timestamp mapping ``τ``).
    """

    __slots__ = ("nodes", "edge_indexes")

    def __init__(self, nodes: tuple[int, ...], edge_indexes: tuple[int, ...]) -> None:
        self.nodes = nodes
        self.edge_indexes = edge_indexes

    def last_edge_index(self) -> int:
        """Data index of the latest matched edge (the residual cut point)."""
        return self.edge_indexes[-1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Match(nodes={self.nodes}, edges={self.edge_indexes})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self.nodes == other.nodes and self.edge_indexes == other.edge_indexes

    def __hash__(self) -> int:
        return hash((self.nodes, self.edge_indexes))


def enumerate_matches(
    pattern: TemporalPattern,
    graph: TemporalGraph,
    limit: int | None = None,
) -> Iterator[Match]:
    """Yield every match of ``pattern`` in ``graph``.

    ``limit`` optionally stops the enumeration after that many matches
    (useful when only existence or a bounded sample is needed).
    """
    if not graph.frozen:
        graph.freeze()
    m = pattern.num_edges
    if m > graph.num_edges or pattern.num_nodes > graph.num_nodes:
        return
    edges = graph.edges
    labels = graph.labels
    p_edges = pattern.edges
    p_labels = pattern.labels
    assignment: dict[int, int] = {}
    used_nodes: set[int] = set()
    chosen: list[int] = []
    emitted = 0

    def backtrack(edge_pos: int, from_index: int) -> Iterator[Match]:
        nonlocal emitted
        if edge_pos == m:
            nodes = tuple(assignment[i] for i in range(pattern.num_nodes))
            yield Match(nodes, tuple(chosen))
            emitted += 1
            return
        pu, pv = p_edges[edge_pos]
        # Remaining pattern edges need at least that many data edges.
        last_start = graph.num_edges - (m - edge_pos) + 1
        for idx in range(from_index, last_start):
            edge = edges[idx]
            du, dv = edge.src, edge.dst
            bind_u = pu not in assignment
            bind_v = pv not in assignment
            if not bind_u and assignment[pu] != du:
                continue
            if not bind_v and assignment[pv] != dv:
                continue
            if bind_u:
                if du in used_nodes or labels[du] != p_labels[pu]:
                    continue
            if bind_v:
                if dv in used_nodes or labels[dv] != p_labels[pv]:
                    continue
                if bind_u and pu != pv and du == dv:
                    continue
            if bind_u:
                assignment[pu] = du
                used_nodes.add(du)
            if bind_v and pv not in assignment:
                assignment[pv] = dv
                used_nodes.add(dv)
            chosen.append(idx)
            yield from backtrack(edge_pos + 1, idx + 1)
            chosen.pop()
            if bind_u:
                del assignment[pu]
                used_nodes.discard(du)
            if bind_v and pv in assignment and assignment[pv] == dv:
                del assignment[pv]
                used_nodes.discard(dv)
            if limit is not None and emitted >= limit:
                return

    yield from backtrack(0, 0)


def count_matches(pattern: TemporalPattern, graph: TemporalGraph) -> int:
    """Number of matches of ``pattern`` in ``graph``."""
    return sum(1 for _match in enumerate_matches(pattern, graph))


def contains_pattern(pattern: TemporalPattern, graph: TemporalGraph) -> bool:
    """Whether at least one match of ``pattern`` exists in ``graph``."""
    return next(enumerate_matches(pattern, graph, limit=1), None) is not None
