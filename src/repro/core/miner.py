"""TGMiner: discriminative temporal graph pattern mining (paper Sections 3-4).

Given positive and negative sets of temporal graphs, :class:`TGMiner`
performs a repetition-free depth-first search of the T-connected pattern
space via consecutive growth, scoring every pattern with a partially
(anti-)monotone discriminative function and pruning unpromising branches
with:

* the naive frequency upper bound ``F(freq(Gp, g), 0)`` (Section 4.1);
* **subgraph pruning** (Lemma 4) — the reached pattern is a temporal
  subgraph of an earlier, fully-explored pattern with an identical
  positive residual-graph set whose leftover node labels cannot occur in
  future growth;
* **supergraph pruning** (Proposition 2) — the reached pattern is a
  temporal supergraph (same node count) of an earlier pattern with
  identical positive *and* negative residual-graph sets.

Residual-set equivalence uses the Lemma 6 integer compression by default;
temporal subgraph tests default to the sequence/subsequence algorithm.
Setting the corresponding :class:`MinerConfig` fields reproduces the five
efficiency baselines of Section 6.3 (``SubPrune``, ``SupPrune``,
``PruneGI``, ``PruneVF2``, ``LinearScan``) — see :func:`miner_variant`.

The growth loop's hot path is the subgraph-isomorphism tests issued by
the two prunings.  With :attr:`MinerConfig.index_prefilter` (default on)
the run owns a :class:`~repro.core.graph_index.CandidateFilter` shared
with its tester: candidate pairs whose node-label or edge-label-pair
multisets cannot nest are answered by signature containment before any
mapping search (``MiningStats.index_prefilter_skips``), seed enumeration
walks each graph's one-edge label-pair index, and the VF2 tester seeds
candidates from the filter's label index.  The prefilter only rejects
tests that would provably fail, so mined pattern sets are identical with
it on or off — ``index_prefilter=False`` (CLI ``--no-index``) disables
it, and :func:`miner_variant` always disables it for the five paper
baselines so their reproduced cost profiles stay faithful.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, fields, replace
from typing import Sequence

from repro.core.errors import MiningError
from repro.core.graph import TemporalGraph
from repro.core.graph_index import CandidateFilter, GraphIndexTester
from repro.core.kernel import LabelInterner, build_kernels
from repro.core.growth import (
    EmbeddingTable,
    child_pattern,
    cut_points,
    extend_embeddings,
    seed_patterns,
    sort_extension_keys,
)
from repro.core.pattern import TemporalPattern
from repro.core.residual import ResidualSummary, linear_scan_equal, summarize_residuals
from repro.core.scoring import ScoreFunction, resolve_score
from repro.core.subgraph import SequenceSubgraphTester
from repro.core.vf2 import VF2SubgraphTester

__all__ = [
    "MinerConfig",
    "MinedPattern",
    "MiningStats",
    "MiningResult",
    "TGMiner",
    "miner_variant",
    "split_seed_table",
    "VARIANT_NAMES",
]

NEG_INF = float("-inf")


@dataclass(frozen=True)
class MinerConfig:
    """Tuning knobs and baseline switches for a mining run.

    Attributes
    ----------
    max_edges:
        Cap on pattern size (the "size of the largest patterns that are
        allowed to explore" swept in Figure 14).
    min_pos_support:
        Minimum fraction of positive graphs a pattern must occur in; the
        paper's behaviors repeat across 100 controlled runs, so useful
        query skeletons occur in most positive graphs.
    score:
        Discriminative score function name or instance (Problem 1).
    upper_bound_pruning:
        Apply the naive Section 4.1 bound (all variants do).
    subgraph_pruning / supergraph_pruning:
        The Lemma 4 / Proposition 2 prunings.
    subgraph_test:
        ``"sequence"`` (TGMiner), ``"vf2"`` (PruneVF2) or ``"gi"``
        (PruneGI) temporal subgraph test implementation.
    residual_equivalence:
        ``"integer"`` (Lemma 6 compression) or ``"linear"`` (LinearScan
        baseline).
    index_prefilter:
        Route candidate subgraph tests through the
        :class:`~repro.core.graph_index.CandidateFilter` signature index
        (sound pruning only; results are identical either way).
    max_best_patterns:
        Cap on retained co-optimal patterns (ties can be numerous).
    max_seconds:
        Soft wall-clock budget; exploration stops and the result is
        flagged ``timed_out`` when exceeded.
    """

    max_edges: int = 6
    min_pos_support: float = 0.5
    score: str | ScoreFunction = "log-ratio"
    upper_bound_pruning: bool = True
    subgraph_pruning: bool = True
    supergraph_pruning: bool = True
    subgraph_test: str = "sequence"
    residual_equivalence: str = "integer"
    index_prefilter: bool = True
    max_best_patterns: int = 64
    max_seconds: float | None = None

    def validate(self) -> None:
        """Raise :class:`MiningError` on invalid settings."""
        if self.max_edges < 1:
            raise MiningError("max_edges must be >= 1")
        if not (0.0 <= self.min_pos_support <= 1.0):
            raise MiningError("min_pos_support must be within [0, 1]")
        if self.subgraph_test not in ("sequence", "vf2", "gi"):
            raise MiningError(f"unknown subgraph_test {self.subgraph_test!r}")
        if self.residual_equivalence not in ("integer", "linear"):
            raise MiningError(
                f"unknown residual_equivalence {self.residual_equivalence!r}"
            )

    def to_dict(self) -> dict:
        """JSON-compatible form (model-bundle manifests persist this).

        A :class:`ScoreFunction` instance collapses to its registry name,
        so a round-tripped config always scores identically.
        """
        payload = asdict(self)
        if isinstance(self.score, ScoreFunction):
            payload["score"] = self.score.name
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "MinerConfig":
        """Rebuild a validated config from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise MiningError(f"unknown MinerConfig fields: {', '.join(unknown)}")
        config = cls(**payload)
        config.validate()
        return config


@dataclass(frozen=True)
class MinedPattern:
    """A scored pattern in a mining result."""

    pattern: TemporalPattern
    score: float
    pos_freq: float
    neg_freq: float


@dataclass
class MiningStats:
    """Instrumentation counters backing the efficiency experiments."""

    patterns_explored: int = 0
    subgraph_pruning_triggers: int = 0
    supergraph_pruning_triggers: int = 0
    upper_bound_prunes: int = 0
    subgraph_tests: int = 0
    index_prefilter_skips: int = 0
    index_prefilter_checks: int = 0
    residual_equivalence_tests: int = 0
    elapsed_seconds: float = 0.0
    timed_out: bool = False

    def subgraph_trigger_rate(self) -> float:
        """Fraction of processed patterns pruned by subgraph pruning (Table 3)."""
        if self.patterns_explored == 0:
            return 0.0
        return self.subgraph_pruning_triggers / self.patterns_explored

    def supergraph_trigger_rate(self) -> float:
        """Fraction of processed patterns pruned by supergraph pruning (Table 3)."""
        if self.patterns_explored == 0:
            return 0.0
        return self.supergraph_pruning_triggers / self.patterns_explored


@dataclass
class MiningResult:
    """Outcome of one mining run."""

    best_score: float
    best: list[MinedPattern]
    best_by_size: dict[int, MinedPattern]
    stats: MiningStats

    def top(self, k: int = 5) -> list[MinedPattern]:
        """First ``k`` co-optimal patterns (use ranking for a better order)."""
        return self.best[:k]


def split_seed_table(
    table: EmbeddingTable, n_pos: int
) -> tuple[EmbeddingTable, EmbeddingTable]:
    """Split one seed's embedding table into positive/negative halves.

    :func:`repro.core.growth.seed_patterns` enumerates seeds over the
    concatenated ``positives + negatives`` list, so graph ids below
    ``n_pos`` are positive and the rest are negatives re-based to 0.
    """
    pos = {g: e for g, e in table.items() if g < n_pos}
    neg = {g - n_pos: e for g, e in table.items() if g >= n_pos}
    return pos, neg


@dataclass
class _HistoryEntry:
    """A fully-explored pattern retained for pruning lookups."""

    pattern: TemporalPattern
    num_nodes: int
    num_edges: int
    pos_residuals: ResidualSummary
    neg_residuals: ResidualSummary
    branch_upper_bound: float


class TGMiner:
    """Discriminative temporal graph pattern miner.

    Typical use::

        result = TGMiner(MinerConfig(max_edges=6)).mine(positives, negatives)
        for mined in result.best:
            print(mined.score, mined.pattern.describe())
    """

    def __init__(self, config: MinerConfig | None = None) -> None:
        self.config = config or MinerConfig()
        self.config.validate()

    # ------------------------------------------------------------------
    def mine(
        self,
        positives: Sequence[TemporalGraph],
        negatives: Sequence[TemporalGraph],
    ) -> MiningResult:
        """Mine the most discriminative T-connected temporal patterns."""
        self.config.validate()
        if not positives:
            raise MiningError("positive graph set must not be empty")
        for graph in list(positives) + list(negatives):
            if not graph.frozen:
                graph.freeze()
        run = _MiningRun(self.config, positives, negatives)
        return run.execute()


class _MiningRun:
    """Single-use mutable state for one call to :meth:`TGMiner.mine`."""

    def __init__(
        self,
        config: MinerConfig,
        positives: Sequence[TemporalGraph],
        negatives: Sequence[TemporalGraph],
    ) -> None:
        self.config = config
        self.positives = positives
        self.negatives = negatives
        # The run's data plane: one interner spans positives and
        # negatives so residual label-id sets union/intersect across
        # graphs; kernels are built once per run (and hence once per
        # pool worker — TemporalGraph never pickles its kernel cache).
        self.interner = LabelInterner()
        self.pos_kernels = build_kernels(positives, self.interner)
        self.neg_kernels = build_kernels(negatives, self.interner)
        self.n_pos = len(positives)
        self.n_neg = max(len(negatives), 1)
        self.score_fn = resolve_score(config.score, self.n_pos, self.n_neg)
        self.stats = MiningStats()
        self.best_score = NEG_INF
        self.best: list[MinedPattern] = []
        self.best_by_size: dict[int, MinedPattern] = {}
        self.filter = CandidateFilter() if config.index_prefilter else None
        self.tester = self._make_tester()
        self.keep_cut_pairs = config.residual_equivalence == "linear"
        # History indexes; key structure depends on the equivalence mode.
        self.sub_index: dict[object, list[_HistoryEntry]] = {}
        self.super_index: dict[object, list[_HistoryEntry]] = {}
        self.deadline = (
            time.perf_counter() + config.max_seconds
            if config.max_seconds is not None
            else None
        )

    def _make_tester(self):
        if self.config.subgraph_test == "sequence":
            return SequenceSubgraphTester(prefilter=self.filter)
        if self.config.subgraph_test == "vf2":
            return VF2SubgraphTester(prefilter=self.filter)
        return GraphIndexTester(prefilter=self.filter)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear search state so one run object can mine seeds in isolation.

        The candidate filter and tester are deliberately retained: their
        signature caches are sound (they never change which patterns are
        mined, only how fast tests are answered), and rebuilding them per
        seed would defeat the point of a per-worker run object.  Used by
        :mod:`repro.core.parallel` to give every seed subtree a fresh
        pruning history and incumbent set.
        """
        self.stats = MiningStats()
        self.best_score = NEG_INF
        self.best = []
        self.best_by_size = {}
        self.sub_index = {}
        self.super_index = {}
        self.deadline = (
            time.perf_counter() + self.config.max_seconds
            if self.config.max_seconds is not None
            else None
        )

    def run_seed(
        self, src_label: str, dst_label: str, table: EmbeddingTable
    ) -> None:
        """Explore one seed pattern's subtree from its embedding table."""
        pos_embs, neg_embs = split_seed_table(table, self.n_pos)
        pattern = TemporalPattern.single_edge(src_label, dst_label)
        self._dfs(pattern, pos_embs, neg_embs)

    def finalize(self, started: float) -> MiningResult:
        """Harvest filter counters, rank co-optimals, build the result."""
        self.stats.elapsed_seconds = time.perf_counter() - started
        if self.filter is not None:
            self.stats.index_prefilter_checks = self.filter.stats.checks
            self.stats.index_prefilter_skips = self.tester.stats.prefilter_rejections
        self.best.sort(key=lambda m: (m.pattern.num_edges, str(m.pattern.key())))
        return MiningResult(
            best_score=self.best_score,
            best=self.best,
            best_by_size=self.best_by_size,
            stats=self.stats,
        )

    def execute(self) -> MiningResult:
        started = time.perf_counter()
        seeds = seed_patterns(
            list(self.positives) + list(self.negatives),
            use_index=self.filter is not None,
        )
        min_count = self.config.min_pos_support * self.n_pos
        for src_label, dst_label in sorted(seeds):
            table = seeds[(src_label, dst_label)]
            # cheap support pre-check before materializing the split
            if sum(1 for gid in table if gid < self.n_pos) < min_count:
                continue
            pos_embs, neg_embs = split_seed_table(table, self.n_pos)
            pattern = TemporalPattern.single_edge(src_label, dst_label)
            self._dfs(pattern, pos_embs, neg_embs)
            if self._out_of_time():
                break
        return self.finalize(started)

    # ------------------------------------------------------------------
    def _dfs(
        self,
        pattern: TemporalPattern,
        pos_embs: EmbeddingTable,
        neg_embs: EmbeddingTable,
    ) -> float:
        """Explore ``pattern``'s branch; return an upper bound on its best score."""
        self.stats.patterns_explored += 1
        pos_freq = len(pos_embs) / self.n_pos
        neg_freq = len(neg_embs) / self.n_neg
        score = self.score_fn.score(pos_freq, neg_freq)
        self._record(pattern, score, pos_freq, neg_freq)

        pos_res = summarize_residuals(
            self.positives,
            cut_points(pos_embs),
            keep_cut_pairs=self.keep_cut_pairs,
            with_labels=True,
            kernels=self.pos_kernels,
        )
        neg_res = summarize_residuals(
            self.negatives,
            cut_points(neg_embs),
            keep_cut_pairs=self.keep_cut_pairs,
            with_labels=False,
            kernels=self.neg_kernels,
        )

        branch_ub = score
        pruned_ub = None
        if self.config.subgraph_pruning:
            pruned_ub = self._try_subgraph_pruning(pattern, pos_res)
            if pruned_ub is not None:
                self.stats.subgraph_pruning_triggers += 1
        if pruned_ub is None and self.config.supergraph_pruning:
            pruned_ub = self._try_supergraph_pruning(pattern, pos_res, neg_res)
            if pruned_ub is not None:
                self.stats.supergraph_pruning_triggers += 1

        if pruned_ub is not None:
            branch_ub = max(branch_ub, pruned_ub)
        else:
            grow = pattern.num_edges < self.config.max_edges
            if grow and self.config.upper_bound_pruning:
                if self.score_fn.upper_bound(pos_freq) < self.best_score:
                    self.stats.upper_bound_prunes += 1
                    grow = False
            if grow and not self._out_of_time():
                branch_ub = max(
                    branch_ub, self._grow_children(pattern, pos_embs, neg_embs)
                )
        self._remember(pattern, pos_res, neg_res, branch_ub)
        return branch_ub

    def _grow_children(
        self,
        pattern: TemporalPattern,
        pos_embs: EmbeddingTable,
        neg_embs: EmbeddingTable,
    ) -> float:
        pos_ext = extend_embeddings(self.positives, pos_embs, self.pos_kernels)
        neg_ext = extend_embeddings(self.negatives, neg_embs, self.neg_kernels)
        min_count = self.config.min_pos_support * self.n_pos
        branch_ub = NEG_INF
        for key in sort_extension_keys(pos_ext):
            child_pos = pos_ext[key]
            if len(child_pos) < min_count:
                continue
            child = child_pattern(pattern, key)
            child_ub = self._dfs(child, child_pos, neg_ext.get(key, {}))
            branch_ub = max(branch_ub, child_ub)
            if self._out_of_time():
                break
        return branch_ub

    # ------------------------------------------------------------------
    # pruning
    # ------------------------------------------------------------------
    def _try_subgraph_pruning(
        self, pattern: TemporalPattern, pos_res: ResidualSummary
    ) -> float | None:
        """Lemma 4: return the pruned branch's score bound, or ``None``."""
        key = self._sub_key(pos_res)
        for entry in self.sub_index.get(key, ()):  # discovered before `pattern`
            if entry.branch_upper_bound >= self.best_score:
                continue
            if entry.num_edges < pattern.num_edges:
                continue
            if not self._residuals_equal(pos_res, entry.pos_residuals):
                continue
            self.stats.subgraph_tests += 1
            mapping = self.tester.mapping(pattern, entry.pattern)
            if mapping is None:
                continue
            mapped = set(mapping)
            # residual label sets carry interned ids (the kernels'
            # suffix sets); a pattern label the dataset never interned
            # cannot occur in any residual graph, so unknown ids drop out
            id_of = self.interner.id_of
            leftover_ids = set()
            for n in range(entry.num_nodes):
                if n not in mapped:
                    lid = id_of(entry.pattern.label(n))
                    if lid is not None:
                        leftover_ids.add(lid)
            if leftover_ids & pos_res.label_set:
                continue
            return entry.branch_upper_bound
        return None

    def _try_supergraph_pruning(
        self,
        pattern: TemporalPattern,
        pos_res: ResidualSummary,
        neg_res: ResidualSummary,
    ) -> float | None:
        """Proposition 2: return the pruned branch's score bound, or ``None``."""
        key = self._super_key(pos_res, neg_res, pattern.num_nodes)
        for entry in self.super_index.get(key, ()):
            if entry.branch_upper_bound >= self.best_score:
                continue
            if entry.num_edges > pattern.num_edges:
                continue
            if not self._residuals_equal(pos_res, entry.pos_residuals):
                continue
            if not self._residuals_equal(neg_res, entry.neg_residuals):
                continue
            self.stats.subgraph_tests += 1
            if self.tester.mapping(entry.pattern, pattern) is None:
                continue
            return entry.branch_upper_bound
        return None

    def _residuals_equal(self, left: ResidualSummary, right: ResidualSummary) -> bool:
        self.stats.residual_equivalence_tests += 1
        if self.config.residual_equivalence == "integer":
            return left.i_value == right.i_value
        return linear_scan_equal(left.cut_pairs, right.cut_pairs)

    def _sub_key(self, pos_res: ResidualSummary) -> object:
        if self.config.residual_equivalence == "integer":
            return pos_res.i_value
        return len(pos_res.cut_pairs)

    def _super_key(
        self, pos_res: ResidualSummary, neg_res: ResidualSummary, num_nodes: int
    ) -> object:
        if self.config.residual_equivalence == "integer":
            return (pos_res.i_value, neg_res.i_value, num_nodes)
        return (len(pos_res.cut_pairs), len(neg_res.cut_pairs), num_nodes)

    def _remember(
        self,
        pattern: TemporalPattern,
        pos_res: ResidualSummary,
        neg_res: ResidualSummary,
        branch_ub: float,
    ) -> None:
        entry = _HistoryEntry(
            pattern=pattern,
            num_nodes=pattern.num_nodes,
            num_edges=pattern.num_edges,
            pos_residuals=pos_res,
            neg_residuals=neg_res,
            branch_upper_bound=branch_ub,
        )
        if self.config.subgraph_pruning:
            self.sub_index.setdefault(self._sub_key(pos_res), []).append(entry)
        if self.config.supergraph_pruning:
            key = self._super_key(pos_res, neg_res, pattern.num_nodes)
            self.super_index.setdefault(key, []).append(entry)

    # ------------------------------------------------------------------
    def _record(
        self, pattern: TemporalPattern, score: float, pos_freq: float, neg_freq: float
    ) -> None:
        mined = MinedPattern(pattern, score, pos_freq, neg_freq)
        size = pattern.num_edges
        incumbent = self.best_by_size.get(size)
        if incumbent is None or score > incumbent.score:
            self.best_by_size[size] = mined
        if score > self.best_score:
            self.best_score = score
            self.best = [mined]
        elif (
            score == self.best_score
            and len(self.best) < self.config.max_best_patterns
        ):
            self.best.append(mined)

    def _out_of_time(self) -> bool:
        if self.deadline is None:
            return False
        if time.perf_counter() > self.deadline:
            self.stats.timed_out = True
            return True
        return False


VARIANT_NAMES = (
    "TGMiner",
    "SubPrune",
    "SupPrune",
    "PruneGI",
    "PruneVF2",
    "LinearScan",
)


def miner_variant(name: str, base: MinerConfig | None = None) -> MinerConfig:
    """Config for TGMiner or one of the five efficiency baselines (§6.1).

    All variants share the pattern-growth algorithm and the naive upper
    bound; they differ exactly as the paper describes:

    * ``TGMiner``   — both prunings, sequence tests, integer residuals;
    * ``SubPrune``  — subgraph pruning only;
    * ``SupPrune``  — supergraph pruning only;
    * ``PruneGI``   — both prunings, graph-index subgraph tests;
    * ``PruneVF2``  — both prunings, modified-VF2 subgraph tests;
    * ``LinearScan``— both prunings, linear-scan residual equivalence.

    The five baselines always run with ``index_prefilter=False``: the
    candidate prefilter is this repo's addition, and reproducing the
    paper's cost profiles (e.g. PruneGI's per-test index-build overhead)
    requires leaving them unfiltered.  ``TGMiner`` keeps the base
    config's setting.
    """
    base = base or MinerConfig()
    table = {
        "tgminer": replace(base),
        "subprune": replace(base, supergraph_pruning=False, index_prefilter=False),
        "supprune": replace(base, subgraph_pruning=False, index_prefilter=False),
        "prunegi": replace(base, subgraph_test="gi", index_prefilter=False),
        "prunevf2": replace(base, subgraph_test="vf2", index_prefilter=False),
        "linearscan": replace(
            base, residual_equivalence="linear", index_prefilter=False
        ),
    }
    normalized = name.lower().replace("-", "").replace("_", "")
    if normalized not in table:
        raise MiningError(
            f"unknown miner variant {name!r}; choose from {VARIANT_NAMES}"
        )
    return table[normalized]
