"""Interned-label CSR graph kernel — the shared array-backed data plane.

Every hot loop in this repo — embedding extension in the miner, the
temporal index join in the query engine, delta evaluation in the
streaming service — ultimately walks the same thing: a time-sorted edge
list with node labels.  The object layer (:class:`~repro.core.graph.TemporalGraph`
with per-edge :class:`~repro.core.graph.TemporalEdge` instances and
string-keyed dict indexes) is the right *construction* interface, but a
poor *scan* representation: each edge visit pays an object fetch plus
attribute accesses, and each label comparison hashes a string.

:class:`GraphKernel` flattens a frozen graph once into compact parallel
arrays:

* ``edge_src`` / ``edge_dst`` / ``edge_time`` — flat, time-sorted edge
  columns (position ``i`` is edge index ``i``), stored as contiguous
  int64 buffers (:mod:`repro.core.buffers`): scalar loops read them at
  near-list speed, the vectorized matcher wraps them zero-copy into
  numpy arrays, and :mod:`repro.core.shm` maps the same layout into
  shared memory for pickle-free parallel mining;
* ``out_indptr``/``out_indices`` and ``in_indptr``/``in_indices`` — CSR
  adjacency: the edge indexes leaving/entering node ``n`` are
  ``indices[indptr[n]:indptr[n + 1]]``, ascending, so "incident edges
  after cut point ``c``" is one :func:`~bisect.bisect_right` away;
* ``out_dsts`` / ``in_srcs`` — the far endpoint of each CSR slot
  (``out_dsts[j] == edge_dst[out_indices[j]]``), kept as plain lists so
  the growth hot loop reads the endpoint it branches on at list speed
  instead of paying the buffer scalar-access tax per incident edge;
* ``node_label_ids`` — node labels interned to dense ints through a
  :class:`LabelInterner`;
* ``pair_ids`` — the one-edge substructure index re-keyed by interned
  ``(src_label_id, dst_label_id)`` pairs (the CSR buckets the matcher
  joins over; the bucket lists are shared with the owning graph's
  string-keyed index, not copied);
* ``suffix_label_ids`` — the residual node-label sets as frozensets of
  interned ids.

**Interning contract.**  Label ids are *per interner*, and an interner
is per dataset (one mining run, one query engine, one stream) — never
global.  Ids are assigned in first-encounter order, so they are
deterministic for a fixed graph list but meaningless across datasets;
persist labels, never ids.  Containment/equality results are identical
to the string path because interning is a bijection within one interner.

**Byte-identity contract.**  The kernel is a *view*: every consumer that
switches from the object path to the kernel path (growth, matching,
signatures, residual summaries) produces bit-identical results — same
mined pattern sets, same match enumeration order, same spans and scores.
``tests/test_kernel.py`` pins this with cross-implementation property
tests against the retained legacy paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.buffers import IntColumn

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (graph imports us)
    from repro.core.graph import TemporalGraph

__all__ = ["LabelInterner", "GraphKernel", "EdgeArrays", "build_kernels"]

#: What an *edge-indexed source* hands the array join: ``(base, src, dst,
#: time)`` where position ``i - base`` of each flat column describes the
#: edge with global id ``i``.  Frozen graphs use ``base == 0``; the
#: streaming window's base is its compaction offset.  Columns are
#: contiguous int64 buffers (see :mod:`repro.core.buffers`).
EdgeArrays = tuple[int, IntColumn, IntColumn, IntColumn]


class LabelInterner:
    """Bijective ``label string <-> dense int id`` mapping for one dataset.

    Ids are handed out in first-:meth:`intern` order, which makes them
    deterministic for a fixed construction order (the parallel miner
    relies on this: every worker re-interns the same graph list and gets
    the same ids without shipping the interner).
    """

    __slots__ = ("_ids", "_labels")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._labels: list[str] = []

    def intern(self, label: str) -> int:
        """Return the id of ``label``, assigning the next id if unseen."""
        lid = self._ids.get(label)
        if lid is None:
            lid = len(self._labels)
            self._ids[label] = lid
            self._labels.append(label)
        return lid

    def id_of(self, label: str) -> int | None:
        """Return the id of ``label`` or ``None`` without assigning one."""
        return self._ids.get(label)

    def snapshot(self) -> tuple[str, ...]:
        """The interned labels in id order (id ``i`` carries label ``i``).

        This is the persistable form of an interner: ids are never
        written to disk (see the interning contract above), only the
        first-encounter label order, from which :meth:`restore` rebuilds
        a bit-identical mapping in any process.
        """
        return tuple(self._labels)

    @classmethod
    def restore(cls, labels: Sequence[str]) -> "LabelInterner":
        """Rebuild an interner from a :meth:`snapshot` label order."""
        interner = cls()
        for label in labels:
            interner.intern(label)
        return interner

    def label_of(self, lid: int) -> str:
        """Return the label string carrying id ``lid``."""
        return self._labels[lid]

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: str) -> bool:
        return label in self._ids


class GraphKernel:
    """Frozen array-backed view of one :class:`TemporalGraph`.

    Built once per ``(graph, interner)`` pair via :meth:`from_graph`
    (graphs cache their kernel — see :meth:`TemporalGraph.kernel`) and
    read by every hot path afterwards.  The edge columns are contiguous
    int64 buffers shared with the owning graph's :meth:`edge_arrays`
    (possibly read-only shared-memory views); CSR runs and label-id
    tables are plain lists / frozensets.  The kernel itself is immutable
    by convention.
    """

    __slots__ = (
        "interner",
        "num_nodes",
        "num_edges",
        "edge_src",
        "edge_dst",
        "edge_time",
        "node_labels",
        "node_label_ids",
        "out_indptr",
        "out_indices",
        "out_dsts",
        "in_indptr",
        "in_indices",
        "in_srcs",
        "pair_ids",
        "suffix_label_ids",
    )

    def __init__(
        self,
        interner: LabelInterner,
        edge_src: IntColumn,
        edge_dst: IntColumn,
        edge_time: IntColumn,
        node_labels: Sequence[str],
        node_label_ids: list[int],
        out_indptr: list[int],
        out_indices: list[int],
        in_indptr: list[int],
        in_indices: list[int],
        pair_ids: dict[tuple[int, int], Sequence[int]],
        suffix_label_ids: list[frozenset[int]],
    ) -> None:
        self.interner = interner
        self.num_nodes = len(node_label_ids)
        self.num_edges = len(edge_src)
        self.edge_src = edge_src
        self.edge_dst = edge_dst
        self.edge_time = edge_time
        self.node_labels = node_labels
        self.node_label_ids = node_label_ids
        self.out_indptr = out_indptr
        self.out_indices = out_indices
        self.in_indptr = in_indptr
        self.in_indices = in_indices
        self.out_dsts = [edge_dst[j] for j in out_indices]
        self.in_srcs = [edge_src[j] for j in in_indices]
        self.pair_ids = pair_ids
        self.suffix_label_ids = suffix_label_ids

    @classmethod
    def from_graph(
        cls, graph: "TemporalGraph", interner: LabelInterner | None = None
    ) -> "GraphKernel":
        """Flatten a frozen graph into a kernel bound to ``interner``.

        Prefer :meth:`TemporalGraph.kernel`, which caches the result on
        the graph; this constructor always builds fresh.
        """
        if not graph.frozen:
            graph.freeze()
        if interner is None:
            interner = LabelInterner()
        base, edge_src, edge_dst, edge_time = graph.edge_arrays()
        assert base == 0, "frozen graphs index edges from zero"
        labels = graph.labels
        intern = interner.intern
        node_label_ids = [intern(label) for label in labels]
        out_indptr, out_indices = _csr(graph._out)
        in_indptr, in_indices = _csr(graph._in)
        pair_ids = {
            (intern(src_label), intern(dst_label)): idxs
            for (src_label, dst_label), idxs in graph.label_pair_index().items()
        }
        # suffix_label_ids[i] = interned labels of nodes touched by edges
        # i..end — mirrors TemporalGraph._build_indexes exactly, so the
        # id sets are the string sets under the interner bijection.
        m = len(edge_src)
        suffix: list[frozenset[int]] = [frozenset()] * (m + 1)
        acc: set[int] = set()
        for i in range(m - 1, -1, -1):
            acc.add(node_label_ids[edge_src[i]])
            acc.add(node_label_ids[edge_dst[i]])
            suffix[i] = frozenset(acc)
        return cls(
            interner=interner,
            edge_src=edge_src,
            edge_dst=edge_dst,
            edge_time=edge_time,
            node_labels=labels,
            node_label_ids=node_label_ids,
            out_indptr=out_indptr,
            out_indices=out_indices,
            in_indptr=in_indptr,
            in_indices=in_indices,
            pair_ids=pair_ids,
            suffix_label_ids=suffix,
        )

    # ------------------------------------------------------------------
    def edge_arrays(self) -> EdgeArrays:
        """The flat edge columns in the matcher's ``EdgeArrays`` shape."""
        return (0, self.edge_src, self.edge_dst, self.edge_time)

    def edges_between_ids(self, src_id: int, dst_id: int) -> Sequence[int]:
        """Time-sorted edge indexes for an interned label pair."""
        return self.pair_ids.get((src_id, dst_id), ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphKernel(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"labels={len(self.interner)})"
        )


def _csr(adjacency: Sequence[Sequence[int]]) -> tuple[list[int], list[int]]:
    """Flatten a list-of-lists adjacency into ``(indptr, indices)``."""
    indptr = [0] * (len(adjacency) + 1)
    indices: list[int] = []
    extend = indices.extend
    for node, row in enumerate(adjacency):
        extend(row)
        indptr[node + 1] = len(indices)
    return indptr, indices


def build_kernels(
    graphs: Sequence["TemporalGraph"], interner: LabelInterner
) -> list[GraphKernel]:
    """Kernels for a graph *dataset*, all interned through ``interner``.

    This is the per-dataset entry point the miner uses: one interner
    spans positives and negatives so residual label-id sets union and
    intersect correctly across graphs.
    """
    return [graph.kernel(interner) for graph in graphs]
