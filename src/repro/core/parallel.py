"""Parallel sharded mining: seed-partitioned DFS across a process pool.

The serial :class:`~repro.core.miner.TGMiner` explores one-edge seed
patterns in sorted order, sharing three pieces of state across seed
subtrees: the incumbent best score (upper-bound pruning) and the
subgraph/supergraph pruning-history indexes.  That sharing is an
*optimization*, not a correctness requirement — every pruning rule is
sound, i.e. it only ever cuts branches that provably cannot contain a
pattern tying the run's final best score.  :class:`ParallelMiner`
exploits this to shard the search:

* the seed table is enumerated once in the parent process and
  partitioned into per-seed tasks (a seed = one ``(src label, dst
  label)`` pair passing the positive-support floor, in sorted order);
* each pool worker owns a single :class:`~repro.core.miner._MiningRun`
  built once from the training graphs — published through one
  read-only shared-memory segment under the ``spawn`` start method
  (workers attach to the corpus columns instead of unpickling a private
  copy, see :mod:`repro.core.shm`), inherited copy-on-write under
  ``fork`` — its
  :class:`~repro.core.graph_index.CandidateFilter` and subgraph-tester
  signature caches persist across all the seeds that worker mines, and
  so do its interned-label CSR kernels
  (:mod:`repro.core.kernel`), which the run constructor *rebuilds* in
  the worker process: :class:`~repro.core.graph.TemporalGraph` drops its
  kernel cache on pickling, so kernels are never shipped, only derived
  locally from the (shared or unpickled) graphs — and every task seed is
  explored with a *fresh* pruning history
  (:meth:`~repro.core.miner._MiningRun.reset`);
* the parent merges per-seed results deterministically in sorted seed
  order (:func:`merge_seed_results`), re-applying the serial miner's
  co-optimal cap and final ranking.

Because every seed subtree is searched in isolation, the mined outcome
is invariant to worker count and task scheduling.  Byte-identity with
the serial miner holds for the mined pattern set itself — ``best_score``
and the ``best`` list with per-pattern scores and frequencies
(:func:`mining_fingerprint`): no sound pruning can remove a branch
containing a final-best-tying pattern, child extensions are always
enumerated in sorted key order, and therefore co-optimal patterns are
discovered in the same depth-first order in both regimes.  Exploration
*counters* (:class:`~repro.core.miner.MiningStats`) and the per-size
incumbents (``best_by_size``) legitimately differ from the serial run,
which explores strictly fewer patterns thanks to its cross-seed history;
both are still deterministic for any worker count.

``config.max_seconds`` applies per seed subtree here (each worker task
arms its own deadline) rather than to the whole search as in the serial
miner, so timed-out runs — like the serial miner's — carry no
byte-identity claim.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, fields as dataclass_fields
from typing import Callable, Sequence, TypeVar

from repro.core.errors import MiningError
from repro.core.graph import TemporalGraph
from repro.core.growth import EmbeddingTable, seed_patterns
from repro.core.miner import (
    NEG_INF,
    MinedPattern,
    MinerConfig,
    MiningResult,
    MiningStats,
    _MiningRun,
)
from repro.core.shm import (
    AttachedCorpus,
    CorpusDescriptor,
    SharedSeedTable,
    attach_corpus,
    publish_corpus,
)

__all__ = [
    "SeedResult",
    "ParallelMiner",
    "merge_seed_results",
    "mining_fingerprint",
    "default_workers",
    "resolve_start_method",
    "run_sharded",
]

#: A seed task: the (src label, dst label) pair of a one-edge pattern.
SeedKey = tuple[str, str]

_T = TypeVar("_T")
_R = TypeVar("_R")


def default_workers() -> int:
    """Worker count used when none is requested: one per CPU."""
    return max(1, os.cpu_count() or 1)


def resolve_start_method(start_method: str | None = None) -> str:
    """Pick a multiprocessing start method.

    ``fork`` is preferred on Linux: workers inherit the training graphs
    copy-on-write instead of unpickling a private copy.  Everywhere else
    ``spawn`` is used (and exercises the pickled-graphs path) — macOS
    offers fork but CPython made spawn its default there because forking
    after system frameworks load is unsafe.
    """
    if start_method is not None:
        return start_method
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def run_sharded(
    tasks: Sequence[_T],
    task_fn: Callable[[_T], _R],
    workers: int,
    initializer: Callable[..., None],
    initargs: tuple,
    start_method: str | None = None,
    deadline_seconds: float | None = None,
) -> list[_R]:
    """Map ``tasks`` through a worker pool, inline when one worker suffices.

    The inline path calls ``initializer``/``task_fn`` in-process, so a
    ``workers=1`` run exercises exactly the code a pool worker runs (and
    keeps results trivially identical to any other worker count).  Module
    globals set by ``initializer`` are left in place after an inline run;
    every call re-initializes, so stale state cannot leak between runs.

    ``deadline_seconds`` is a soft budget for the whole map: once it is
    exceeded, remaining tasks are abandoned (the pool is terminated) and
    the partial result list is returned — callers detect the truncation
    by comparing lengths.
    """
    if not tasks:
        return []
    deadline = (
        time.perf_counter() + deadline_seconds
        if deadline_seconds is not None
        else None
    )
    workers = min(workers, len(tasks))
    if workers <= 1:
        initializer(*initargs)
        results: list[_R] = []
        for task in tasks:
            results.append(task_fn(task))
            if deadline is not None and time.perf_counter() > deadline:
                break
        return results
    ctx = multiprocessing.get_context(resolve_start_method(start_method))
    with ctx.Pool(
        processes=workers, initializer=initializer, initargs=initargs
    ) as pool:
        if deadline is None:
            return pool.map(task_fn, tasks, chunksize=1)
        results = []
        for result in pool.imap(task_fn, tasks, chunksize=1):
            results.append(result)
            if time.perf_counter() > deadline:
                break
        return results


# ----------------------------------------------------------------------
# per-worker mining state
# ----------------------------------------------------------------------

_STATE: "_WorkerState | None" = None


class _WorkerState:
    """One pool worker's mining state, built once per process.

    Owns a :class:`_MiningRun` (hence one CandidateFilter + tester whose
    signature caches serve every seed this worker mines) and the full
    seed table — handed over from the parent, which already enumerated
    it to build the task list (free under ``fork``, pickled once per
    worker under ``spawn``); recomputed locally only if absent.  Tasks
    themselves stay label-pair-sized either way.
    """

    def __init__(
        self,
        config: MinerConfig,
        positives: Sequence[TemporalGraph],
        negatives: Sequence[TemporalGraph],
        seeds: "dict[SeedKey, EmbeddingTable] | SharedSeedTable | None" = None,
    ) -> None:
        for graph in list(positives) + list(negatives):
            if not graph.frozen:
                graph.freeze()
        self.run = _MiningRun(config, positives, negatives)
        # pins the shared-memory mapping while the state is alive
        # (attached graphs alias it); None for pickled/forked corpora
        self.corpus: AttachedCorpus | None = None
        self.seeds: "dict[SeedKey, EmbeddingTable] | SharedSeedTable" = (
            seeds
            if seeds is not None
            else seed_patterns(
                list(positives) + list(negatives),
                use_index=config.index_prefilter,
            )
        )

    def mine_seed(self, seed: SeedKey) -> "SeedResult":
        run = self.run
        run.reset()
        checks_before = run.filter.stats.checks if run.filter is not None else 0
        skips_before = run.tester.stats.prefilter_rejections
        started = time.perf_counter()
        run.run_seed(seed[0], seed[1], self.seeds.get(seed, {}))
        run.stats.elapsed_seconds = time.perf_counter() - started
        if run.filter is not None:
            run.stats.index_prefilter_checks = run.filter.stats.checks - checks_before
            run.stats.index_prefilter_skips = (
                run.tester.stats.prefilter_rejections - skips_before
            )
        return SeedResult(
            seed=seed,
            best_score=run.best_score,
            best=tuple(run.best),
            best_by_size=dict(run.best_by_size),
            stats=run.stats,
        )


def _init_worker(
    config: MinerConfig,
    positives: Sequence[TemporalGraph],
    negatives: Sequence[TemporalGraph],
    seeds: dict[SeedKey, EmbeddingTable] | None = None,
) -> None:
    global _STATE
    _STATE = _WorkerState(config, positives, negatives, seeds=seeds)


def _init_worker_shared(config: MinerConfig, descriptor: CorpusDescriptor) -> None:
    """Pool initializer for the shared-memory corpus path.

    Only the descriptor is pickled; the graphs and seed tables are
    rebuilt over the parent's read-only segment (:func:`attach_corpus`).
    """
    global _STATE
    corpus = attach_corpus(descriptor)
    _STATE = _WorkerState(
        config, corpus.positives, corpus.negatives, seeds=corpus.seeds
    )
    _STATE.corpus = corpus


def _mine_seed_task(seed: SeedKey) -> "SeedResult":
    if _STATE is None:  # pragma: no cover - defensive; pool always inits
        raise MiningError("mining worker used before initialization")
    return _STATE.mine_seed(seed)


def _clear_worker_state() -> None:
    # an inline (workers=1) run sets the module global in this process;
    # drop it so the corpus, seed tables, and signature caches can be
    # garbage-collected in library use
    global _STATE
    _STATE = None


# ----------------------------------------------------------------------
# results and merging
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SeedResult:
    """Outcome of mining one seed subtree in isolation.

    ``best`` is kept in depth-first discovery order (the serial miner's
    pre-ranking order) so the merge can re-apply the global co-optimal
    cap exactly as the serial run would have.
    """

    seed: SeedKey
    best_score: float
    best: tuple[MinedPattern, ...]
    best_by_size: dict[int, MinedPattern]
    stats: MiningStats


def merge_seed_results(
    results: Sequence[SeedResult], config: MinerConfig
) -> MiningResult:
    """Deterministically reconcile per-seed results into one MiningResult.

    Seeds are processed in sorted key order — the serial miner's seed
    order — so the concatenation of per-seed co-optimal lists *is* the
    global discovery order.  A seed whose local best trails the global
    best contributes nothing; a seed that ties contributes its co-optimal
    list (already capped per shard, which can only drop patterns that
    the global cap would drop too, since a dropped pattern has
    ``max_best_patterns`` earlier co-optimals within its own seed).  The
    merged list is then capped and ranked exactly like the serial run's.

    ``best_by_size`` keeps, per size, the highest score seen in any seed;
    ties resolve to the earliest seed in sorted order.  Stats counters
    are summed; ``elapsed_seconds`` is left for the caller to stamp with
    the parent's wall clock.
    """
    ordered = sorted(results, key=lambda r: r.seed)
    best_score = NEG_INF
    for result in ordered:
        if result.best_score > best_score:
            best_score = result.best_score

    best: list[MinedPattern] = []
    for result in ordered:
        if result.best_score != best_score:
            continue
        for mined in result.best:
            if len(best) >= config.max_best_patterns:
                break
            best.append(mined)
    best.sort(key=lambda m: (m.pattern.num_edges, str(m.pattern.key())))

    best_by_size: dict[int, MinedPattern] = {}
    stats = MiningStats()
    for result in ordered:
        for size, mined in result.best_by_size.items():
            incumbent = best_by_size.get(size)
            if incumbent is None or mined.score > incumbent.score:
                best_by_size[size] = mined
        seed_stats = result.stats
        # every counter sums across shards; the two non-counter fields
        # (parent wall clock, any-shard timeout flag) are special-cased
        # so counters added to MiningStats later merge automatically
        for stat_field in dataclass_fields(MiningStats):
            if stat_field.name in ("elapsed_seconds", "timed_out"):
                continue
            setattr(
                stats,
                stat_field.name,
                getattr(stats, stat_field.name)
                + getattr(seed_stats, stat_field.name),
            )
        stats.timed_out = stats.timed_out or seed_stats.timed_out

    return MiningResult(
        best_score=best_score,
        best=best,
        best_by_size=best_by_size,
        stats=stats,
    )


def mining_fingerprint(result: MiningResult) -> tuple:
    """Canonical identity of a mined pattern set.

    Two results with equal fingerprints found the same best score and the
    same ranked co-optimal pattern list, with bit-equal scores and
    frequencies — the byte-identity contract between serial and parallel
    mining (and between PR 1's index-on/off ablation runs).
    """
    return (
        result.best_score,
        tuple(
            (m.pattern.key(), m.score, m.pos_freq, m.neg_freq)
            for m in result.best
        ),
    )


# ----------------------------------------------------------------------
# the miner
# ----------------------------------------------------------------------


class ParallelMiner:
    """Work-sharded TGMiner producing identical mined pattern sets.

    Typical use::

        result = ParallelMiner(MinerConfig(max_edges=6), workers=4).mine(
            positives, negatives
        )

    ``workers`` defaults to the CPU count; ``workers=1`` runs the same
    seed-isolated search inline (no pool), which guarantees results are
    invariant to the worker count.  ``start_method`` overrides the
    multiprocessing start method (``fork`` where available, else
    ``spawn``).

    ``share_memory`` controls corpus distribution for pooled runs:
    ``None`` (default) publishes the training graphs and seed tables
    through one read-only shared-memory segment (:mod:`repro.core.shm`)
    under ``spawn`` — where workers would otherwise each unpickle a
    private copy — and keeps plain copy-on-write inheritance under
    ``fork``, where the pool initializer's arguments are never pickled
    and a segment would only add copies.  ``True``/``False`` force the
    respective path; either way the mined result is byte-identical
    (the segment carries the exact frozen columns).
    """

    def __init__(
        self,
        config: MinerConfig | None = None,
        workers: int | None = None,
        start_method: str | None = None,
        share_memory: bool | None = None,
    ) -> None:
        self.config = config or MinerConfig()
        self.config.validate()
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise MiningError("workers must be >= 1")
        self.start_method = start_method
        self.share_memory = share_memory

    # ------------------------------------------------------------------
    def mine(
        self,
        positives: Sequence[TemporalGraph],
        negatives: Sequence[TemporalGraph],
    ) -> MiningResult:
        """Mine the most discriminative patterns with sharded workers."""
        self.config.validate()
        if not positives:
            raise MiningError("positive graph set must not be empty")
        positives = list(positives)
        negatives = list(negatives)
        for graph in positives + negatives:
            if not graph.frozen:
                graph.freeze()
        started = time.perf_counter()
        seeds = seed_patterns(
            positives + negatives, use_index=self.config.index_prefilter
        )
        tasks = self._filter_tasks(seeds, len(positives))
        # only seeds passing the support floor are ever mined; don't
        # ship (or retain) the embedding tables of the filtered-out rest
        task_seeds = {key: seeds[key] for key in tasks}
        # ``max_seconds`` stays a soft budget for the whole search, as in
        # the serial miner: each seed subtree additionally arms its own
        # deadline (workers cannot see each other's clocks), and the
        # parent stops dispatching once the budget is spent, so the
        # wall-clock overshoot is bounded by the in-flight subtrees.
        use_shm = self.share_memory
        if use_shm is None:
            use_shm = (
                min(self.workers, len(tasks)) > 1
                and resolve_start_method(self.start_method) == "spawn"
            )
        handle = None
        try:
            if use_shm:
                descriptor, handle = publish_corpus(
                    positives, negatives, seeds=task_seeds
                )
                initializer, initargs = _init_worker_shared, (self.config, descriptor)
            else:
                initializer, initargs = _init_worker, (
                    self.config, positives, negatives, task_seeds,
                )
            results = run_sharded(
                tasks,
                _mine_seed_task,
                workers=self.workers,
                initializer=initializer,
                initargs=initargs,
                start_method=self.start_method,
                deadline_seconds=self.config.max_seconds,
            )
        finally:
            _clear_worker_state()
            if handle is not None:
                # also runs when a worker crashed mid-map: nothing may
                # outlive the pool in /dev/shm
                handle.unlink()
        merged = merge_seed_results(results, self.config)
        if len(results) < len(tasks):
            merged.stats.timed_out = True
        merged.stats.elapsed_seconds = time.perf_counter() - started
        return merged

    def seed_tasks(
        self,
        positives: Sequence[TemporalGraph],
        negatives: Sequence[TemporalGraph],
    ) -> list[SeedKey]:
        """Sorted seed keys passing the positive-support floor.

        This is exactly the set of seeds the serial miner would explore
        (its loop skips under-supported seeds before descending).
        """
        seeds = seed_patterns(
            list(positives) + list(negatives),
            use_index=self.config.index_prefilter,
        )
        return self._filter_tasks(seeds, len(positives))

    def _filter_tasks(
        self, seeds: dict[SeedKey, EmbeddingTable], n_pos: int
    ) -> list[SeedKey]:
        min_count = self.config.min_pos_support * n_pos
        tasks: list[SeedKey] = []
        for key in sorted(seeds):
            pos_graphs = sum(1 for gid in seeds[key] if gid < n_pos)
            if pos_graphs < min_count:
                continue
            tasks.append(key)
        return tasks
