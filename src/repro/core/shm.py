"""Zero-copy shared-memory corpus publication for parallel mining.

Under the ``spawn`` start method every pool worker normally unpickles a
private copy of the training corpus — graph objects, indexes, and seed
embedding tables — which dominates startup for any real dataset.  This
module exploits the data plane's flat-buffer layout
(:mod:`repro.core.buffers`) instead: the parent packs the corpus into
**one** ``multiprocessing.shared_memory`` segment of int64 words and
ships only a small picklable :class:`CorpusDescriptor`; workers attach
and rebuild their graphs *over* the shared bytes.

Layout (all offsets are 8-byte words into the segment):

* per graph, in corpus order (positives then negatives): the node
  label-id column, then the ``src`` / ``dst`` / ``time`` edge columns —
  exactly the kernel's :data:`~repro.core.kernel.EdgeArrays` layout, so
  an attached graph's columns *are* read-only views of the segment and
  its :class:`~repro.core.kernel.GraphKernel` (and the vectorized
  matcher) wrap them zero-copy;
* the seed embedding tables, flattened to ``(node0, node1, last_index)``
  triples per ``(seed, graph)`` group; workers materialize one seed's
  table lazily when that seed is mined (:class:`SharedSeedTable`), never
  the whole table.

Node labels travel as the corpus :class:`~repro.core.kernel.LabelInterner`
snapshot inside the descriptor (strings cannot live in the int segment),
preserving first-encounter id order.

**Lifecycle contract.**  The parent owns the segment: it creates it via
:func:`publish_corpus`, keeps the returned :class:`CorpusHandle` alive
for the pool's lifetime, and calls :meth:`CorpusHandle.unlink` in a
``finally`` — also covering worker crashes, since the pool error
propagates through the same frame.  Workers (and inline runs) call
:func:`attach_corpus` and treat the mapping as **read-only**: on Linux
the attachment is an ``mmap.ACCESS_READ`` mapping of the segment's
``/dev/shm`` file (read-only at the OS level), elsewhere a
``SharedMemory`` attachment wrapped in ``memoryview.toreadonly()``
views — either way a stray write raises instead of corrupting a
sibling worker.  Attachers never unlink.  The mmap route also
sidesteps a CPython ≤ 3.12 wart: ``SharedMemory(name=...)``
*attachments* register with the ``resource_tracker`` too, and
concurrent register/unregister of one name from several workers races
the tracker's set-based cache (stderr ``KeyError`` noise at exit); the
fallback path unregisters immediately, which is as much as that API
allows.
"""

from __future__ import annotations

import mmap
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Sequence

from repro.core.buffers import INT_BYTES, INT_TYPECODE, int_column
from repro.core.errors import MiningError
from repro.core.graph import TemporalGraph
from repro.core.growth import Embedding, EmbeddingTable
from repro.core.kernel import LabelInterner

__all__ = [
    "CorpusDescriptor",
    "CorpusHandle",
    "AttachedCorpus",
    "GraphBlock",
    "SharedSeedTable",
    "BlobDescriptor",
    "AttachedBlob",
    "publish_corpus",
    "attach_corpus",
    "publish_blob",
    "attach_blob",
]

SeedKey = tuple[str, str]


@dataclass(frozen=True)
class GraphBlock:
    """Where one graph's columns live inside the segment."""

    name: str
    num_nodes: int
    num_edges: int
    offset: int  # word offset of the node label-id column; src/dst/time follow


@dataclass(frozen=True)
class CorpusDescriptor:
    """Everything a worker needs to attach: segment name + offset map.

    This is the only thing pickled per worker; its size is proportional
    to the number of graphs and distinct seed label pairs, never to the
    number of edges or embeddings.
    """

    shm_name: str
    labels: tuple[str, ...]  # interner snapshot, id order
    num_positives: int
    graphs: tuple[GraphBlock, ...]
    # seed key -> ((graph id, word offset, embedding count), ...)
    seeds: dict[SeedKey, tuple[tuple[int, int, int], ...]]
    total_words: int


class CorpusHandle:
    """The parent's ownership token for one published segment."""

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self._shm: shared_memory.SharedMemory | None = shm

    @property
    def name(self) -> str:
        """The segment's name (for tests inspecting ``/dev/shm``)."""
        if self._shm is None:
            raise MiningError("shared corpus already unlinked")
        return self._shm.name

    def unlink(self) -> None:
        """Close and remove the segment; idempotent.

        After this, attached workers keep their live mappings (POSIX
        keeps the memory until the last unmap) but no new attach can
        succeed and nothing is left behind in ``/dev/shm``.
        """
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class SharedSeedTable:
    """Lazy per-seed view of the packed embedding triples.

    Quacks like the ``dict[SeedKey, EmbeddingTable]`` the worker state
    expects (``get``/``in``/iteration) but materializes one seed's
    table only when that seed is actually mined, from the shared
    triples — a worker assigned 3 of 200 seeds never pays for the other
    197.  Materialized tables are cached: the worker's mining run hands
    the same table to every growth pass of that seed.
    """

    def __init__(
        self,
        words: memoryview,
        index: dict[SeedKey, tuple[tuple[int, int, int], ...]],
    ) -> None:
        self._words = words
        self._index = index
        self._cache: dict[SeedKey, EmbeddingTable] = {}

    def get(
        self, key: SeedKey, default: EmbeddingTable | None = None
    ) -> EmbeddingTable | None:
        table = self._cache.get(key)
        if table is not None:
            return table
        entry = self._index.get(key)
        if entry is None:
            return default
        words = self._words
        table = {}
        for gid, offset, count in entry:
            embeddings = set()
            for i in range(offset, offset + 3 * count, 3):
                embeddings.add(
                    Embedding((words[i], words[i + 1]), words[i + 2])
                )
            table[gid] = embeddings
        self._cache[key] = table
        return table

    def __getitem__(self, key: SeedKey) -> EmbeddingTable:
        table = self.get(key)
        if table is None:
            raise KeyError(key)
        return table

    def __contains__(self, key: object) -> bool:
        return key in self._index

    def __iter__(self):
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)


@dataclass
class AttachedCorpus:
    """A worker's view of a published corpus.

    Keep this object alive as long as any of its graphs is in use — the
    graphs' edge columns alias the mapping.  ``seeds`` is ``None`` when
    the publisher packed no seed tables.
    """

    positives: list[TemporalGraph]
    negatives: list[TemporalGraph]
    seeds: SharedSeedTable | None
    # the mmap (Linux) or SharedMemory (fallback) keeping the bytes alive
    _mapping: object
    _words: memoryview


@dataclass(frozen=True)
class BlobDescriptor:
    """Where an opaque byte payload lives: segment name + true length.

    The length travels in the descriptor because shared-memory segments
    round their size up to the page, so the attachment cannot recover the
    payload boundary from the mapping alone.
    """

    shm_name: str
    size: int


@dataclass
class AttachedBlob:
    """A worker's read-only view of a published byte payload.

    ``data`` aliases the mapping — keep the object alive while the bytes
    are in use, exactly like :class:`AttachedCorpus`.
    """

    data: memoryview
    _mapping: object

    def to_bytes(self) -> bytes:
        """Copy the payload out (safe to use after the mapping dies)."""
        return bytes(self.data)


def publish_blob(payload: bytes) -> tuple[BlobDescriptor, CorpusHandle]:
    """Publish one opaque byte payload through a shared-memory segment.

    The small-descriptor/parent-owned-handle lifecycle is identical to
    :func:`publish_corpus` — this is the same spawn machinery applied to
    non-columnar cargo (the detection fleet ships its registered query
    slate this way: serialized once, attached read-only by every shard
    worker instead of being pickled per worker).
    """
    shm = shared_memory.SharedMemory(create=True, size=max(len(payload), 1))
    try:
        shm.buf[: len(payload)] = payload
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    return BlobDescriptor(shm_name=shm.name, size=len(payload)), CorpusHandle(shm)


def attach_blob(descriptor: BlobDescriptor) -> AttachedBlob:
    """Map a published payload read-only (same discipline as corpora).

    Linux attaches via a read-only mmap of the segment's ``/dev/shm``
    file, sidestepping the resource tracker entirely; the fallback
    attaches through :class:`~multiprocessing.shared_memory.SharedMemory`
    and unregisters, as :func:`attach_corpus` does.  Attachers never
    unlink — the publisher's :class:`CorpusHandle` owns the segment.
    """
    mapping: object
    path = os.path.join("/dev/shm", descriptor.shm_name.lstrip("/"))
    if os.path.exists(path):
        fd = os.open(path, os.O_RDONLY)
        try:
            mapping = mmap.mmap(fd, 0, access=mmap.ACCESS_READ)
        finally:
            os.close(fd)
        buf = memoryview(mapping)
    else:  # pragma: no cover - non-Linux fallback
        shm = shared_memory.SharedMemory(name=descriptor.shm_name)
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
        mapping = shm
        buf = shm.buf
    return AttachedBlob(
        data=buf[: descriptor.size].toreadonly(), _mapping=mapping
    )


def publish_corpus(
    positives: Sequence[TemporalGraph],
    negatives: Sequence[TemporalGraph],
    seeds: dict[SeedKey, EmbeddingTable] | None = None,
) -> tuple[CorpusDescriptor, CorpusHandle]:
    """Pack a training corpus (and optionally seed tables) into one segment.

    All graphs must be frozen (their columns are read via
    :meth:`~repro.core.graph.TemporalGraph.edge_arrays`).  Returns the
    descriptor to ship to workers and the handle the parent must
    eventually :meth:`~CorpusHandle.unlink`.
    """
    graphs = list(positives) + list(negatives)
    interner = LabelInterner()
    blocks: list[GraphBlock] = []
    columns: list = []  # buffers to copy, in segment order
    cursor = 0
    for graph in graphs:
        if not graph.frozen:
            graph.freeze()
        base, src, dst, times = graph.edge_arrays()
        assert base == 0, "frozen graphs index edges from zero"
        label_ids = int_column(interner.intern(label) for label in graph.labels)
        blocks.append(
            GraphBlock(
                name=graph.name,
                num_nodes=len(label_ids),
                num_edges=len(src),
                offset=cursor,
            )
        )
        columns.extend((label_ids, src, dst, times))
        cursor += len(label_ids) + 3 * len(src)

    seed_index: dict[SeedKey, tuple[tuple[int, int, int], ...]] = {}
    if seeds is not None:
        for key in sorted(seeds):
            groups = []
            for gid in sorted(seeds[key]):
                packed = int_column(
                    word
                    for emb in sorted(seeds[key][gid])
                    for word in (emb.nodes[0], emb.nodes[1], emb.last_index)
                )
                count = len(packed) // 3
                groups.append((gid, cursor, count))
                columns.append(packed)
                cursor += len(packed)
            seed_index[key] = tuple(groups)

    shm = shared_memory.SharedMemory(create=True, size=max(cursor, 1) * INT_BYTES)
    try:
        words = memoryview(shm.buf).cast(INT_TYPECODE)
        try:
            pos = 0
            for column in columns:
                n = len(column)
                if n:
                    words[pos : pos + n] = memoryview(column)
                pos += n
        finally:
            words.release()
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    descriptor = CorpusDescriptor(
        shm_name=shm.name,
        labels=interner.snapshot(),
        num_positives=len(list(positives)),
        graphs=tuple(blocks),
        seeds=seed_index,
        total_words=cursor,
    )
    return descriptor, CorpusHandle(shm)


def attach_corpus(descriptor: CorpusDescriptor) -> AttachedCorpus:
    """Map a published corpus read-only and rebuild its graphs over it.

    The rebuilt graphs' edge columns are read-only memoryview slices of
    the shared mapping (their kernels and the vectorized matcher wrap
    them zero-copy); node labels are rehydrated from the descriptor's
    interner snapshot.  The attachment is unregistered from the resource
    tracker — only the publishing parent may unlink.
    """
    mapping: object
    path = os.path.join("/dev/shm", descriptor.shm_name.lstrip("/"))
    if os.path.exists(path):
        # Linux: map the segment's backing file directly, read-only at
        # the OS level, without touching the resource tracker at all
        fd = os.open(path, os.O_RDONLY)
        try:
            mapping = mmap.mmap(fd, 0, access=mmap.ACCESS_READ)
        finally:
            os.close(fd)
        buf = memoryview(mapping)
    else:  # pragma: no cover - non-Linux fallback
        shm = shared_memory.SharedMemory(name=descriptor.shm_name)
        # this Python registers attachments too; without this, the
        # worker's tracker would unlink the parent's segment at exit
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
        mapping = shm
        buf = shm.buf
    words = buf.cast(INT_TYPECODE).toreadonly()
    label_of = descriptor.labels
    graphs: list[TemporalGraph] = []
    for block in descriptor.graphs:
        o = block.offset
        nn = block.num_nodes
        ne = block.num_edges
        label_ids = words[o : o + nn]
        src = words[o + nn : o + nn + ne]
        dst = words[o + nn + ne : o + nn + 2 * ne]
        times = words[o + nn + 2 * ne : o + nn + 3 * ne]
        graphs.append(
            TemporalGraph.from_frozen_columns(
                name=block.name,
                labels=[label_of[lid] for lid in label_ids],
                src=src,
                dst=dst,
                time=times,
            )
        )
    seeds = (
        SharedSeedTable(words, descriptor.seeds)
        if descriptor.seeds
        else SharedSeedTable(words, {})
    )
    return AttachedCorpus(
        positives=graphs[: descriptor.num_positives],
        negatives=graphs[descriptor.num_positives :],
        seeds=seeds,
        _mapping=mapping,
        _words=words,
    )
