"""Subsequence-test based temporal subgraph test (paper Section 4.3).

Deciding ``g1 ⊆t g2`` is NP-complete (Proposition 3), but total edge order
lets us search far less than general subgraph isomorphism.  Following
Lemma 5 the test enumerates injective node mappings ``fs`` realizing
``nodeseq(g1) ⊑ enhseq(g2)`` and accepts as soon as one of them satisfies
``fs(edgeseq(g1)) ⊑ edgeseq(g2)``.

The enumeration applies the Appendix J pruning techniques:

* **label sequence test** — a label-level subsequence pre-test on both the
  node and edge sequences rejects most non-subgraph pairs without any
  mapping search;
* **local information match** — a candidate mapping ``a -> b`` is dropped
  when ``b``'s in/out degree cannot cover ``a``'s;
* **prefix pruning** — failed search states ``(next g1 node, enhseq
  position, used g2 nodes)`` are memoized so a prefix reached again through
  a different assignment order is pruned immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pattern import TemporalPattern
from repro.core.sequence import encode, label_subsequence

__all__ = ["SequenceSubgraphTester", "is_temporal_subgraph", "find_mapping"]


@dataclass
class SubgraphTestStats:
    """Counters exposed for the efficiency experiments (Figure 13)."""

    tests: int = 0
    label_rejections: int = 0
    prefilter_rejections: int = 0
    mappings_tried: int = 0
    prefix_hits: int = 0


@dataclass
class SequenceSubgraphTester:
    """Reusable tester object carrying statistics counters.

    The miner creates one tester per run so that the number of temporal
    subgraph tests (70M+ in the paper's sshd-login workload) and the work
    saved by each pruning technique can be reported.

    When a :class:`~repro.core.graph_index.CandidateFilter` is supplied,
    its O(|labels|) signature-containment pretest runs before the
    subsequence label test; it rejects only pairs that provably have no
    mapping, so results are unchanged.
    """

    use_label_test: bool = True
    use_local_info: bool = True
    use_prefix_pruning: bool = True
    prefilter: object | None = None
    stats: SubgraphTestStats = field(default_factory=SubgraphTestStats)

    # ------------------------------------------------------------------
    def contains(self, small: TemporalPattern, big: TemporalPattern) -> bool:
        """Return whether ``small ⊆t big``."""
        return self.mapping(small, big) is not None

    def mapping(
        self, small: TemporalPattern, big: TemporalPattern
    ) -> tuple[int, ...] | None:
        """Return an injective node mapping proving ``small ⊆t big``.

        The result maps small-pattern node ``i`` to big-pattern node
        ``result[i]``; ``None`` when no temporal subgraph relation exists.
        """
        self.stats.tests += 1
        if small.num_edges > big.num_edges or small.num_nodes > big.num_nodes:
            return None
        if self.prefilter is not None and not self.prefilter.pattern_vs_pattern(
            small, big
        ):
            self.stats.prefilter_rejections += 1
            return None
        enc_small = encode(small)
        enc_big = encode(big)
        if self.use_label_test and not self._label_pretest(enc_small, enc_big):
            self.stats.label_rejections += 1
            return None

        n_small = small.num_nodes
        enh = enc_big.enhseq
        # interned-id projections: equality-only comparisons, identical
        # outcomes to the label strings at int-hash cost
        enh_labels = enc_big.enh_label_ids
        small_labels = enc_small.node_label_ids
        small_out = small.out_degrees
        small_in = small.in_degrees
        big_out = big.out_degrees
        big_in = big.in_degrees
        small_edges = enc_small.edgeseq
        big_edges = enc_big.edgeseq
        # Memo of failed search states.  The key must include the full
        # assignment prefix: the final edge-subsequence test depends on
        # *which* small node maps to which big node, so caching on the
        # used-node set alone would wrongly prune assignments that only
        # differ by a permutation.  Distinct position choices that bind
        # the same candidates can still converge on an identical state,
        # which is when this memo saves work (Appendix J prefix pruning).
        failed_states: set[tuple[int, int, tuple[int, ...]]] = set()
        assignment: list[int] = [-1] * n_small
        used: set[int] = set()

        def edge_test() -> bool:
            pos = 0
            n_big_edges = len(big_edges)
            for u, v in small_edges:
                want = (assignment[u], assignment[v])
                while pos < n_big_edges and big_edges[pos] != want:
                    pos += 1
                if pos == n_big_edges:
                    return False
                pos += 1
            return True

        def search(node: int, enh_from: int) -> bool:
            if node == n_small:
                self.stats.mappings_tried += 1
                return edge_test()
            state = (node, enh_from, tuple(assignment[:node]))
            if self.use_prefix_pruning and state in failed_states:
                self.stats.prefix_hits += 1
                return False
            label = small_labels[node]
            for pos in range(enh_from, len(enh)):
                if enh_labels[pos] != label:
                    continue
                cand = enh[pos]
                if cand in used:
                    continue
                if self.use_local_info and (
                    big_out[cand] < small_out[node] or big_in[cand] < small_in[node]
                ):
                    continue
                assignment[node] = cand
                used.add(cand)
                if search(node + 1, pos + 1):
                    return True
                used.discard(cand)
                assignment[node] = -1
            if self.use_prefix_pruning:
                failed_states.add(state)
            return False

        if search(0, 0):
            return tuple(assignment)
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _label_pretest(enc_small, enc_big) -> bool:
        """Label sequence test (Appendix J): necessary conditions only.

        Runs over the interned-id projections — subsequence containment
        only compares elements for equality, so the id bijection gives
        the same verdicts as the label strings.
        """
        if not label_subsequence(enc_small.node_label_ids, enc_big.enh_label_ids):
            return False
        return label_subsequence(
            enc_small.edge_label_pair_ids, enc_big.edge_label_pair_ids
        )


_DEFAULT_TESTER = SequenceSubgraphTester()


def is_temporal_subgraph(small: TemporalPattern, big: TemporalPattern) -> bool:
    """Module-level convenience wrapper: ``small ⊆t big``."""
    return _DEFAULT_TESTER.contains(small, big)


def find_mapping(
    small: TemporalPattern,
    big: TemporalPattern,
) -> tuple[int, ...] | None:
    """Module-level convenience wrapper returning a witness mapping."""
    return _DEFAULT_TESTER.mapping(small, big)
