"""Domain-knowledge based pattern ranking (paper Appendix M).

TGMiner frequently returns several patterns tied at the highest
discriminative score.  The paper breaks ties with an *interest score*
derived from domain knowledge:

* a node label ``l`` scores ``interest(l) = 1 / freq(l)`` where
  ``freq(l)`` counts the training graphs containing ``l`` — rare labels
  carry more security signal;
* labels on a *blacklist* (temp files, cache files, ``/proc`` counters,
  ...) are forced to zero interest;
* a pattern's interest is the sum over its nodes, and the top-5 patterns
  become behavior queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.graph import TemporalGraph
from repro.core.miner import MinedPattern
from repro.core.pattern import TemporalPattern

__all__ = ["InterestModel", "DEFAULT_BLACKLIST", "rank_patterns", "select_queries"]

#: Label substrings that carry little security-relevant information; any
#: label containing one of these is blacklisted (paper Appendix M lists
#: "TmpFile", "CacheFile", "/proc/stat/*" as examples).
DEFAULT_BLACKLIST: tuple[str, ...] = (
    "tmp",
    "cache",
    "/proc/",
    "urandom",
    "locale",
)


@dataclass
class InterestModel:
    """Per-label interest scores learned from a training corpus.

    Parameters
    ----------
    blacklist:
        Substrings that zero out a label's interest (case-insensitive).
    """

    blacklist: Sequence[str] = DEFAULT_BLACKLIST
    _freq: dict[str, int] = field(default_factory=dict)
    _total_graphs: int = 0

    @classmethod
    def fit(
        cls,
        graphs: Iterable[TemporalGraph],
        blacklist: Sequence[str] = DEFAULT_BLACKLIST,
    ) -> "InterestModel":
        """Count per-graph label occurrences over the training data."""
        return cls.fit_label_sets(
            (graph.label_set() for graph in graphs), blacklist
        )

    @classmethod
    def fit_label_sets(
        cls,
        label_sets: Iterable[frozenset[str]],
        blacklist: Sequence[str] = DEFAULT_BLACKLIST,
    ) -> "InterestModel":
        """:meth:`fit` from bare per-graph label sets.

        The disk-backed corpus store fits the model from its graph
        catalog without decoding a single edge page; :meth:`fit`
        delegates here so both paths share one counting loop.
        """
        model = cls(blacklist=tuple(blacklist))
        for label_set in label_sets:
            model._total_graphs += 1
            for label in label_set:
                model._freq[label] = model._freq.get(label, 0) + 1
        return model

    def label_interest(self, label: str) -> float:
        """``1 / freq(label)``, or 0 for blacklisted / unseen labels."""
        lowered = label.lower()
        if any(token in lowered for token in self.blacklist):
            return 0.0
        count = self._freq.get(label, 0)
        if count == 0:
            return 0.0
        return 1.0 / count

    def pattern_interest(self, pattern: TemporalPattern) -> float:
        """Sum of node-label interests over the pattern's nodes."""
        return sum(
            self.label_interest(pattern.label(n)) for n in range(pattern.num_nodes)
        )


def rank_patterns(
    mined: Sequence[MinedPattern], model: InterestModel
) -> list[MinedPattern]:
    """Order co-optimal patterns by interest score (descending).

    Ties on interest break deterministically by pattern size (larger
    first: more context in the query) and then by pattern identity.
    """
    return sorted(
        mined,
        key=lambda m: (
            -model.pattern_interest(m.pattern),
            -m.pattern.num_edges,
            str(m.pattern.key()),
        ),
    )


def select_queries(
    mined: Sequence[MinedPattern],
    model: InterestModel,
    top_k: int = 5,
) -> list[TemporalPattern]:
    """Pick the top-``k`` patterns as behavior queries (paper uses k=5)."""
    return [m.pattern for m in rank_patterns(mined, model)[:top_k]]
