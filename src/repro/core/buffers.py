"""Contiguous int64 edge-column buffers and the numpy/stdlib backend split.

The data plane stores every flat edge column (``src`` / ``dst`` / ``time``,
see :mod:`repro.core.kernel`) as a **contiguous signed-64-bit buffer**
rather than a Python list.  One storage representation serves three
consumers with three different access patterns:

* scalar loops (embedding growth, the fallback join) index the buffer
  directly — ``array('q')`` hands back plain ints at near-list speed;
* the vectorized matcher wraps the same bytes **zero-copy** into numpy
  arrays (:func:`as_ndarray` uses ``np.frombuffer``) when numpy is
  installed, so masks and ``searchsorted`` run at C speed without any
  conversion pass;
* :mod:`repro.core.shm` maps the same layout into
  ``multiprocessing.shared_memory`` segments, where a worker's columns
  are read-only ``memoryview`` slices of the shared block — again
  zero-copy, and again satisfying both consumers above.

**Backend selection.**  numpy is an optional dependency (the ``fast``
extra).  :func:`active_numpy` returns the module when it is importable
*and* not disabled, else ``None``; every numpy consumer must fall back to
the stdlib path in that case, and both paths are pinned byte-identical by
``tests/test_properties.py``.  Two override hooks exist so the fallback
stays testable on machines that have numpy:

* the ``REPRO_KERNEL_BACKEND`` environment variable (``auto`` | ``numpy``
  | ``array``), read at import;
* :func:`force_backend` for in-process switching from tests.

An ``IntColumn`` is duck-typed: anything indexable yielding ints with a
buffer-protocol int64 layout (``array('q')``, a cast ``memoryview`` of a
shared segment, or an int64 ``np.ndarray``).  Columns are append-only
while owned by a builder (:class:`~repro.serving.streaming.StreamingGraph`
appends and slices in place) and immutable-by-convention everywhere else.
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, Sequence

__all__ = [
    "INT_TYPECODE",
    "INT_BYTES",
    "IntColumn",
    "active_numpy",
    "as_ndarray",
    "backend_name",
    "force_backend",
    "have_numpy",
    "int_column",
    "new_column",
]

#: Typecode/width of every edge column: signed 64-bit ints.  Timestamps,
#: node ids, and edge ids must all fit — the data plane's one numeric
#: contract (``array('q')`` raises ``OverflowError`` past it).
INT_TYPECODE = "q"
INT_BYTES = 8

#: Duck type of a flat edge column (see module docstring).
IntColumn = Sequence[int]

try:  # pragma: no cover - exercised via the no-numpy CI job
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

#: ``None`` (auto) or an explicit override set by env / force_backend().
_FORCED: str | None = None

_ENV_BACKEND = os.environ.get("REPRO_KERNEL_BACKEND", "auto").strip().lower()
if _ENV_BACKEND in ("numpy", "array"):
    _FORCED = _ENV_BACKEND
elif _ENV_BACKEND not in ("", "auto"):  # pragma: no cover - config error
    raise ValueError(
        f"REPRO_KERNEL_BACKEND={_ENV_BACKEND!r}: use 'auto', 'numpy', or 'array'"
    )


def have_numpy() -> bool:
    """Whether numpy is importable at all (ignoring overrides)."""
    return _numpy is not None


def active_numpy():
    """The numpy module when the vectorized backend is active, else ``None``.

    ``None`` means every consumer must take its stdlib path: numpy is not
    installed, or the ``array`` backend was forced for fallback testing.
    """
    if _FORCED == "array":
        return None
    if _FORCED == "numpy" and _numpy is None:  # pragma: no cover - config error
        raise RuntimeError("REPRO_KERNEL_BACKEND=numpy but numpy is not installed")
    return _numpy


def backend_name() -> str:
    """``"numpy"`` or ``"array"`` — what :func:`active_numpy` resolves to."""
    return "numpy" if active_numpy() is not None else "array"


def force_backend(name: str | None) -> None:
    """Override backend selection in-process (tests / benchmarks).

    ``"array"`` forces the stdlib fallback, ``"numpy"`` demands numpy,
    ``None`` or ``"auto"`` restores automatic selection.
    """
    global _FORCED
    if name in (None, "auto"):
        _FORCED = None
        return
    if name not in ("numpy", "array"):
        raise ValueError(f"unknown kernel backend {name!r}")
    _FORCED = name


def int_column(values: Iterable[int]) -> IntColumn:
    """Materialize ``values`` as a contiguous int64 column."""
    return array(INT_TYPECODE, values)


def new_column() -> "array[int]":
    """An empty, appendable int64 column (streaming construction)."""
    return array(INT_TYPECODE)


def as_ndarray(column: IntColumn):
    """A zero-copy int64 ndarray over ``column``, or ``None`` without numpy.

    ``array('q')``, int64 ndarrays, and cast memoryviews (including
    read-only shared-memory views) all share their bytes with the result;
    a plain list (legacy callers) is copied.  The returned array must be
    treated as read-only — it aliases the column's storage.
    """
    np = active_numpy()
    if np is None:
        return None
    if isinstance(column, np.ndarray):
        return column if column.dtype == np.int64 else column.astype(np.int64)
    if isinstance(column, (array, memoryview)):
        return np.frombuffer(column, dtype=np.int64)
    return np.asarray(column, dtype=np.int64)
