"""Temporal graph data structures.

A temporal graph (paper Section 2) is a tuple ``(V, E, A, T)``:

* ``V`` — a node set; here nodes are dense integer ids ``0..n-1``,
* ``E ⊆ V × V × T`` — directed edges *totally ordered* by timestamp
  (multi-edges between the same node pair are allowed),
* ``A : V → Σ`` — a labeling function (here: arbitrary strings),
* ``T`` — non-negative integer timestamps.

:class:`TemporalGraph` is the mutable builder / container used both for
raw system-monitoring data and for the training sets fed to the miner.
Patterns (timestamps normalized to ``1..|E|``) live in
:mod:`repro.core.pattern`.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.buffers import IntColumn, int_column
from repro.core.errors import GraphError, TimestampOrderError
from repro.core.kernel import EdgeArrays, GraphKernel, LabelInterner

__all__ = ["TemporalEdge", "TemporalGraph"]


@dataclass(frozen=True, slots=True)
class TemporalEdge:
    """A directed, timestamped edge ``(src, dst, time)``.

    ``src`` and ``dst`` are integer node ids in the owning graph and
    ``time`` is a non-negative integer timestamp.
    """

    src: int
    dst: int
    time: int

    def endpoints(self) -> tuple[int, int]:
        """Return ``(src, dst)`` as a tuple."""
        return (self.src, self.dst)


class TemporalGraph:
    """A node-labeled directed temporal multigraph with total edge order.

    Nodes are created through :meth:`add_node` and receive consecutive
    integer ids.  Edges are appended through :meth:`add_edge`; timestamps
    must be strictly increasing in insertion order unless explicitly
    provided, in which case the graph sorts and validates them at
    :meth:`freeze` time.

    The class supports cheap, index-backed access patterns needed by the
    miner: edges sorted by time, per-node adjacency, per-label node lists,
    and suffix label sets used for residual-graph bookkeeping.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._labels: list[str] = []
        self._edges: list[TemporalEdge] = []
        self._frozen = False
        self._next_auto_time = 0
        # Lazily built indexes (freeze() populates them).
        self._out: list[list[int]] = []
        self._in: list[list[int]] = []
        self._label_nodes: dict[str, list[int]] = {}
        self._edge_times: list[int] = []
        self._suffix_labels: list[frozenset[str]] = []
        self._pair_edges: dict[tuple[str, str], list[int]] = {}
        # Array-backed data plane (repro.core.kernel): contiguous int64
        # buffers (repro.core.buffers), built lazily on first use and
        # never pickled — workers rebuild after fork/spawn, or receive
        # read-only shared-memory views via from_frozen_columns().
        self._col_src: IntColumn | None = None
        self._col_dst: IntColumn | None = None
        self._col_time: IntColumn | None = None
        self._kernel: GraphKernel | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, label: str) -> int:
        """Add a node with ``label`` and return its integer id."""
        if self._frozen:
            raise GraphError("cannot add nodes to a frozen graph")
        self._labels.append(label)
        return len(self._labels) - 1

    def add_edge(self, src: int, dst: int, time: int | None = None) -> TemporalEdge:
        """Append a directed edge from ``src`` to ``dst``.

        When ``time`` is omitted, the next unused integer timestamp is
        assigned, which keeps the graph totally ordered by construction.
        Explicit timestamps may arrive out of order; :meth:`freeze` sorts
        and validates them.
        """
        if self._frozen:
            raise GraphError("cannot add edges to a frozen graph")
        n = len(self._labels)
        if not (0 <= src < n and 0 <= dst < n):
            raise GraphError(f"edge ({src}, {dst}) references unknown node")
        if time is None:
            time = self._next_auto_time
        if time < 0:
            raise TimestampOrderError(f"negative timestamp {time}")
        self._next_auto_time = max(self._next_auto_time, time + 1)
        edge = TemporalEdge(src, dst, time)
        self._edges.append(edge)
        return edge

    def freeze(self) -> "TemporalGraph":
        """Sort edges by time, validate the total order, build indexes.

        Returns ``self`` so builders can chain
        ``TemporalGraph().freeze()``.  Freezing is idempotent.
        """
        if self._frozen:
            return self
        self._edges.sort(key=lambda e: e.time)
        seen_times = set()
        for edge in self._edges:
            if edge.time in seen_times:
                raise TimestampOrderError(
                    f"concurrent edges at t={edge.time}; sequentialize first "
                    "(see repro.core.concurrent)"
                )
            seen_times.add(edge.time)
        self._build_indexes()
        self._frozen = True
        return self

    def _build_indexes(self) -> None:
        n = len(self._labels)
        self._out = [[] for _ in range(n)]
        self._in = [[] for _ in range(n)]
        self._label_nodes = {}
        self._pair_edges = {}
        self._edge_times = [e.time for e in self._edges]
        for node, label in enumerate(self._labels):
            self._label_nodes.setdefault(label, []).append(node)
        for idx, edge in enumerate(self._edges):
            self._out[edge.src].append(idx)
            self._in[edge.dst].append(idx)
            key = (self._labels[edge.src], self._labels[edge.dst])
            self._pair_edges.setdefault(key, []).append(idx)
        # suffix_labels[i] = labels of nodes touched by edges i..end;
        # suffix_labels[len(edges)] = empty set.
        suffix: list[frozenset[str]] = [frozenset()] * (len(self._edges) + 1)
        acc: set[str] = set()
        for i in range(len(self._edges) - 1, -1, -1):
            edge = self._edges[i]
            acc.add(self._labels[edge.src])
            acc.add(self._labels[edge.dst])
            suffix[i] = frozenset(acc)
        self._suffix_labels = suffix

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """Whether :meth:`freeze` has been called."""
        return self._frozen

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    @property
    def edges(self) -> Sequence[TemporalEdge]:
        """Edges sorted by timestamp (once frozen)."""
        return self._edges

    @property
    def labels(self) -> Sequence[str]:
        """Node labels indexed by node id."""
        return self._labels

    def label(self, node: int) -> str:
        """Return the label of ``node``."""
        return self._labels[node]

    def label_set(self) -> frozenset[str]:
        """Return the set of distinct node labels in this graph."""
        return frozenset(self._labels)

    def nodes_with_label(self, label: str) -> Sequence[int]:
        """Return node ids carrying ``label`` (empty if none)."""
        self._require_frozen()
        return self._label_nodes.get(label, ())

    def out_edges(self, node: int) -> Iterator[TemporalEdge]:
        """Iterate edges leaving ``node``."""
        self._require_frozen()
        return (self._edges[i] for i in self._out[node])

    def in_edges(self, node: int) -> Iterator[TemporalEdge]:
        """Iterate edges entering ``node``."""
        self._require_frozen()
        return (self._edges[i] for i in self._in[node])

    def out_degree(self, node: int) -> int:
        """Number of edges leaving ``node``."""
        self._require_frozen()
        return len(self._out[node])

    def in_degree(self, node: int) -> int:
        """Number of edges entering ``node``."""
        self._require_frozen()
        return len(self._in[node])

    def edges_between(self, src_label: str, dst_label: str) -> Sequence[int]:
        """Edge indexes whose endpoints carry the given labels, by time.

        This is the one-edge substructure index used by the graph-index
        matcher (baseline ``PruneGI``) and the query engine.
        """
        self._require_frozen()
        return self._pair_edges.get((src_label, dst_label), ())

    def label_pair_index(self) -> Mapping[tuple[str, str], Sequence[int]]:
        """The full one-edge substructure index: label pair -> edge indexes.

        Keys are ``(src_label, dst_label)`` pairs that occur in the graph;
        values are time-sorted edge indexes.  This is the same index
        :meth:`edges_between` reads one entry of; exposing the whole
        mapping lets index-first consumers (seed enumeration, signature
        construction) iterate label pairs without scanning edges.  The
        returned mapping is read-only — the underlying index is part of
        the frozen graph's invariants.
        """
        self._require_frozen()
        return MappingProxyType(self._pair_edges)

    def edge_arrays(self) -> EdgeArrays:
        """Flat ``(base, src, dst, time)`` edge columns (base is 0).

        The columns are contiguous int64 buffers (see
        :mod:`repro.core.buffers`): built once on first access and
        cached, or — for graphs reconstructed by
        :meth:`from_frozen_columns` — read-only views into a shared
        memory segment.  They are what
        :func:`repro.core.graph_index.find_matches` scans instead of
        per-edge objects.
        """
        self._require_frozen()
        if self._col_src is None:
            self._col_src = int_column(edge.src for edge in self._edges)
            self._col_dst = int_column(edge.dst for edge in self._edges)
            self._col_time = int_column(self._edge_times)
        return (0, self._col_src, self._col_dst, self._col_time)

    def kernel(self, interner: LabelInterner | None = None) -> GraphKernel:
        """The graph's interned-label CSR kernel, built lazily and cached.

        With ``interner`` given, the kernel is (re)built bound to that
        interner unless the cached one already is — datasets (mining
        runs) pass one shared interner across all their graphs so label
        ids agree.  A no-arg call returns the cached kernel *whatever
        interner it is currently bound to* (a fresh graph-local one only
        if nothing is cached yet): the flat arrays and CSR runs are
        interner-agnostic, but label ids must always be translated
        through the returned kernel's own ``interner``, never assumed
        graph-local.  The cache is dropped on pickling: under
        multiprocessing every worker rebuilds its own kernels rather
        than deserializing them.
        """
        self._require_frozen()
        cached = self._kernel
        if cached is not None and (interner is None or cached.interner is interner):
            return cached
        kernel = GraphKernel.from_graph(self, interner)
        self._kernel = kernel
        return kernel

    def edge_index_after(self, time: int) -> int:
        """Index of the first edge with timestamp strictly greater than ``time``."""
        self._require_frozen()
        return bisect_right(self._edge_times, time)

    def residual_size(self, time: int) -> int:
        """Number of edges with timestamp strictly greater than ``time``.

        This is ``|R(G, G')|`` for any match ``G'`` whose largest edge
        timestamp equals ``time`` (paper Section 4.2).
        """
        return self.num_edges - self.edge_index_after(time)

    def suffix_label_set(self, edge_index: int) -> frozenset[str]:
        """Labels of nodes incident to edges at positions ``>= edge_index``.

        ``suffix_label_set(edge_index_after(t))`` is the residual node
        label set ``L_R(G, G')`` for a match ending at time ``t``.
        """
        self._require_frozen()
        return self._suffix_labels[edge_index]

    def span(self) -> tuple[int, int]:
        """Return ``(first, last)`` edge timestamps.

        Raises :class:`GraphError` on an empty graph.
        """
        if not self._edges:
            raise GraphError("span() on empty graph")
        return (self._edges[0].time, self._edges[-1].time)

    def window(self, start: int, end: int, name: str = "") -> "TemporalGraph":
        """Extract the subgraph induced by edges with ``start <= t <= end``.

        Node ids are compacted; the result is frozen.  Used to slice long
        monitoring logs into per-interval training/test graphs.
        """
        self._require_frozen()
        sub = TemporalGraph(name=name or f"{self.name}[{start},{end}]")
        remap: dict[int, int] = {}
        lo = bisect_right(self._edge_times, start - 1)
        for i in range(lo, len(self._edges)):
            edge = self._edges[i]
            if edge.time > end:
                break
            for node in edge.endpoints():
                if node not in remap:
                    remap[node] = sub.add_node(self._labels[node])
            sub.add_edge(remap[edge.src], remap[edge.dst], edge.time)
        return sub.freeze()

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise GraphError("operation requires a frozen graph; call freeze()")

    # ------------------------------------------------------------------
    # dunder / misc
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # The kernel and flat edge columns are cheap, deterministic
        # derivations; shipping them to pool workers would pickle every
        # column twice (and shared-memory views cannot pickle at all).
        # Workers rebuild them lazily on first use.
        state = self.__dict__.copy()
        state["_kernel"] = None
        state["_col_src"] = None
        state["_col_dst"] = None
        state["_col_time"] = None
        return state

    def __len__(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TemporalGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )

    @classmethod
    def from_frozen_columns(
        cls,
        name: str,
        labels: Sequence[str],
        src: IntColumn,
        dst: IntColumn,
        time: IntColumn,
    ) -> "TemporalGraph":
        """Rebuild a frozen graph from flat edge columns, zero-copy.

        The columns must describe an already-frozen graph: time-sorted,
        strictly increasing timestamps, endpoints in ``0..len(labels)-1``
        — exactly what :meth:`edge_arrays` of a frozen graph returns.
        They are adopted as the graph's cached columns *without copying*,
        so read-only shared-memory views stay shared (the
        :mod:`repro.core.shm` attach path); only the object-layer indexes
        are rebuilt locally.  No validation re-runs — the publisher froze
        the original, and freezing is deterministic.
        """
        graph = cls(name=name)
        graph._labels = list(labels)
        graph._edges = [
            TemporalEdge(s, d, t) for s, d, t in zip(src, dst, time)
        ]
        graph._build_indexes()
        if graph._edges:
            graph._next_auto_time = graph._edges[-1].time + 1
        graph._frozen = True
        graph._col_src = src
        graph._col_dst = dst
        graph._col_time = time
        return graph

    @classmethod
    def from_events(
        cls,
        events: Iterable[tuple[str, str, int]],
        name: str = "",
        node_keys: Mapping[str, str] | None = None,
    ) -> "TemporalGraph":
        """Build a graph from ``(src_key, dst_key, time)`` triples.

        ``node_keys`` optionally maps entity keys to labels; when omitted
        the key itself is used as the label.  Entity keys identify nodes:
        repeated keys reuse the same node.
        """
        graph = cls(name=name)
        ids: dict[str, int] = {}

        def node_for(key: str) -> int:
            if key not in ids:
                label = node_keys[key] if node_keys is not None else key
                ids[key] = graph.add_node(label)
            return ids[key]

        for src_key, dst_key, time in events:
            graph.add_edge(node_for(src_key), node_for(dst_key), time)
        return graph.freeze()
